#!/usr/bin/env python3
"""Tail-latency SLAs: from average degradation to the 90th percentile.

Latency SLAs bind on percentiles, not means, and queueing makes the tail
grow super-linearly with average slowdown (the paper's Section III-C3).
This example:

1. fits the Equation 6 tail model for Web-Search from Ruler co-runs,
   validating it against a discrete-event FCFS queue;
2. shows the super-linear degradation-to-tail blow-up;
3. converts a tail SLA into the degradation budget a scheduler may spend —
   and contrasts it with the (much looser) average-performance budget.

Run:  python examples/tail_latency_sla.py
"""

from repro import SANDY_BRIDGE_EN, Simulator, SMiTe
from repro.analysis.tables import format_table
from repro.queueing import simulate_fcfs_mm1
from repro.scheduler.scaleout import fit_tail_model
from repro.workloads import CLOUDSUITE


def main() -> None:
    simulator = Simulator(SANDY_BRIDGE_EN)
    app = CLOUDSUITE["web-search"]
    print(f"{app.name}: mu={app.service_rate_hz:.0f}/s per thread, "
          f"offered load {app.utilization:.0%}")

    predictor = SMiTe(simulator).fit(
        __import__("repro.workloads", fromlist=["spec_odd"]).spec_odd(),
        mode="smt",
    )
    print("\nfitting Equation 6 from Ruler co-runs ...")
    tail_model = fit_tail_model(simulator, predictor, app,
                                des_jobs=60_000)
    queue = tail_model.queue
    print(f"recovered queue: mu={queue.service_rate:.1f}/s, "
          f"lambda={queue.arrival_rate:.1f}/s "
          f"(fit R^2 = {tail_model.fit_r_squared:.4f})")

    # ------------------------------------------------------------------
    baseline = tail_model.baseline_latency()
    print(f"\nbaseline 90th-percentile latency: {baseline * 1000:.1f} ms")
    rows = []
    for degradation in (0.05, 0.10, 0.20, 0.30, 0.40):
        predicted = tail_model.predict_latency(degradation)
        degraded_mu = (1 - degradation) * app.service_rate_hz
        measured = simulate_fcfs_mm1(
            app.arrival_rate_hz, degraded_mu, jobs=120_000,
            seed=int(degradation * 1000),
        ).percentile(0.9)
        rows.append((
            f"{degradation:.0%}",
            f"{predicted * 1000:.1f} ms",
            f"{measured * 1000:.1f} ms",
            f"{predicted / baseline:.2f}x",
        ))
    print(format_table(
        ("avg degradation", "predicted t90", "simulated t90", "tail growth"),
        rows,
        title="Equation 6 vs the discrete-event queue",
    ))

    # ------------------------------------------------------------------
    print("\ndegradation budgets per QoS target:")
    rows = []
    for level in (0.95, 0.90, 0.85):
        tail_budget = tail_model.max_safe_degradation(level)
        avg_budget = 1.0 - level
        rows.append((f"{level:.0%}", f"{avg_budget:.2%}",
                     f"{tail_budget:.2%}"))
    print(format_table(
        ("QoS target", "average-performance budget", "tail-latency budget"),
        rows,
    ))
    print("\nqueueing halves the allowance at 50% load: tail SLAs are the "
          "hard constraint, exactly the paper's Section IV-D point.")


if __name__ == "__main__":
    main()
