#!/usr/bin/env python3
"""Inside the Rulers: the stressors behind the methodology (Figure 9).

Shows the assembly listings the functional-unit Rulers are authored in,
validates the two design principles on the simulated machine —
target-port purity above 99.99% and working-set/degradation linearity —
and demonstrates the LFSR that drives the L1/L2 Rulers' access stream.

Run:  python examples/ruler_design.py
"""

from repro import Dimension, IVY_BRIDGE, Simulator, default_suite
from repro.analysis.tables import format_table
from repro.rulers import Lfsr
from repro.rulers.functional_unit import FU_LISTINGS
from repro.rulers.suite import intensity_sweep
from repro.rulers.validation import validate_linearity, validate_purity
from repro.workloads import spec_even


def main() -> None:
    simulator = Simulator(IVY_BRIDGE)
    suite = default_suite(IVY_BRIDGE)

    # ------------------------------------------------------------------
    print("Figure 9(a): the FP_MUL (port 0) Ruler listing "
          "(8 rotated registers, unrolled 5000x):\n")
    listing = FU_LISTINGS[Dimension.FP_MUL]
    print("\n".join(listing.splitlines()[:5]))
    print("    ... (register rotation continues)\n")

    # ------------------------------------------------------------------
    print("design principle 1 — saturate ONE port:")
    rows = []
    for dimension in suite:
        if not dimension.is_functional_unit:
            continue
        report = validate_purity(suite[dimension], simulator)
        rows.append((
            suite[dimension].name,
            "+".join(str(p) for p in report.target_ports),
            f"{report.purity:.6f}",
        ))
    print(format_table(("ruler", "target port(s)", "purity"), rows))

    # ------------------------------------------------------------------
    print("\ndesign principle 2 — linear intensity response "
          "(lets profiling sample only the curve's end points):")
    rows = []
    for dimension in (Dimension.L1, Dimension.L2, Dimension.L3):
        pearson = validate_linearity(suite[dimension], simulator,
                                     spec_even(), points=4)
        rows.append((suite[dimension].name, f"{pearson:.3f}"))
    print(format_table(("memory ruler", "intensity/degradation pearson"),
                       rows))

    # ------------------------------------------------------------------
    print("\nintensity sweep of the FP_ADD ruler (duty-cycling port 1):")
    rows = []
    for ruler in intensity_sweep(suite[Dimension.FP_ADD], points=4):
        result = simulator.run_solo(ruler.profile)
        rows.append((f"{ruler.intensity:.2f}",
                     f"{result.port_utilization[1]:.3f}"))
    print(format_table(("intensity", "port-1 utilization"), rows))

    # ------------------------------------------------------------------
    print("\nthe Figure 9(e) LFSR (mask 0xd0000001) scattering accesses "
          "over a 4 KB footprint:")
    lfsr = Lfsr(seed=0xACE1)
    addresses = list(lfsr.addresses(4096, 8))
    print("  first offsets:", ", ".join(f"0x{a:03x}" for a in addresses))
    lines = {a // 64 for a in Lfsr(seed=0xACE1).addresses(4096, 4000)}
    print(f"  4000 draws touch {len(lines)}/64 cache lines "
          f"({len(lines) / 64:.0%} coverage)")


if __name__ == "__main__":
    main()
