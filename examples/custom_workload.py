#!/usr/bin/env python3
"""Bring your own workload: profile, register, and co-locate a new app.

A downstream user's service is not in SPEC or CloudSuite. This example
defines a custom profile for an "inference-server"-like app, registers
it, characterizes it against the Rulers, and asks SMiTe which SPEC batch
jobs are safe to co-locate with it at a 90% QoS target.

Run:  python examples/custom_workload.py
"""

from repro import IVY_BRIDGE, Simulator, SMiTe, Suite, WorkloadProfile
from repro.analysis.tables import format_table
from repro.workloads import spec_even, spec_odd
from repro.workloads.profile import FootprintStratum
from repro.workloads.registry import register_profile, unregister_profile

KB, MB = 1024, 1024 * 1024


def build_inference_server() -> WorkloadProfile:
    """An FP-heavy request server: dense math over a mid-size model."""
    return WorkloadProfile(
        name="inference-server",
        suite=Suite.SYNTHETIC,
        fp_mul=0.30,
        fp_add=0.22,
        fp_shf=0.05,
        int_alu=0.12,
        load=0.22,
        store=0.05,
        branch=0.04,
        dependency_factor=0.22,
        mlp=3.0,
        strata=(
            FootprintStratum(footprint_bytes=24 * KB, access_fraction=0.45),
            FootprintStratum(footprint_bytes=200 * KB, access_fraction=0.25),
            FootprintStratum(footprint_bytes=6 * MB, access_fraction=0.30),
        ),
        branch_misprediction_rate=0.002,
        icache_mpki=3.0,
        description="dense-math request server with a 6 MB hot model slice",
    )


def main() -> None:
    app = build_inference_server()
    register_profile(app)
    try:
        simulator = Simulator(IVY_BRIDGE)
        smite = SMiTe(simulator).fit(spec_even(), mode="smt")

        char = smite.characterization(app)
        print("inference-server characterization:")
        print("  " + char.describe())

        # SMT sharing on this simulator costs ~20-40% even for mild
        # pairs, so the demo uses a relaxed 75% QoS target.
        budget = 0.25
        rows = []
        for batch in spec_odd():
            predicted = smite.predict(app, batch)
            measured = simulator.measure_pair(app, batch,
                                              "smt").degradation_a
            rows.append((
                batch.name,
                predicted,
                measured,
                "SAFE" if predicted <= budget else "unsafe",
            ))
        rows.sort(key=lambda r: r[1])
        print()
        print(format_table(
            ("batch candidate", "predicted deg", "measured deg", "verdict"),
            rows,
            title=f"co-location candidates at a {1 - budget:.0%} QoS target",
        ))
        safe = [r for r in rows if r[3] == "SAFE"]
        correct = [r for r in safe if r[2] <= budget + 0.02]
        print(f"\n{len(safe)} of {len(rows)} candidates predicted safe; "
              f"{len(correct)} of those verified within 2% of the budget.")
    finally:
        unregister_profile(app.name)


if __name__ == "__main__":
    main()
