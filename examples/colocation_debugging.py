#!/usr/bin/env python3
"""Operator tooling: explain a bad co-location, admit a new job online.

Two workflows an operator runs against a production-like cluster:

1. *Why is this service slow?* — decompose a co-location's slowdown into
   its CPI-stack components (port queueing vs cache loss vs DRAM), the
   causal story behind a single degradation number.
2. *A new batch job just arrived.* — profile it against the Rulers within
   a measurement budget (the paper's "order of seconds" online profiling)
   and decide how many instances may share a web-search server at a 90%
   QoS target.

Run:  python examples/colocation_debugging.py
(set SMITE_EXAMPLE_FAST=1 to train on a SPEC subset, for smoke tests)
"""

import os

from repro import SANDY_BRIDGE_EN, Simulator, SMiTe
from repro.core import ProfilingBudget, admission_check
from repro.scheduler import QosTarget
from repro.smt import cpi_stack, explain_pair, utilization_report
from repro.workloads import CLOUDSUITE, SPEC_CPU2006, spec_odd


def main() -> None:
    simulator = Simulator(SANDY_BRIDGE_EN)
    web_search = CLOUDSUITE["web-search"]
    noisy_neighbor = SPEC_CPU2006["470.lbm"]

    # ------------------------------------------------------------------
    # Workflow 1: explain an observed slowdown.
    print("== why is web-search slow next to 470.lbm? ==\n")
    print(cpi_stack(simulator.run_solo(web_search.profile)))
    print()
    breakdown = explain_pair(simulator, web_search.profile,
                             noisy_neighbor, "smt")
    print(breakdown.render())
    print()
    print(utilization_report(
        simulator.run_pair(web_search.profile, noisy_neighbor, "smt")
    ))

    # ------------------------------------------------------------------
    # Workflow 2: online admission for an arriving batch job.
    print("\n== admitting arriving batch jobs at a 90% QoS target ==\n")
    train_set = spec_odd()
    if os.environ.get("SMITE_EXAMPLE_FAST"):
        train_set = train_set[:8]
    predictor = SMiTe(simulator).fit(train_set, mode="smt")
    predictor.fit_server(train_set, instance_counts=(1, 2, 4, 6))
    target = QosTarget.average(0.90)
    for name in ("416.gamess", "444.namd", "470.lbm"):
        decision = admission_check(
            predictor, web_search, SPEC_CPU2006[name], target,
            budget=ProfilingBudget(max_seconds=10, seconds_per_corun=1),
        )
        verdict = (f"admit {decision.admitted_instances} instance(s), "
                   f"predicted {decision.predicted_degradation:.1%} "
                   f"of a {decision.degradation_budget:.1%} budget"
                   if decision.admitted else "reject (no safe count)")
        print(f"  {name:14s} [{decision.profiling}] -> {verdict}")


if __name__ == "__main__":
    main()
