#!/usr/bin/env python3
"""Quickstart: characterize two applications and predict their co-location.

This walks the whole SMiTe pipeline on the Ivy Bridge machine:

1. build the simulator and the seven-Ruler suite;
2. characterize two applications' sensitivity/contentiousness (Eqs. 1-2);
3. train the Equation 3 regression on the even-numbered SPEC half;
4. predict the degradation of an unseen odd-numbered pair and compare it
   to the measured co-run.

Run:  python examples/quickstart.py
"""

from repro import IVY_BRIDGE, Simulator, SMiTe
from repro.analysis.tables import format_table
from repro.workloads import SPEC_CPU2006, spec_even


def main() -> None:
    simulator = Simulator(IVY_BRIDGE)
    print(f"machine: {IVY_BRIDGE.processor} "
          f"({IVY_BRIDGE.cores} cores, {IVY_BRIDGE.total_contexts} contexts)")

    # ------------------------------------------------------------------
    # Step 1-2: characterize two applications with the Ruler suite.
    smite = SMiTe(simulator)
    victim = SPEC_CPU2006["444.namd"]       # FP-port-bound compute app
    aggressor = SPEC_CPU2006["470.lbm"]     # memory-streaming app

    print("\n-- Ruler characterization (Equations 1-2) --")
    rows = []
    for profile in (victim, aggressor):
        char = smite.characterization(profile, mode="smt")
        for dimension in char.dimensions:
            rows.append((
                profile.name, dimension.name,
                char.sensitivity[dimension],
                char.contentiousness[dimension],
            ))
    print(format_table(
        ("workload", "dimension", "sensitivity", "contentiousness"), rows
    ))

    # ------------------------------------------------------------------
    # Step 3: train the prediction model on the even-numbered SPEC half.
    print("\ntraining on the even-numbered SPEC benchmarks ...")
    smite.fit(spec_even(), mode="smt")
    print("fitted Equation 3:", smite.model.describe())

    # ------------------------------------------------------------------
    # Step 4: predict an unseen co-location and check against the machine.
    predicted = smite.predict(victim, aggressor)
    measured = simulator.measure_pair(victim, aggressor, "smt").degradation_a
    print(f"\n{victim.name} co-located with {aggressor.name} (SMT):")
    print(f"  predicted degradation: {predicted:6.2%}")
    print(f"  measured degradation:  {measured:6.2%}")
    print(f"  absolute error:        {abs(predicted - measured):6.2%}")


if __name__ == "__main__":
    main()
