#!/usr/bin/env python3
"""Scale-out scheduling: SMiTe steering a warehouse-scale cluster.

The paper's Section IV-C scenario in miniature: a cluster of servers,
each running a half-loaded latency-sensitive CloudSuite application,
receives batch SPEC jobs. Four policies decide how many batch instances
to co-locate on the idle SMT contexts; we compare their utilization gain
and QoS violations at three average-performance targets.

Run:  python examples/datacenter_scheduling.py  [servers-per-app]
(set SMITE_EXAMPLE_FAST=1 for a smoke-test-sized cluster and train set)
"""

import os
import sys

from repro import SANDY_BRIDGE_EN, Simulator, SMiTe
from repro.analysis.tables import format_table
from repro.scheduler import QosTarget, ScaleOutStudy
from repro.workloads import cloudsuite_apps, spec_even, spec_odd


def main(servers_per_app: int | None = None) -> None:
    fast = bool(os.environ.get("SMITE_EXAMPLE_FAST"))
    if servers_per_app is None:
        servers_per_app = 10 if fast else 100
    simulator = Simulator(SANDY_BRIDGE_EN)

    train_set = spec_odd()[:8] if fast else spec_odd()
    print("training the SMiTe predictor on odd-numbered SPEC ...")
    predictor = SMiTe(simulator).fit(train_set, mode="smt")
    print("calibrating the server-topology models ...")
    predictor.fit_server(train_set, instance_counts=(1, 2, 4, 6))

    study = ScaleOutStudy(
        simulator=simulator,
        predictor=predictor,
        latency_apps=cloudsuite_apps(),
        batch_pool=spec_even()[:6] if fast else spec_even(),
        servers_per_app=servers_per_app,
    )
    targets = [QosTarget.average(level) for level in (0.95, 0.90, 0.85)]
    print(f"running the scale-out study "
          f"({servers_per_app * 4} servers, 3 QoS targets) ...\n")
    results = study.run(targets)

    rows = [
        (
            f"{r.target.level:.0%}",
            r.policy,
            f"{r.utilization_improvement:.2%}",
            f"{r.violations.rate:.2%}",
            f"{r.violations.worst_magnitude:.2%}",
        )
        for r in results
    ]
    print(format_table(
        ("QoS target", "policy", "utilization gain",
         "violation rate", "worst violation"),
        rows,
        title="SMT co-location policies (QoS on average performance)",
    ))

    smite = {r.target.level: r for r in results if r.policy == "smite"}
    oracle = {r.target.level: r for r in results if r.policy == "oracle"}
    print("\nSMiTe captures "
          + ", ".join(
              f"{smite[t].utilization_improvement / max(oracle[t].utilization_improvement, 1e-9):.0%}"
              f" of Oracle at {t:.0%}"
              for t in (0.95, 0.90, 0.85))
          + " of the achievable utilization gain.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else None)
