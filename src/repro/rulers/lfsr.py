"""The linear-feedback shift register of Figure 9(e).

The paper's L1/L2 cache Rulers generate access addresses with a Galois
LFSR (``lfsr = (lfsr >> 1) ^ (-(lfsr & 1) & 0xd0000001)``) because it is a
few ALU ops per draw — cheap enough not to perturb the functional-unit
dimensions. This module implements that exact generator; the memory-ruler
kernels account for its per-access ALU cost, and the tests verify its
statistical fitness for cache stressing (long period, uniform coverage of
a power-of-two footprint).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConfigurationError

__all__ = ["Lfsr", "MASK"]

#: The feedback polynomial mask from Figure 9(e).
MASK = 0xD0000001

_WORD = 0xFFFFFFFF


class Lfsr:
    """32-bit Galois LFSR matching the paper's RAND macro."""

    def __init__(self, seed: int = 1, mask: int = MASK) -> None:
        if not 0 < seed <= _WORD:
            raise ConfigurationError(
                f"LFSR seed must be a non-zero 32-bit value, got {seed}"
            )
        if not 0 < mask <= _WORD:
            raise ConfigurationError(f"LFSR mask must be a 32-bit value")
        self._state = seed
        self._mask = mask

    @property
    def state(self) -> int:
        return self._state

    def next(self) -> int:
        """Advance one step and return the new state.

        Mirrors ``lfsr = (lfsr >> 1) ^ (unsigned)(-(lfsr & 1) & MASK)``:
        shift right, and XOR in the polynomial when the dropped bit was 1.
        """
        lsb = self._state & 1
        self._state >>= 1
        if lsb:
            self._state ^= self._mask
        return self._state

    def addresses(self, footprint_bytes: int, count: int) -> Iterator[int]:
        """Yield ``count`` access offsets within a power-of-two footprint.

        This is ``RAND % FOOTPRINT`` from Figure 9(e); the footprint must
        be a power of two so the modulo is a single AND on real hardware.
        """
        if footprint_bytes <= 0 or footprint_bytes & (footprint_bytes - 1):
            raise ConfigurationError(
                f"ruler footprint must be a positive power of two, "
                f"got {footprint_bytes}"
            )
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        mask = footprint_bytes - 1
        for _ in range(count):
            yield self.next() & mask

    def period_lower_bound(self, limit: int = 1 << 20) -> int:
        """Steps until the state first repeats, scanning at most ``limit``.

        Returns ``limit`` if no repeat is seen — i.e. the period is at
        least ``limit``, which is all a cache stressor needs.
        """
        start = self._state
        probe = Lfsr(seed=start, mask=self._mask)
        for step in range(1, limit + 1):
            if probe.next() == start:
                return step
        return limit
