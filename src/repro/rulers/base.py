"""Ruler core types: sharing dimensions, the Ruler itself, and suites."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterator, Mapping

from repro.errors import ConfigurationError
from repro.workloads.profile import WorkloadProfile

__all__ = ["Dimension", "Ruler", "RulerSuite"]


class Dimension(enum.Enum):
    """The seven sharing dimensions SMiTe characterizes (Section II).

    Four functional-unit dimensions (one per port-specific operation
    class) and three cache-level dimensions.
    """

    FP_MUL = "fp_mul"      # port 0
    FP_ADD = "fp_add"      # port 1
    FP_SHF = "fp_shf"      # port 5
    INT_ADD = "int_add"    # ports 0, 1, 5
    L1 = "l1"
    L2 = "l2"
    L3 = "l3"

    def __repr__(self) -> str:
        return f"Dimension.{self.name}"

    @property
    def is_functional_unit(self) -> bool:
        return self in (Dimension.FP_MUL, Dimension.FP_ADD,
                        Dimension.FP_SHF, Dimension.INT_ADD)

    @property
    def is_memory(self) -> bool:
        return not self.is_functional_unit

    @property
    def target_port(self) -> int | None:
        """The single port a port-specific FU dimension saturates."""
        return {Dimension.FP_MUL: 0, Dimension.FP_ADD: 1,
                Dimension.FP_SHF: 5}.get(self)


#: The paper's canonical dimension ordering (Figures 6 and 7).
ALL_DIMENSIONS: tuple[Dimension, ...] = tuple(Dimension)


@dataclass(frozen=True)
class Ruler:
    """A stressor profile targeting one sharing dimension.

    ``intensity`` is the Ruler's pressure knob: duty cycle for
    functional-unit Rulers (1.0 = saturating the port), working-set scale
    for memory Rulers (1.0 = footprint equal to the target cache's size).
    """

    dimension: Dimension
    profile: WorkloadProfile
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.intensity <= 1.0:
            raise ConfigurationError(
                f"ruler intensity must be in (0, 1], got {self.intensity}"
            )

    @property
    def name(self) -> str:
        return self.profile.name

    #: A memory Ruler's working set never shrinks below this fraction of
    #: its full (cache-sized) footprint. Below roughly its fair share of
    #: the cache, a smaller footprint makes the Ruler itself *faster*
    #: under sharing (its set stays resident), and the rising port/front-
    #: end pressure breaks the intensity/interference linearity the design
    #: requires (Section III-B1's second principle).
    MEMORY_FOOTPRINT_FLOOR = 0.5

    def at_intensity(self, intensity: float) -> "Ruler":
        """This Ruler re-tuned to a different pressure level.

        Functional-unit Rulers duty-cycle by adding idle (throttle) cycles
        so the port utilization scales linearly with intensity; memory
        Rulers scale their footprint strata linearly between the floor
        fraction and the full cache size.
        """
        if not 0.0 < intensity <= 1.0:
            raise ConfigurationError(
                f"ruler intensity must be in (0, 1], got {intensity}"
            )
        if intensity == self.intensity:
            return self
        base = self._full_intensity_profile()
        if self.dimension.is_functional_unit:
            # Solo CPI of the saturating ruler is its peak per-port
            # occupancy (INT_ADD spreads over three ports, so one INT uop
            # per instruction occupies each port only a third of the
            # time); idle cycles scale utilization to exactly `intensity`.
            from repro.smt.ports import balance_port_demand

            demand = balance_port_demand(base.uops)
            peak_occupancy = max(demand.values(), default=1.0)
            throttle = peak_occupancy * (1.0 - intensity) / intensity
            profile = base.replace(
                name=f"{base.name}@{intensity:.2f}",
                throttle_cpi=throttle,
            )
        else:
            scale = self._memory_scale(intensity)
            strata = tuple(
                s.__class__(footprint_bytes=s.footprint_bytes * scale,
                            access_fraction=s.access_fraction)
                for s in base.strata
            )
            profile = base.replace(
                name=f"{base.name}@{intensity:.2f}",
                strata=strata,
            )
        return Ruler(dimension=self.dimension, profile=profile,
                     intensity=intensity)

    @classmethod
    def _memory_scale(cls, intensity: float) -> float:
        """Footprint scale for a memory-ruler intensity."""
        floor = cls.MEMORY_FOOTPRINT_FLOOR
        return floor + (1.0 - floor) * intensity

    def _full_intensity_profile(self) -> WorkloadProfile:
        """The profile at intensity 1.0 (strip any prior tuning)."""
        if self.intensity == 1.0:  # smite: noqa[SMT301]: 1.0 is the exact constructor default, not a computed value
            return self.profile
        base_name = self.profile.name.split("@")[0]
        if self.dimension.is_functional_unit:
            return self.profile.replace(name=base_name, throttle_cpi=0.0)
        scale = self._memory_scale(self.intensity)
        strata = tuple(
            s.__class__(footprint_bytes=s.footprint_bytes / scale,  # smite: noqa[SMT302]: _memory_scale is floored at MEMORY_FOOTPRINT_FLOOR (0.5)
                        access_fraction=s.access_fraction)
            for s in self.profile.strata
        )
        return self.profile.replace(name=base_name, strata=strata)


class RulerSuite:
    """An ordered mapping of sharing dimension to Ruler."""

    def __init__(self, rulers: Mapping[Dimension, Ruler]) -> None:
        for dim, ruler in rulers.items():
            if ruler.dimension is not dim:
                raise ConfigurationError(
                    f"ruler {ruler.name!r} targets {ruler.dimension}, "
                    f"but is registered under {dim}"
                )
        self._rulers = dict(rulers)

    def __getitem__(self, dimension: Dimension) -> Ruler:
        return self._rulers[dimension]

    def __contains__(self, dimension: Dimension) -> bool:
        return dimension in self._rulers

    def __len__(self) -> int:
        return len(self._rulers)

    def __iter__(self) -> Iterator[Dimension]:
        # Canonical dimension order, not insertion order.
        return (d for d in ALL_DIMENSIONS if d in self._rulers)

    @property
    def dimensions(self) -> tuple[Dimension, ...]:
        return tuple(self)

    @property
    def rulers(self) -> tuple[Ruler, ...]:
        return tuple(self._rulers[d] for d in self)
