"""Memory-subsystem Rulers, shaped after Figure 9(e) and 9(f).

The L1 and L2 Rulers are the same kernel with different working-set sizes
(the paper uses one binary with different FOOTPRINT values): each access
is ``data_chunk[RAND % FOOTPRINT]++`` — an LFSR draw (modelled as ALU
uops), a load, an increment, and a store — randomly scattered over the
footprint. The L3 Ruler streams with a cache-line stride, reading one half
of the footprint and writing the other, per Figure 9(f). All are unrolled
so the loop branch is negligible.

Complete decoupling is impossible here (issuing accesses costs ALU work,
and a larger-footprint Ruler necessarily sweeps the smaller caches too);
the paper leans on the regression model to separate the overlap, and so
do we.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.isa import analyze_kernel, parse_asm
from repro.isa.kernel import Kernel
from repro.rulers.base import Dimension, Ruler
from repro.smt.params import MachineSpec

__all__ = ["memory_kernel", "memory_ruler", "memory_rulers", "MEM_UNROLL"]

#: 5-6 instructions per access block, x400 blocks per loop branch.
MEM_UNROLL = 400

_MEMORY_DIMENSIONS = (Dimension.L1, Dimension.L2, Dimension.L3)


def _lfsr_listing(footprint_bytes: int) -> str:
    """The Figure 9(e) random-access ruler: data_chunk[RAND % FOOTPRINT]++.

    The two ALU ops carry the serial LFSR state in %eax — the address of
    every access depends on it, which is what keeps the real stressor from
    flooding the ALU ports at full front-end speed.
    """
    return "\n".join([
        "loop:",
        "    addl  %eax, %eax            # lfsr >>= 1 (serial state)",
        "    addl  %eax, %eax            # lfsr ^= -(lfsr & 1) & MASK",
        f"    movl  [footprint={footprint_bytes},pattern=random,addr=%eax], %ecx",
        "    addl  %ecx, %ecx            # the ++ increment",
        f"    movl  %ecx, [footprint={footprint_bytes},pattern=random,addr=%eax]",
        "    jmp loop",
    ])


def _stride_listing(footprint_bytes: int) -> str:
    """The Figure 9(f) stride ruler: first_chunk[i] = second_chunk[i] + 1."""
    return "\n".join([
        "loop:",
        f"    movl  [footprint={footprint_bytes},pattern=stride,stride=64,addr=%ebx], %eax",
        "    addl  %eax, %eax            # + 1",
        f"    movl  %eax, [footprint={footprint_bytes},pattern=stride,stride=64,addr=%ebx]",
        "    addl  %ebx, %ebx            # i += 64 (serial index)",
        "    jmp loop",
    ])


def memory_kernel(dimension: Dimension, machine: MachineSpec, *,
                  footprint_bytes: int | None = None,
                  unroll: int = MEM_UNROLL) -> Kernel:
    """The kernel for a memory dimension's Ruler on a given machine.

    The default footprint is the target cache's full capacity — the top of
    the sensitivity curve the paper interpolates over.
    """
    if dimension not in _MEMORY_DIMENSIONS:
        raise ConfigurationError(f"{dimension} is not a memory dimension")
    if footprint_bytes is None:
        footprint_bytes = {
            Dimension.L1: machine.l1d.size_bytes,
            Dimension.L2: machine.l2.size_bytes,
            Dimension.L3: machine.l3.size_bytes,
        }[dimension]
    if footprint_bytes <= 0:
        raise ConfigurationError("footprint must be positive")
    if dimension is Dimension.L3:
        listing = _stride_listing(footprint_bytes)
    else:
        listing = _lfsr_listing(footprint_bytes)
    return parse_asm(listing, name=f"ruler-{dimension.value}", unroll=unroll)


#: Fixed pacing (idle cycles per instruction) for the L1/L2 rulers. The
#: real stressor's speed depends on how much of its working set stays
#: resident, which couples its functional-unit pressure to the victim's
#: cache behaviour — the opposite of decoupled measurement. Pacing the
#: loop (a spin-wait between accesses) pins the issue rate so working-set
#: size is the ruler's *only* moving part; its capacity pressure is
#: unchanged because LRU occupancy follows the access mix, not the rate.
LFSR_RULER_PACE_CPI = 0.8


def memory_ruler(dimension: Dimension, machine: MachineSpec, *,
                 intensity: float = 1.0,
                 unroll: int = MEM_UNROLL) -> Ruler:
    """Build one memory Ruler; intensity scales the working set."""
    profile = analyze_kernel(memory_kernel(dimension, machine, unroll=unroll))
    if dimension in (Dimension.L1, Dimension.L2):
        profile = profile.replace(throttle_cpi=LFSR_RULER_PACE_CPI)
    ruler = Ruler(dimension=dimension, profile=profile, intensity=1.0)
    if intensity != 1.0:  # smite: noqa[SMT301]: 1.0 is the exact no-op default; rebuilding at full intensity is wasted work
        ruler = ruler.at_intensity(intensity)
    return ruler


def memory_rulers(machine: MachineSpec, *,
                  unroll: int = MEM_UNROLL) -> dict[Dimension, Ruler]:
    """The three memory Rulers at full (cache-sized) working sets."""
    return {
        dim: memory_ruler(dim, machine, unroll=unroll)
        for dim in _MEMORY_DIMENSIONS
    }
