"""The default seven-Ruler suite for a machine."""

from __future__ import annotations

from repro.rulers.base import Dimension, Ruler, RulerSuite
from repro.rulers.functional_unit import functional_unit_rulers
from repro.rulers.memory import memory_rulers
from repro.smt.params import MachineSpec

__all__ = ["default_suite", "intensity_sweep"]


def default_suite(machine: MachineSpec) -> RulerSuite:
    """The seven Rulers of Section III-B1 tuned for ``machine``.

    Functional-unit Rulers are machine-independent (port bindings are the
    microarchitectural contract); memory Rulers size their working sets to
    the machine's caches.
    """
    rulers: dict[Dimension, Ruler] = {}
    rulers.update(functional_unit_rulers())
    rulers.update(memory_rulers(machine))
    return RulerSuite(rulers)


def intensity_sweep(ruler: Ruler, points: int = 5) -> list[Ruler]:
    """The same Ruler at ``points`` evenly spaced intensities up to full.

    Used to measure sensitivity curves and to validate the linearity
    principle that lets the paper sample only the curve's end points.
    """
    if points < 2:
        raise ValueError("an intensity sweep needs at least 2 points")
    return [
        ruler.at_intensity((i + 1) / points)
        for i in range(points)
    ]
