"""Ruler design validation: port purity and pressure linearity.

Section III-B1 validates the functional-unit Rulers with the
UOPS_DISPATCHED_PORT counters (>99.99% of dispatches on the target port)
and the memory Rulers by the Pearson correlation between working-set size
and the degradation they inflict (0.92/0.89/0.95 for L1/L2/L3). This
module reproduces both checks against the simulated PMU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import pearson
from repro.errors import ValidationError
from repro.rulers.base import Dimension, Ruler
from repro.rulers.suite import intensity_sweep
from repro.smt.simulator import Simulator
from repro.workloads.profile import WorkloadProfile

__all__ = ["PurityReport", "validate_purity", "validate_linearity",
           "validate_suite"]

#: The paper's validated purity level for functional-unit rulers.
PURITY_THRESHOLD = 0.9999

#: Minimum acceptable intensity/degradation correlation for memory rulers.
LINEARITY_THRESHOLD = 0.85


@dataclass(frozen=True)
class PurityReport:
    """How concentrated a Ruler's port pressure is."""

    ruler_name: str
    dimension: Dimension
    target_ports: tuple[int, ...]
    target_utilization: float
    total_fu_utilization: float

    @property
    def purity(self) -> float:
        """Fraction of functional-unit dispatches on the target port(s)."""
        if self.total_fu_utilization == 0.0:
            return 0.0
        return self.target_utilization / self.total_fu_utilization


def _target_ports(dimension: Dimension) -> tuple[int, ...]:
    port = dimension.target_port
    if port is not None:
        return (port,)
    if dimension is Dimension.INT_ADD:
        return (0, 1, 5)
    raise ValidationError(f"{dimension} has no target ports")


def validate_purity(ruler: Ruler, simulator: Simulator) -> PurityReport:
    """Measure a functional-unit Ruler's port purity from the PMU.

    Raises :class:`ValidationError` if purity is below the paper's
    99.99% threshold.
    """
    if not ruler.dimension.is_functional_unit:
        raise ValidationError(
            f"purity validation applies to functional-unit rulers, "
            f"not {ruler.dimension}"
        )
    counters = simulator.read_solo_pmu(ruler.profile)
    targets = _target_ports(ruler.dimension)
    fu_ports = (0, 1, 5)
    target_util = sum(counters[f"uops_dispatched_port{p}"] for p in targets)
    total_util = sum(counters[f"uops_dispatched_port{p}"] for p in fu_ports)
    report = PurityReport(
        ruler_name=ruler.name,
        dimension=ruler.dimension,
        target_ports=targets,
        target_utilization=target_util,
        total_fu_utilization=total_util,
    )
    if report.purity < PURITY_THRESHOLD:
        raise ValidationError(
            f"{ruler.name}: port purity {report.purity:.6f} below "
            f"{PURITY_THRESHOLD}"
        )
    return report


def validate_linearity(
    ruler: Ruler,
    simulator: Simulator,
    victims: list[WorkloadProfile],
    *,
    points: int = 5,
    response_threshold: float = 0.02,
) -> float:
    """Average intensity-vs-degradation Pearson correlation over victims.

    Victims whose degradation moves by less than ``response_threshold``
    over the whole sweep are excluded: they are insensitive to this
    dimension, so their (noise-dominated) slope says nothing about the
    Ruler's linearity. Raises :class:`ValidationError` when the mean
    correlation over responsive victims falls below the acceptance
    threshold — the property that lets profiling sample only the
    sensitivity curve's end points.
    """
    if not victims:
        raise ValidationError("linearity validation needs victim workloads")
    sweep = intensity_sweep(ruler, points=points)
    intensities = [r.intensity for r in sweep]
    correlations = []
    for victim in victims:
        degradations = [
            simulator.measure_pair(victim, r.profile, "smt").degradation_a
            for r in sweep
        ]
        if max(degradations) - min(degradations) < response_threshold:
            continue  # victim indifferent to this ruler: linearity vacuous
        correlations.append(pearson(intensities, degradations))
    if not correlations:
        return 1.0
    mean = sum(correlations) / len(correlations)
    if mean < LINEARITY_THRESHOLD:
        raise ValidationError(
            f"{ruler.name}: intensity linearity {mean:.3f} below "
            f"{LINEARITY_THRESHOLD}"
        )
    return mean


def validate_suite(suite, simulator: Simulator) -> dict[str, float]:
    """Run purity validation across a suite; returns name -> purity."""
    purities: dict[str, float] = {}
    for dimension in suite:
        ruler = suite[dimension]
        if dimension.is_functional_unit:
            purities[ruler.name] = validate_purity(ruler, simulator).purity
    return purities
