"""Functional-unit Rulers, authored as the Figure 9(a-d) assembly listings.

Each listing follows the paper's two design moves: *port-specific
instructions* confine the pressure to one execution port, and *register
rotation plus loop unrolling* removes data dependencies so the port runs
at full occupancy (we rotate through eight registers — more chains than
any uop latency — and unroll until the loop branch is under 0.01% of the
dynamic stream, matching the paper's >99.99% validated port utilization).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.isa import analyze_kernel, parse_asm
from repro.isa.kernel import Kernel
from repro.rulers.base import Dimension, Ruler

__all__ = ["FU_LISTINGS", "fu_kernel", "functional_unit_ruler",
           "functional_unit_rulers", "UNROLL"]

#: Unroll factor: 8 instructions/body * 5000 = 40,000 per loop branch,
#: keeping the branch safely below the paper's 0.01% purity budget even
#: after simulated-PMU counter bias.
UNROLL = 5000

_XMM = [f"%xmm{i}" for i in range(8)]
_GPR = ["%eax", "%ebx", "%ecx", "%edx", "%esi", "%edi", "%r8d", "%r9d"]


def _fu_listing(mnemonic: str, registers: list[str]) -> str:
    lines = ["loop:"]
    lines += [f"    {mnemonic}  {reg}, {reg}" for reg in registers]
    lines.append("    jmp loop")
    return "\n".join(lines)


#: The four listings, in the paper's Figure 9 order.
FU_LISTINGS: dict[Dimension, str] = {
    Dimension.FP_MUL: _fu_listing("mulps", _XMM),    # port 0
    Dimension.FP_ADD: _fu_listing("addps", _XMM),    # port 1
    Dimension.FP_SHF: _fu_listing("shufps", _XMM),   # port 5
    Dimension.INT_ADD: _fu_listing("addl", _GPR),    # ports 0, 1, 5
}


def fu_kernel(dimension: Dimension, *, unroll: int = UNROLL) -> Kernel:
    """The kernel for a functional-unit dimension's Ruler."""
    listing = FU_LISTINGS.get(dimension)
    if listing is None:
        raise ConfigurationError(
            f"{dimension} is not a functional-unit dimension"
        )
    return parse_asm(listing, name=f"ruler-{dimension.value}", unroll=unroll)


def functional_unit_ruler(dimension: Dimension, *,
                          intensity: float = 1.0,
                          unroll: int = UNROLL) -> Ruler:
    """Build one functional-unit Ruler at the given duty-cycle intensity."""
    profile = analyze_kernel(fu_kernel(dimension, unroll=unroll))
    ruler = Ruler(dimension=dimension, profile=profile, intensity=1.0)
    if intensity != 1.0:  # smite: noqa[SMT301]: 1.0 is the exact no-op default; rebuilding at full intensity is wasted work
        ruler = ruler.at_intensity(intensity)
    return ruler


def functional_unit_rulers(*, unroll: int = UNROLL) -> dict[Dimension, Ruler]:
    """All four functional-unit Rulers at full intensity."""
    return {
        dim: functional_unit_ruler(dim, unroll=unroll)
        for dim in (Dimension.FP_MUL, Dimension.FP_ADD,
                    Dimension.FP_SHF, Dimension.INT_ADD)
    }
