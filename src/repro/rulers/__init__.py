"""Rulers: the paper's carefully designed software stressors.

A Ruler saturates exactly one sharing dimension — an execution port
(FP_MUL/port 0, FP_ADD/port 1, FP_SHF/port 5, INT_ADD/ports 0+1+5) or a
cache level (L1/L2 via LFSR-randomized accesses over a sized footprint,
L3 via cache-line-stride streaming) — while touching the others as little
as possible. Functional-unit Rulers are authored as the paper's Figure 9
assembly listings and analyzed into profiles; memory Rulers are kernels
shaped like Figure 9(e)/(f).

``default_suite`` returns the seven-dimension suite the SMiTe methodology
characterizes against; :mod:`repro.rulers.validation` checks the design
principles (port purity, pressure linearity) hold.
"""

from repro.rulers.base import Dimension, Ruler, RulerSuite
from repro.rulers.functional_unit import (
    FU_LISTINGS,
    functional_unit_ruler,
    functional_unit_rulers,
)
from repro.rulers.lfsr import Lfsr
from repro.rulers.memory import memory_ruler, memory_rulers
from repro.rulers.suite import default_suite
from repro.rulers.validation import (
    PurityReport,
    validate_linearity,
    validate_purity,
    validate_suite,
)

__all__ = [
    "Dimension",
    "Ruler",
    "RulerSuite",
    "FU_LISTINGS",
    "functional_unit_ruler",
    "functional_unit_rulers",
    "Lfsr",
    "memory_ruler",
    "memory_rulers",
    "default_suite",
    "PurityReport",
    "validate_linearity",
    "validate_purity",
    "validate_suite",
]
