"""Command-line interface for one-off predictions and characterizations.

A thin operational wrapper over the library for quick questions:

    python -m repro.cli characterize 444.namd
    python -m repro.cli predict 444.namd 470.lbm --mode smt
    python -m repro.cli safe-batch web-search --qos 0.9
    python -m repro.cli workloads

The predictor is trained on the machine-appropriate SPEC half on first
use (even-numbered for Ivy Bridge pair predictions, odd-numbered for
Sandy Bridge-EN server questions, matching the paper's splits).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table
from repro.core.predictor import SMiTe
from repro.errors import ReproError
from repro.obs.report import maybe_write_env_report
from repro.scheduler.qos import QosTarget
from repro.smt.params import IVY_BRIDGE, MACHINES, SANDY_BRIDGE_EN
from repro.smt.simulator import Simulator
from repro.workloads.cloudsuite import CLOUDSUITE
from repro.workloads.insights import classify
from repro.workloads.registry import all_profiles, get_profile
from repro.workloads.spec import spec_even, spec_odd

__all__ = ["main"]


def _machine(name: str):
    try:
        return MACHINES[name]
    except KeyError:
        raise ReproError(
            f"unknown machine {name!r}; known: {', '.join(MACHINES)}"
        ) from None


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        (p.name, p.suite.value, classify(p).value,
         f"{p.total_footprint_bytes / (1024 * 1024):.1f} MB"
         if p.strata else "-",
         p.mlp, p.dependency_factor)
        for p in all_profiles()
    ]
    print(format_table(
        ("workload", "suite", "class", "footprint", "mlp", "dependency"),
        rows,
    ))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    simulator = Simulator(_machine(args.machine))
    predictor = SMiTe(simulator)
    profile = get_profile(args.workload)
    char = predictor.characterization(profile, mode=args.mode)
    rows = [
        (d.name, char.sensitivity[d], char.contentiousness[d])
        for d in char.dimensions
    ]
    print(format_table(
        ("dimension", "sensitivity", "contentiousness"), rows,
        title=f"{profile.name} on {args.machine} ({args.mode.upper()})",
    ))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    simulator = Simulator(_machine(args.machine))
    predictor = SMiTe(simulator).fit(spec_even(), mode=args.mode)
    victim = get_profile(args.victim)
    aggressor = get_profile(args.aggressor)
    predicted = predictor.predict(victim, aggressor)
    print(f"{victim.name} co-located with {aggressor.name} "
          f"({args.mode.upper()}, {args.machine}):")
    print(f"  predicted degradation: {predicted:.2%}")
    if args.verify:
        measured = simulator.measure_pair(victim, aggressor,
                                          args.mode).degradation_a
        print(f"  measured degradation:  {measured:.2%}")
        print(f"  absolute error:        {abs(predicted - measured):.2%}")
    return 0


def _cmd_safe_batch(args: argparse.Namespace) -> int:
    if args.latency_app not in CLOUDSUITE:
        raise ReproError(
            f"{args.latency_app!r} is not a latency-sensitive app; "
            f"known: {', '.join(CLOUDSUITE)}"
        )
    simulator = Simulator(SANDY_BRIDGE_EN)
    predictor = SMiTe(simulator).fit(spec_odd(), mode="smt")
    predictor.fit_server(spec_odd(), instance_counts=(1, 2, 4, 6))
    app = CLOUDSUITE[args.latency_app]
    target = QosTarget.average(args.qos)
    budget = target.degradation_budget()
    rows = []
    for batch in spec_even():
        best = 0
        predicted_best = 0.0
        for instances in range(simulator.machine.cores, 0, -1):
            predicted = predictor.predict_server(app.profile, batch,
                                                 instances=instances)
            if predicted <= budget:
                best, predicted_best = instances, predicted
                break
        rows.append((batch.name, best, predicted_best))
    rows.sort(key=lambda r: (-r[1], r[2]))
    print(format_table(
        ("batch candidate", "safe instances", "predicted degradation"),
        rows,
        title=f"{app.name} at a {args.qos:.0%} QoS target "
              f"(budget {budget:.1%})",
    ))
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="SMiTe one-off predictions and characterizations",
        epilog="All flags and SMITE_* environment variables (cache, jobs, "
               "metrics) are documented in one table in README.md "
               "('Configuration reference').",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list known workloads")

    characterize = sub.add_parser("characterize",
                                  help="Ruler-characterize one workload")
    characterize.add_argument("workload")
    characterize.add_argument("--machine", default=IVY_BRIDGE.name,
                              choices=sorted(MACHINES))
    characterize.add_argument("--mode", default="smt",
                              choices=("smt", "cmp"))

    predict = sub.add_parser("predict",
                             help="predict a pair's degradation")
    predict.add_argument("victim")
    predict.add_argument("aggressor")
    predict.add_argument("--machine", default=IVY_BRIDGE.name,
                         choices=sorted(MACHINES))
    predict.add_argument("--mode", default="smt", choices=("smt", "cmp"))
    predict.add_argument("--verify", action="store_true",
                         help="also measure the pair and report the error")

    safe = sub.add_parser("safe-batch",
                          help="safe instance counts for a latency app")
    safe.add_argument("latency_app")
    safe.add_argument("--qos", type=float, default=0.90,
                      help="QoS level on average performance (default 0.90)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``smite`` command-line interface."""
    args = _parser().parse_args(argv)
    handlers = {
        "workloads": _cmd_workloads,
        "characterize": _cmd_characterize,
        "predict": _cmd_predict,
        "safe-batch": _cmd_safe_batch,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into something like `head`; not an error.
        return 0
    finally:
        # One-off commands honor SMITE_METRICS_OUT like the runner does.
        maybe_write_env_report()


if __name__ == "__main__":
    raise SystemExit(main())
