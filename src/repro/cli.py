"""Command-line interface for one-off predictions and characterizations.

A thin operational wrapper over the library for quick questions:

    python -m repro.cli characterize 444.namd
    python -m repro.cli predict 444.namd 470.lbm --mode smt
    python -m repro.cli safe-batch web-search --qos 0.9
    python -m repro.cli serve --trace diurnal --policy smite --fast
    python -m repro.cli serve-api --policy baseline --port 7077
    python -m repro.cli workloads
    python -m repro.cli obs view run.json
    python -m repro.cli obs diff before.json after.json
    python -m repro.cli obs trace t.trace.json --top 15
    python -m repro.cli obs top serve.telemetry.jsonl --once

The predictor is trained on the machine-appropriate SPEC half on first
use (even-numbered for Ivy Bridge pair predictions, odd-numbered for
Sandy Bridge-EN server questions, matching the paper's splits).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import re
import sys
import time
from pathlib import Path

from repro.adapt import (
    AdaptationController,
    DriftPolicy,
    ModelRegistry,
    OnlineRefitter,
)
from repro.analysis.tables import format_table
from repro.core.predictor import SMiTe
from repro.errors import ReproError
from repro.obs import PredictionAudit, snapshot
from repro.obs import timeseries as obs_timeseries
from repro.obs import trace as obs_trace
from repro.obs.alerts import AlertEngine, default_rules, render_alerts
from repro.obs.diffs import render_diff
from repro.obs.report import (
    build_report,
    load_report,
    maybe_write_env_report,
    render_adapt,
    render_audit,
    render_report,
    write_report,
)
from repro.scheduler.qos import QosTarget
from repro.scheduler.scaleout import fit_tail_model
from repro.serve import (
    ApiServer,
    BaselineDecider,
    PredictionService,
    RandomDecider,
    ServingEngine,
    WindowedSlo,
    diurnal_trace,
    poisson_trace,
    run_api_shards,
)
from repro.smt.diskcache import default_cache
from repro.smt.params import IVY_BRIDGE, MACHINES, SANDY_BRIDGE_EN
from repro.smt.simulator import Simulator
from repro.workloads.cloudsuite import CLOUDSUITE, cloudsuite_apps
from repro.workloads.insights import classify
from repro.workloads.registry import all_profiles, get_profile
from repro.workloads.spec import spec_even, spec_odd

__all__ = ["main"]


def _machine(name: str):
    try:
        return MACHINES[name]
    except KeyError:
        raise ReproError(
            f"unknown machine {name!r}; known: {', '.join(MACHINES)}"
        ) from None


def _cmd_workloads(_args: argparse.Namespace) -> int:
    rows = [
        (p.name, p.suite.value, classify(p).value,
         f"{p.total_footprint_bytes / (1024 * 1024):.1f} MB"
         if p.strata else "-",
         p.mlp, p.dependency_factor)
        for p in all_profiles()
    ]
    print(format_table(
        ("workload", "suite", "class", "footprint", "mlp", "dependency"),
        rows,
    ))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    simulator = Simulator(_machine(args.machine))
    predictor = SMiTe(simulator)
    profile = get_profile(args.workload)
    char = predictor.characterization(profile, mode=args.mode)
    rows = [
        (d.name, char.sensitivity[d], char.contentiousness[d])
        for d in char.dimensions
    ]
    print(format_table(
        ("dimension", "sensitivity", "contentiousness"), rows,
        title=f"{profile.name} on {args.machine} ({args.mode.upper()})",
    ))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    simulator = Simulator(_machine(args.machine))
    predictor = SMiTe(simulator).fit(spec_even(), mode=args.mode)
    victim = get_profile(args.victim)
    aggressor = get_profile(args.aggressor)
    predicted = predictor.predict(victim, aggressor)
    print(f"{victim.name} co-located with {aggressor.name} "
          f"({args.mode.upper()}, {args.machine}):")
    print(f"  predicted degradation: {predicted:.2%}")
    if args.verify:
        measured = simulator.measure_pair(victim, aggressor,
                                          args.mode).degradation_a
        print(f"  measured degradation:  {measured:.2%}")
        print(f"  absolute error:        {abs(predicted - measured):.2%}")
    return 0


def _cmd_safe_batch(args: argparse.Namespace) -> int:
    if args.latency_app not in CLOUDSUITE:
        raise ReproError(
            f"{args.latency_app!r} is not a latency-sensitive app; "
            f"known: {', '.join(CLOUDSUITE)}"
        )
    simulator = Simulator(SANDY_BRIDGE_EN)
    predictor = SMiTe(simulator).fit(spec_odd(), mode="smt")
    predictor.fit_server(spec_odd(), instance_counts=(1, 2, 4, 6))
    app = CLOUDSUITE[args.latency_app]
    target = QosTarget.average(args.qos)
    budget = target.degradation_budget()
    rows = []
    for batch in spec_even():
        best = 0
        predicted_best = 0.0
        for instances in range(simulator.machine.cores, 0, -1):
            predicted = predictor.predict_server(app.profile, batch,
                                                 instances=instances)
            if predicted <= budget:
                best, predicted_best = instances, predicted
                break
        rows.append((batch.name, best, predicted_best))
    rows.sort(key=lambda r: (-r[1], r[2]))
    print(format_table(
        ("batch candidate", "safe instances", "predicted degradation"),
        rows,
        title=f"{app.name} at a {args.qos:.0%} QoS target "
              f"(budget {budget:.1%})",
    ))
    return 0


def _parse_qos(spec: str) -> QosTarget:
    """Parse ``--qos``: a bare level (average) or ``metric:level``."""
    metric, _, level_text = spec.rpartition(":")
    metric = metric or "average"
    try:
        level = float(level_text)
    except ValueError:
        raise ReproError(f"bad QoS level in {spec!r}") from None
    if metric == "average":
        return QosTarget.average(level)
    if metric == "tail":
        return QosTarget.tail(level)
    raise ReproError(
        f"unknown QoS metric {metric!r}; use average:L or tail:L"
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.adapt and args.policy != "smite":
        raise ReproError("--adapt recalibrates the SMiTe regression; it "
                         "requires --policy smite")
    simulator = Simulator(SANDY_BRIDGE_EN, disk_cache=default_cache())
    training = spec_odd()[:8] if args.fast else spec_odd()
    counts = (1, 3, 6) if args.fast else (1, 2, 4, 6)
    predictor = SMiTe(simulator).fit(training, mode="smt")
    predictor.fit_server(training, instance_counts=counts)

    target = _parse_qos(args.qos)
    apps = cloudsuite_apps()[:2] if args.fast else cloudsuite_apps()
    pool = spec_even()[:6] if args.fast else spec_even()
    tail_models = None
    if target.metric.value == "tail_latency":
        tail_models = {
            app.name: fit_tail_model(simulator, predictor, app,
                                     des_jobs=10_000 if args.fast
                                     else 60_000)
            for app in apps
        }

    generate = diurnal_trace if args.trace == "diurnal" else poisson_trace
    rate_kw = ("mean_rate_per_s" if args.trace == "diurnal"
               else "rate_per_s")
    trace = generate(pool, horizon_s=args.duration, seed=args.seed,
                     **{rate_kw: args.rate})

    if args.policy == "smite":
        decider = PredictionService(predictor, target,
                                    tail_models=tail_models)
    elif args.policy == "random":
        decider = RandomDecider(seed=args.seed + 1)
    else:
        decider = BaselineDecider()

    audit = PredictionAudit()
    alerts = AlertEngine(default_rules(drift_bound=args.drift_bound))
    slo = WindowedSlo(args.window, target, tail_models=tail_models,
                      audit=audit, alerts=alerts)
    registry = None
    controller = None
    if args.adapt:
        refitter = OnlineRefitter(predictor, window=args.refit_window)
        registry = ModelRegistry(decider, predictor)
        controller = AdaptationController(
            refitter, registry, slo,
            policy=DriftPolicy(drift_bound=args.drift_bound),
        )
    engine = ServingEngine(
        simulator, apps, decider,
        servers_per_app=args.servers, epoch_s=args.epoch,
        window_s=args.window, slo=slo, audit=audit,
        adaptation=controller,
    )
    tracer = obs_trace.install() if args.trace_out else None
    series = (obs_timeseries.install(args.telemetry_interval)
              if args.telemetry_out else None)
    outcome = engine.replay(trace, strategy=args.engine,
                            shards=args.shards, jobs=args.jobs)
    if tracer is not None:
        obs_trace.uninstall()
        trace_path = obs_trace.write_chrome_trace(args.trace_out, tracer)
        print(f"trace written to {trace_path} "
              f"(load in Perfetto or chrome://tracing)")
    if series is not None:
        obs_timeseries.uninstall()
        telemetry_path = obs_timeseries.write_telemetry(
            args.telemetry_out, series)
        print(f"telemetry written to {telemetry_path} "
              f"({len(series.frames)} frames; tail with "
              f"`repro.cli obs top`)")

    print(f"{args.trace} trace, {outcome.arrivals} arrivals over "
          f"{trace.horizon_s / 3600:.1f} h, policy {outcome.policy}, "
          f"QoS {args.qos}")
    print(f"  placed: {outcome.colocated_placed} co-located, "
          f"{outcome.baseline_placed} baseline ({outcome.shed} shed), "
          f"{outcome.still_placed} still running at the horizon")
    metrics = snapshot()
    hits = metrics["counters"].get("serve.service.cache_hits", 0)
    misses = metrics["counters"].get("serve.service.cache_misses", 0)
    if hits + misses:
        print(f"  prediction LRU: {hits}/{hits + misses} hits "
              f"({hits / (hits + misses):.1%})")
    rows = [
        (w.index, w.samples, f"{w.mean_utilization_gain:.3f}",
         w.violations.colocated_servers, w.violations.violated_servers,
         f"{w.violations.rate:.3f}")
        for w in outcome.windows
    ]
    print(format_table(
        ("window", "samples", "util gain", "colocated", "violated",
         "violation rate"),
        rows,
        title=f"windowed SLO series ({args.window:.0f}s windows)",
    ))
    print(f"  mean utilization gain {outcome.mean_utilization_gain:.3f}, "
          f"mean violation rate {outcome.mean_violation_rate:.3f}")
    if audit.samples:
        print()
        print(render_audit(audit.snapshot()))
    if registry is not None:
        print("  " + render_adapt(registry.snapshot()))
    if alerts.events:
        print()
        print(render_alerts(alerts.snapshot()))
    if args.metrics_out:
        path = write_report(args.metrics_out, build_report(
            command=["repro.cli", "serve"], metrics=metrics,
            audit=audit.snapshot() if audit.samples else None,
            adapt=registry.snapshot() if registry is not None else None,
            alerts=alerts.snapshot(),
        ))
        print(f"  metrics report written to {path}")
    return 0


def _api_decider(args: argparse.Namespace):
    """Build the serve-api decider; only ``smite`` needs a fitted model."""
    if args.policy == "random":
        return RandomDecider(seed=args.seed + 1)
    if args.policy == "baseline":
        return BaselineDecider()
    simulator = Simulator(SANDY_BRIDGE_EN, disk_cache=default_cache())
    training = spec_odd()[:8] if args.fast else spec_odd()
    counts = (1, 3, 6) if args.fast else (1, 2, 4, 6)
    predictor = SMiTe(simulator).fit(training, mode="smt")
    predictor.fit_server(training, instance_counts=counts)
    target = _parse_qos(args.qos)
    tail_models = None
    if target.metric.value == "tail_latency":
        apps = cloudsuite_apps()[:2] if args.fast else cloudsuite_apps()
        tail_models = {
            app.name: fit_tail_model(simulator, predictor, app,
                                     des_jobs=10_000 if args.fast
                                     else 60_000)
            for app in apps
        }
    return PredictionService(predictor, target, tail_models=tail_models)


def _cmd_serve_api(args: argparse.Namespace) -> int:
    if args.shards > 1 and args.port != 0:
        raise ReproError(
            "--port only applies to the in-process server; sharded "
            "workers each listen on an ephemeral port (printed at start)"
        )
    if args.adapt and args.policy != "smite":
        raise ReproError("--adapt recalibrates the SMiTe regression; it "
                         "requires --policy smite")
    decider = _api_decider(args)
    registry = None
    if args.adapt:
        # The API path answers hypothetical placement queries and never
        # observes measured degradations, so drift cannot trigger here:
        # --adapt runs in standby. The registry gives the `stats` op its
        # model-version surface (and an operator a hot-swap handle).
        registry = ModelRegistry(decider, decider.predictor)
        print("adaptation standby: serving static coefficients (v0); "
              "the API path carries no measured degradations, so no "
              "drift-triggered swaps occur here")
    options = dict(
        max_batch=args.max_batch,
        queue_bound=args.queue_bound,
        batch_window_s=args.batch_window,
        retry_after_ms=args.retry_after,
        max_requests=args.max_requests,
    )
    series = (obs_timeseries.install(args.telemetry_interval)
              if args.telemetry_out else None)
    drained = True
    if args.shards > 1:
        def _announce(addresses: list[tuple[str, int]]) -> None:
            for host, port in addresses:
                print(f"listening on {host}:{port}", flush=True)

        try:
            summaries = run_api_shards(
                decider, shards=args.shards, jobs=args.jobs,
                host=args.host, ready_callback=_announce, **options,
            )
        except KeyboardInterrupt:
            drained = False
            summaries = []
        served = sum(s["requests"] or 0 for s in summaries)
        if drained:
            print(f"{len(summaries)} shard workers drained "
                  f"after {served} requests")
    else:
        server = ApiServer(decider, host=args.host, port=args.port,
                           **options)

        async def _run() -> None:
            host, port = await server.start()
            print(f"listening on {host}:{port}", flush=True)
            await server.serve_until_stopped()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            drained = False
        if drained:
            print(f"server drained after {server.requests_served} "
                  f"requests")
    metrics = snapshot()
    counters = metrics["counters"]
    requests = counters.get("serve.api.requests", 0)
    batches = counters.get("serve.api.batches", 0)
    sheds = counters.get("serve.api.sheds", 0)
    if batches:
        print(f"  {requests} requests answered in {batches} "
              f"micro-batches, {sheds} shed to the baseline")
    if series is not None:
        obs_timeseries.uninstall()
        telemetry_path = obs_timeseries.write_telemetry(
            args.telemetry_out, series)
        print(f"  telemetry written to {telemetry_path} "
              f"({len(series.frames)} frames)")
    if args.metrics_out:
        path = write_report(args.metrics_out, build_report(
            command=["repro.cli", "serve-api"], metrics=metrics,
            adapt=registry.snapshot() if registry is not None else None,
        ))
        print(f"  metrics report written to {path}")
    return 0


_HOST_PORT = re.compile(r"^(?P<host>[^/:]+):(?P<port>\d+)$")


def _top_snapshot(source: str) -> dict:
    """One renderable telemetry snapshot from a file or a live server."""
    match = _HOST_PORT.match(source)
    if match and not Path(source).exists():
        from repro.serve.api import ApiClient

        with ApiClient(match["host"], int(match["port"])) as client:
            payload = client.metrics()
        if not payload.get("enabled"):
            raise ReproError(
                f"server at {source} is not recording telemetry; start "
                f"it with --telemetry-out (or SMITE_TELEMETRY_OUT)"
            )
        frames = list(payload.get("frames", []))
        live = payload.get("frame")
        if live is not None and (
            not frames or live["t"] > frames[-1]["t"]
        ):
            frames.append(live)
        return {"interval_s": payload["interval_s"],
                "emitted": len(frames), "dropped": 0, "frames": frames}
    return obs_timeseries.load_jsonl(source)


def _obs_top(args: argparse.Namespace) -> int:
    """Terminal top-style view: tail a telemetry series, re-rendering."""
    while True:
        snapshot_view = _top_snapshot(args.source)
        print(obs_timeseries.render_top(snapshot_view, width=args.width))
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
        print()


def _cmd_obs(args: argparse.Namespace) -> int:
    try:
        if args.obs_command == "top":
            return _obs_top(args)
        if args.obs_command == "view":
            print(render_report(load_report(args.report),
                                limit=args.limit))
        elif args.obs_command == "diff":
            print(render_diff(
                load_report(args.report_a), load_report(args.report_b),
                a_label=Path(args.report_a).stem,
                b_label=Path(args.report_b).stem,
                limit=args.limit,
            ))
        else:  # trace
            doc = json.loads(
                Path(args.trace_file).read_text(encoding="utf-8")
            )
            print(obs_trace.render_trace_summary(doc, limit=args.top))
    except BrokenPipeError:
        raise  # piping into `head` is not an error; main() handles it
    except (OSError, ValueError) as exc:
        # Covers missing files, non-JSON input, and unsupported report
        # schemas (json.JSONDecodeError is a ValueError).
        raise ReproError(str(exc)) from exc
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="SMiTe one-off predictions and characterizations",
        epilog="All flags and SMITE_* environment variables (cache, jobs, "
               "metrics) are documented in one table in README.md "
               "('Configuration reference').",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list known workloads")

    characterize = sub.add_parser("characterize",
                                  help="Ruler-characterize one workload")
    characterize.add_argument("workload")
    characterize.add_argument("--machine", default=IVY_BRIDGE.name,
                              choices=sorted(MACHINES))
    characterize.add_argument("--mode", default="smt",
                              choices=("smt", "cmp"))

    predict = sub.add_parser("predict",
                             help="predict a pair's degradation")
    predict.add_argument("victim")
    predict.add_argument("aggressor")
    predict.add_argument("--machine", default=IVY_BRIDGE.name,
                         choices=sorted(MACHINES))
    predict.add_argument("--mode", default="smt", choices=("smt", "cmp"))
    predict.add_argument("--verify", action="store_true",
                         help="also measure the pair and report the error")

    safe = sub.add_parser("safe-batch",
                          help="safe instance counts for a latency app")
    safe.add_argument("latency_app")
    safe.add_argument("--qos", type=float, default=0.90,
                      help="QoS level on average performance (default 0.90)")

    serve = sub.add_parser(
        "serve",
        help="replay a job trace through the online serving runtime")
    serve.add_argument("--trace", default="diurnal",
                       choices=("poisson", "diurnal"),
                       help="arrival process (default diurnal)")
    serve.add_argument("--policy", default="smite",
                       choices=("smite", "random", "baseline"),
                       help="placement policy (default smite)")
    serve.add_argument("--qos", default="average:0.95",
                       help="QoS target: LEVEL, average:LEVEL, or "
                            "tail:LEVEL (default average:0.95)")
    serve.add_argument("--duration", type=float, default=86_400.0,
                       help="trace horizon in simulated seconds "
                            "(default one day)")
    serve.add_argument("--rate", type=float, default=0.05,
                       help="mean arrival rate, jobs/s (default 0.05)")
    serve.add_argument("--seed", type=int, default=42,
                       help="trace seed (default 42)")
    serve.add_argument("--servers", type=int, default=8,
                       help="servers per latency app (default 8)")
    serve.add_argument("--epoch", type=float, default=300.0,
                       help="event-epoch width in seconds (default 300)")
    serve.add_argument("--window", type=float, default=3_600.0,
                       help="SLO window width in seconds (default 3600)")
    serve.add_argument("--engine", default="vector",
                       choices=("vector", "scalar"),
                       help="replay strategy: struct-of-arrays (default)"
                            " or the per-event reference loop")
    serve.add_argument("--shards", type=int, default=0,
                       help="fan placement out over this many worker"
                            " processes (capped at one per server pool;"
                            " 0/1 stays in-process)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="max worker processes for --shards"
                            " (default: one per shard)")
    serve.add_argument("--adapt", action="store_true",
                       help="drift-triggered online recalibration: refit "
                            "the Sen x Con regression from audited "
                            "residuals and hot-swap coefficients at epoch "
                            "boundaries (requires --policy smite; see "
                            "docs/ADAPTATION.md)")
    serve.add_argument("--drift-bound", type=float, default=0.05,
                       help="mean |residual| per SLO window that counts "
                            "as calibration drift for --adapt "
                            "(default 0.05)")
    serve.add_argument("--refit-window", type=int, default=256,
                       help="residual observations retained for the "
                            "mini-batch refit fallback under --adapt "
                            "(default 256)")
    serve.add_argument("--fast", action="store_true",
                       help="CI-sized run: smaller training set and pools")
    serve.add_argument("--metrics-out", default=None,
                       help="write the JSON run report here "
                            "(SMITE_METRICS_OUT is honored too)")
    serve.add_argument("--trace-out", default=None,
                       help="write a Chrome trace-event JSON timeline "
                            "here (SMITE_TRACE_OUT is honored too)")
    serve.add_argument("--telemetry-out", default=None,
                       help="record the streaming telemetry time-series "
                            "and write it here: .jsonl for `obs top`, or "
                            ".prom/.om/.openmetrics for OpenMetrics "
                            "(SMITE_TELEMETRY_OUT is honored too)")
    serve.add_argument("--telemetry-interval", type=float,
                       default=obs_timeseries.DEFAULT_INTERVAL_S,
                       help="telemetry sampling cadence in simulated "
                            "seconds (default 300)")

    serve_api = sub.add_parser(
        "serve-api",
        help="answer prediction/placement queries over a TCP socket")
    serve_api.add_argument("--host", default="127.0.0.1",
                           help="interface to bind (default 127.0.0.1)")
    serve_api.add_argument("--port", type=int, default=0,
                           help="port to bind; 0 picks an ephemeral port, "
                                "printed at startup (in-process mode only)")
    serve_api.add_argument("--policy", default="smite",
                           choices=("smite", "random", "baseline"),
                           help="decider behind the socket (default smite)")
    serve_api.add_argument("--qos", default="average:0.95",
                           help="QoS target for --policy smite: LEVEL, "
                                "average:LEVEL, or tail:LEVEL "
                                "(default average:0.95)")
    serve_api.add_argument("--seed", type=int, default=42,
                           help="seed for --policy random (default 42)")
    serve_api.add_argument("--max-batch", type=int, default=64,
                           help="max requests coalesced into one decision "
                                "micro-batch (default 64)")
    serve_api.add_argument("--queue-bound", type=int, default=256,
                           help="pending-queue bound; overflow is answered "
                                "with the overloaded shed-to-baseline "
                                "response (default 256)")
    serve_api.add_argument("--batch-window", type=float, default=0.0,
                           help="seconds to linger after the first queued "
                                "request so a concurrent burst coalesces "
                                "(default 0: drain immediately)")
    serve_api.add_argument("--retry-after", type=float, default=50.0,
                           help="retry_after_ms hint carried by overloaded "
                                "responses (default 50)")
    serve_api.add_argument("--max-requests", type=int, default=None,
                           help="drain gracefully after answering this "
                                "many requests (default: serve until "
                                "shutdown)")
    serve_api.add_argument("--shards", type=int, default=0,
                           help="serve from this many worker processes, "
                                "each on its own printed ephemeral port "
                                "(0/1 stays in-process)")
    serve_api.add_argument("--jobs", type=int, default=None,
                           help="max worker processes for --shards "
                                "(default: one per shard)")
    serve_api.add_argument("--adapt", action="store_true",
                           help="standby adaptation: expose the model "
                                "registry and version surface in the "
                                "stats op (the API path has no measured "
                                "degradations, so no swaps trigger; "
                                "requires --policy smite)")
    serve_api.add_argument("--drift-bound", type=float, default=0.05,
                           help="reserved drift bound for --adapt "
                                "standby mode (default 0.05)")
    serve_api.add_argument("--refit-window", type=int, default=256,
                           help="reserved refit window for --adapt "
                                "standby mode (default 256)")
    serve_api.add_argument("--fast", action="store_true",
                           help="CI-sized run: smaller training set and "
                                "tail-model fits")
    serve_api.add_argument("--metrics-out", default=None,
                           help="write the JSON run report here after the "
                                "drain (SMITE_METRICS_OUT is honored too)")
    serve_api.add_argument("--telemetry-out", default=None,
                           help="record the streaming telemetry "
                                "time-series and write it here after the "
                                "drain; also enables the live `metrics` "
                                "wire op (SMITE_TELEMETRY_OUT is honored "
                                "too)")
    serve_api.add_argument("--telemetry-interval", type=float,
                           default=obs_timeseries.DEFAULT_INTERVAL_S,
                           help="telemetry sampling cadence in wall "
                                "seconds (default 300)")

    obs = sub.add_parser(
        "obs", help="inspect run reports and trace files")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    view = obs_sub.add_parser(
        "view", help="human-readable summary of one run report")
    view.add_argument("report")
    view.add_argument("--limit", type=int, default=8,
                      help="rows per table (default 8)")
    diff = obs_sub.add_parser(
        "diff", help="phase-attributed deltas between two run reports")
    diff.add_argument("report_a")
    diff.add_argument("report_b")
    diff.add_argument("--limit", type=int, default=12,
                      help="rows per delta table (default 12)")
    trace = obs_sub.add_parser(
        "trace", help="top-N longest events of a Chrome trace file")
    trace.add_argument("trace_file")
    trace.add_argument("--top", type=int, default=10,
                       help="events to show (default 10)")
    top = obs_sub.add_parser(
        "top", help="live terminal view of a telemetry time-series")
    top.add_argument("source",
                     help="telemetry JSONL path, or HOST:PORT of a "
                          "serve-api instance recording telemetry")
    top.add_argument("--once", action="store_true",
                     help="render one snapshot and exit instead of "
                          "tailing")
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh period in wall seconds (default 2)")
    top.add_argument("--width", type=int, default=24,
                     help="sparkline width in characters (default 24)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``smite`` command-line interface."""
    args = _parser().parse_args(argv)
    handlers = {
        "workloads": _cmd_workloads,
        "characterize": _cmd_characterize,
        "predict": _cmd_predict,
        "safe-batch": _cmd_safe_batch,
        "serve": _cmd_serve,
        "serve-api": _cmd_serve_api,
        "obs": _cmd_obs,
    }
    obs_trace.maybe_install_env_tracer()
    obs_timeseries.maybe_install_env_sampler()
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output was piped into something like `head`; not an error.
        return 0
    finally:
        # One-off commands honor SMITE_METRICS_OUT, SMITE_TRACE_OUT,
        # and SMITE_TELEMETRY_OUT like the runner does.
        maybe_write_env_report()
        obs_trace.maybe_write_env_trace()
        obs_timeseries.maybe_write_env_telemetry()


if __name__ == "__main__":
    raise SystemExit(main())
