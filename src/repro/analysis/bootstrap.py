"""Bootstrap confidence intervals for prediction-error statistics.

The paper reports point estimates (2.80%, 13.55%, ...). When comparing a
reproduction against them — or two models against each other — the right
question is whether differences exceed sampling noise over the finite
test-pair population. The percentile bootstrap answers it without
distributional assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ConfidenceInterval", "bootstrap_mean", "bootstrap_difference"]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile-bootstrap interval for one statistic."""

    point: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    def __post_init__(self) -> None:
        if not self.lower <= self.point <= self.upper:
            raise ConfigurationError(
                f"inconsistent interval: {self.lower} <= {self.point} "
                f"<= {self.upper} fails"
            )

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def excludes_zero(self) -> bool:
        """True when the interval lies strictly on one side of zero."""
        return self.lower > 0.0 or self.upper < 0.0

    def __str__(self) -> str:
        return (f"{self.point:.4f} "
                f"[{self.lower:.4f}, {self.upper:.4f}] "
                f"@{self.confidence:.0%}")


def _resample_statistics(
    sample: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    n = sample.size
    indices = rng.integers(0, n, size=(resamples, n))
    return np.array([statistic(sample[row]) for row in indices])


def bootstrap_mean(
    sample: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for a sample mean (e.g. |error| per pair)."""
    arr = np.asarray(sample, dtype=float)
    if arr.size < 2:
        raise ConfigurationError("bootstrap needs at least two observations")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 100:
        raise ConfigurationError("use at least 100 bootstrap resamples")
    rng = np.random.default_rng(seed)
    stats = _resample_statistics(arr, np.mean, resamples, rng)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(stats, [alpha, 1.0 - alpha])
    point = float(arr.mean())
    return ConfidenceInterval(
        point=point,
        lower=min(float(lower), point),
        upper=max(float(upper), point),
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_difference(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """CI for ``mean(a) - mean(b)`` over *paired* observations.

    Use for model comparisons on a shared test set (e.g. PMU error minus
    SMiTe error per co-location pair): pairing removes the variance the
    two models share, so the interval isolates the model difference.
    ``excludes_zero()`` then answers "is the win significant?".
    """
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.shape != b.shape:
        raise ConfigurationError(
            f"paired samples must align, got {a.shape} vs {b.shape}"
        )
    return bootstrap_mean(a - b, confidence=confidence,
                          resamples=resamples, seed=seed)
