"""Fixed-width text tables for experiment reports.

Every experiment driver prints its result as one of these tables so the
benchmark harness output reads like the rows of the corresponding paper
table or figure.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "format_cell"]


def format_cell(value: object) -> str:
    """Render a table cell: floats get 4 significant decimals, rest str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render a fixed-width table with a header rule.

    ``rows`` cells may be any type; floats are formatted consistently.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one header")
    rendered = [[format_cell(c) for c in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {i} has {len(row)} cells for {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)
