"""Ordinary least squares with an optional ridge penalty.

Both the SMiTe model (Equation 3) and the PMU baseline (Equation 9) are
linear regressions; this module is the single fitting backend for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LinearModel", "fit_least_squares"]


@dataclass(frozen=True)
class LinearModel:
    """A fitted linear model ``y = X @ coefficients + intercept``."""

    coefficients: np.ndarray
    intercept: float
    r_squared: float
    feature_names: tuple[str, ...] = ()

    @property
    def n_features(self) -> int:
        return int(self.coefficients.size)

    def predict(self, features: Sequence[float] | np.ndarray) -> float:
        """Predict the response for one feature vector."""
        x = np.asarray(features, dtype=float)
        if x.ndim != 1 or x.size != self.coefficients.size:
            raise ConfigurationError(
                f"expected {self.coefficients.size} features, got shape {x.shape}"
            )
        return float(x @ self.coefficients + self.intercept)

    def predict_many(self, matrix: np.ndarray) -> np.ndarray:
        """Predict responses for a 2-D feature matrix (rows = samples)."""
        m = np.asarray(matrix, dtype=float)
        if m.ndim != 2 or m.shape[1] != self.coefficients.size:
            raise ConfigurationError(
                f"expected (n, {self.coefficients.size}) matrix, got {m.shape}"
            )
        return m @ self.coefficients + self.intercept

    def describe(self) -> str:
        """Human-readable coefficient listing for reports."""
        names = self.feature_names or tuple(
            f"x{i}" for i in range(self.coefficients.size)
        )
        parts = [f"{name}: {c:+.4f}" for name, c in zip(names, self.coefficients)]
        parts.append(f"intercept: {self.intercept:+.4f}")
        parts.append(f"R^2: {self.r_squared:.4f}")
        return ", ".join(parts)


def fit_least_squares(
    matrix: np.ndarray,
    response: Sequence[float],
    *,
    ridge: float = 0.0,
    nonnegative: bool = False,
    feature_names: Sequence[str] = (),
) -> LinearModel:
    """Fit ``response ~ matrix`` with an intercept.

    ``ridge`` adds an L2 penalty (not applied to the intercept); useful when
    feature columns are nearly collinear, which happens for the PMU baseline
    where several counters move together.

    ``nonnegative`` constrains every feature coefficient (not the
    intercept) to be >= 0 — appropriate when features are interference
    terms, which can only ever add degradation. Collinear unconstrained
    fits produce large sign-flipping coefficient pairs that extrapolate
    catastrophically outside the training population.
    """
    x = np.asarray(matrix, dtype=float)
    y = np.asarray(response, dtype=float)
    if x.ndim != 2:
        raise ConfigurationError(f"feature matrix must be 2-D, got shape {x.shape}")
    if y.ndim != 1 or y.size != x.shape[0]:
        raise ConfigurationError(
            f"response must be 1-D with {x.shape[0]} rows, got shape {y.shape}"
        )
    if x.shape[0] <= x.shape[1]:
        raise ConfigurationError(
            f"need more samples ({x.shape[0]}) than features ({x.shape[1]})"
        )
    if ridge < 0.0:
        raise ConfigurationError(f"ridge penalty must be >= 0, got {ridge}")
    if feature_names and len(feature_names) != x.shape[1]:
        raise ConfigurationError(
            f"got {len(feature_names)} feature names for {x.shape[1]} features"
        )

    design = np.hstack([x, np.ones((x.shape[0], 1))])
    if nonnegative:
        beta = _fit_nonnegative(design, y, ridge)
    elif ridge > 0.0:
        penalty = ridge * np.eye(design.shape[1])
        penalty[-1, -1] = 0.0  # leave the intercept unpenalized
        gram = design.T @ design + penalty
        beta = np.linalg.solve(gram, design.T @ y)
    else:
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)

    fitted = design @ beta
    ss_res = float(((y - fitted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearModel(
        coefficients=beta[:-1],
        intercept=float(beta[-1]),
        r_squared=r_squared,
        feature_names=tuple(feature_names),
    )


def _fit_nonnegative(design: np.ndarray, y: np.ndarray,
                     ridge: float) -> np.ndarray:
    """NNLS over the features; the intercept stays unconstrained.

    The intercept (last design column) is split into +1/-1 columns so its
    net coefficient can take either sign while scipy's NNLS constrains
    everything it sees.
    """
    from scipy.optimize import nnls

    features = design[:, :-1]
    n = features.shape[1]
    ones = np.ones((features.shape[0], 1))
    augmented = np.hstack([features, ones, -ones])
    if ridge > 0.0:
        # Tikhonov rows shrink the feature coefficients only.
        penalty = np.sqrt(ridge) * np.eye(n)
        penalty = np.hstack([penalty, np.zeros((n, 2))])
        augmented = np.vstack([augmented, penalty])
        y = np.concatenate([y, np.zeros(n)])
    solution, _residual = nnls(augmented, y)
    beta = np.empty(n + 1)
    beta[:n] = solution[:n]
    beta[n] = solution[n] - solution[n + 1]
    return beta
