"""Basic statistics: Pearson correlation, empirical CDFs, summaries.

These are the primitives behind the paper's Figure 3/5 (utilization CDFs),
Figure 7 (correlation among sharing dimensions), and the error metrics of
Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "pearson",
    "pearson_matrix",
    "empirical_cdf",
    "EmpiricalCdf",
    "mean_absolute_error",
    "summarize",
    "DistributionSummary",
]


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient between two equal-length samples.

    Returns 0.0 when either sample has zero variance (no linear relationship
    is measurable), matching how the paper treats degenerate dimensions.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ConfigurationError(
            f"pearson requires two 1-D samples of equal length, "
            f"got shapes {xa.shape} and {ya.shape}"
        )
    if xa.size < 2:
        raise ConfigurationError("pearson requires at least two observations")
    xc = xa - xa.mean()
    yc = ya - ya.mean()
    denom = float(np.sqrt((xc * xc).sum() * (yc * yc).sum()))
    if denom == 0.0:
        return 0.0
    return float((xc * yc).sum() / denom)


def pearson_matrix(columns: Sequence[Sequence[float]]) -> np.ndarray:
    """Pairwise Pearson coefficients for a list of equally sized columns.

    Returns an ``(n, n)`` symmetric matrix with unit diagonal. Used for
    Figure 7, where the columns are the 14 sensitivity/contentiousness
    dimensions measured across all benchmarks.
    """
    n = len(columns)
    if n == 0:
        raise ConfigurationError("pearson_matrix requires at least one column")
    out = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            r = pearson(columns[i], columns[j])
            out[i, j] = r
            out[j, i] = r
    return out


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical cumulative distribution function over a finite sample."""

    values: np.ndarray  # sorted ascending
    probabilities: np.ndarray  # cumulative, in (0, 1]

    def at(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        idx = int(np.searchsorted(self.values, x, side="right"))
        if idx == 0:
            return 0.0
        return float(self.probabilities[idx - 1])

    def quantile(self, p: float) -> float:
        """Smallest sample value v with P(X <= v) >= p."""
        if not 0.0 < p <= 1.0:
            raise ConfigurationError(f"quantile level must be in (0, 1], got {p}")
        idx = int(np.searchsorted(self.probabilities, p, side="left"))
        idx = min(idx, len(self.values) - 1)
        return float(self.values[idx])

    @property
    def median(self) -> float:
        return self.quantile(0.5)


def empirical_cdf(sample: Sequence[float]) -> EmpiricalCdf:
    """Build an :class:`EmpiricalCdf` from a sample."""
    arr = np.sort(np.asarray(sample, dtype=float))
    if arr.size == 0:
        raise ConfigurationError("cannot build a CDF from an empty sample")
    probs = np.arange(1, arr.size + 1, dtype=float) / arr.size
    return EmpiricalCdf(values=arr, probabilities=probs)


def mean_absolute_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Mean of ``|predicted - actual|`` — the paper's Equation 8, averaged."""
    pa = np.asarray(predicted, dtype=float)
    aa = np.asarray(actual, dtype=float)
    if pa.shape != aa.shape:
        raise ConfigurationError(
            f"prediction/actual shape mismatch: {pa.shape} vs {aa.shape}"
        )
    if pa.size == 0:
        raise ConfigurationError("cannot compute error over an empty set")
    return float(np.abs(pa - aa).mean())


@dataclass(frozen=True)
class DistributionSummary:
    """Min / mean / median / max / stddev of a sample."""

    count: int
    minimum: float
    mean: float
    median: float
    maximum: float
    stddev: float


def summarize(sample: Sequence[float]) -> DistributionSummary:
    """Summarize a sample the way the paper's bar charts report ranges."""
    arr = np.asarray(sample, dtype=float)
    if arr.size == 0:
        raise ConfigurationError("cannot summarize an empty sample")
    return DistributionSummary(
        count=int(arr.size),
        minimum=float(arr.min()),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
        stddev=float(arr.std()),
    )
