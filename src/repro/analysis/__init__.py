"""Statistics and regression utilities shared across the library.

This package deliberately implements the small amount of statistics the
paper needs (Pearson correlation, empirical CDFs, ordinary least squares)
directly on numpy so the core library depends on nothing heavier.
"""

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_difference,
    bootstrap_mean,
)
from repro.analysis.linreg import LinearModel, fit_least_squares
from repro.analysis.stats import (
    empirical_cdf,
    mean_absolute_error,
    pearson,
    pearson_matrix,
    summarize,
)
from repro.analysis.tables import format_table

__all__ = [
    "ConfidenceInterval",
    "bootstrap_difference",
    "bootstrap_mean",
    "LinearModel",
    "fit_least_squares",
    "empirical_cdf",
    "mean_absolute_error",
    "pearson",
    "pearson_matrix",
    "summarize",
    "format_table",
]
