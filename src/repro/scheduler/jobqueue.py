"""Job-queue scheduling: matching arriving batch jobs to suitable servers.

The scale-out study (Section IV-C) fixes one batch candidate per server
and asks "how many instances?". The paper's operational sketch in
Section III-D goes further: the cluster scheduler profiles an arriving
job online and then *chooses where to put it*. This module implements
that extension — a greedy, prediction-steered bin-packer:

- every server advertises its remaining QoS headroom (the degradation
  budget minus what already-placed jobs are predicted to consume);
- each arriving job is placed on the server where it fits and leaves the
  most balanced residual headroom (best-fit decreasing, the classic
  bin-packing heuristic);
- jobs that fit nowhere are left in the backlog, exactly what a real
  cluster would requeue.

The result quantifies the *placement* value of precise prediction: the
same jobs, placed by a prediction-blind round-robin, violate QoS or
strand capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.predictor import SMiTe
from repro.core.tail import TailLatencyModel
from repro.errors import SchedulingError
from repro.scheduler.qos import QosTarget
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = ["BatchJob", "ServerSlot", "Placement", "PackingResult",
           "JobQueueScheduler", "round_robin_baseline"]


@dataclass(frozen=True)
class BatchJob:
    """One arriving batch job: a workload plus how many copies it wants."""

    profile: WorkloadProfile
    instances: int = 1

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise SchedulingError(
                f"{self.profile.name}: a job needs at least one instance"
            )

    @property
    def name(self) -> str:
        return self.profile.name


@dataclass
class ServerSlot:
    """A server's co-location state during packing.

    ``resident`` maps placed batch profiles to instance counts; only one
    batch application per server is allowed (the paper's topology — each
    sibling context runs the same batch binary), so a server is either
    empty or committed to one job's profile.
    """

    index: int
    latency_app: LatencySensitiveWorkload
    capacity: int
    resident_profile: WorkloadProfile | None = None
    resident_instances: int = 0

    @property
    def free_contexts(self) -> int:
        return self.capacity - self.resident_instances

    def accepts(self, profile: WorkloadProfile) -> bool:
        return (self.resident_profile is None
                or self.resident_profile.name == profile.name)


@dataclass(frozen=True)
class Placement:
    """One job's assignment across servers."""

    job: BatchJob
    assignments: tuple[tuple[int, int], ...]  # (server index, instances)

    @property
    def placed_instances(self) -> int:
        return sum(count for _, count in self.assignments)

    @property
    def fully_placed(self) -> bool:
        return self.placed_instances == self.job.instances


@dataclass(frozen=True)
class PackingResult:
    """Outcome of packing a job stream onto the fleet."""

    placements: tuple[Placement, ...]
    backlog: tuple[BatchJob, ...]
    servers: tuple[ServerSlot, ...]

    @property
    def placed_instances(self) -> int:
        return sum(p.placed_instances for p in self.placements)

    @property
    def utilization_improvement(self) -> float:
        baseline = sum(s.capacity for s in self.servers)
        return self.placed_instances / baseline if baseline else 0.0

    def headroom_of(self, index: int) -> ServerSlot:
        return self.servers[index]


class JobQueueScheduler:
    """Greedy best-fit packing steered by SMiTe predictions."""

    def __init__(
        self,
        predictor: SMiTe,
        servers: Sequence[tuple[LatencySensitiveWorkload, int]],
        target: QosTarget,
        *,
        tail_models: dict[str, TailLatencyModel] | None = None,
    ) -> None:
        """``servers`` is (latency app, batch capacity) per server."""
        if not predictor.model.is_fitted:
            raise SchedulingError("the scheduler needs a fitted predictor")
        if not servers:
            raise SchedulingError("the scheduler needs at least one server")
        self.predictor = predictor
        self.target = target
        self._tail_models = tail_models or {}
        self.servers = [
            ServerSlot(index=i, latency_app=app, capacity=capacity)
            for i, (app, capacity) in enumerate(servers)
        ]

    # ------------------------------------------------------------------

    def _budget_for(self, server: ServerSlot) -> float:
        tail_model = self._tail_models.get(server.latency_app.name)
        if (self.target.metric.value == "tail_latency"
                and tail_model is None):
            raise SchedulingError(
                f"no tail model for {server.latency_app.name}"
            )
        return self.target.degradation_budget(tail_model)

    def _max_safe_instances(self, server: ServerSlot,
                            profile: WorkloadProfile) -> int:
        """Largest total instance count this server can predictably host."""
        budget = self._budget_for(server)
        for total in range(server.capacity, server.resident_instances, -1):
            predicted = self.predictor.predict_server(
                server.latency_app.profile, profile, instances=total,
            )
            if predicted <= budget:
                return total
        return server.resident_instances

    def place(self, job: BatchJob) -> Placement:
        """Place one job greedily over the fleet (best fit first)."""
        remaining = job.instances
        assignments: list[tuple[int, int]] = []
        # Best fit: consider servers by how snugly the job fits — the
        # smallest sufficient headroom first keeps large holes for large
        # later jobs.
        candidates = []
        for server in self.servers:
            if remaining == 0:
                break
            if not server.accepts(job.profile) or server.free_contexts == 0:
                continue
            safe_total = self._max_safe_instances(server, job.profile)
            available = safe_total - server.resident_instances
            if available > 0:
                candidates.append((available, server))
        candidates.sort(key=lambda item: (item[0], item[1].index))
        for available, server in candidates:
            if remaining == 0:
                break
            take = min(available, remaining)
            server.resident_profile = job.profile
            server.resident_instances += take
            assignments.append((server.index, take))
            remaining -= take
        return Placement(job=job, assignments=tuple(assignments))

    def pack(self, jobs: Sequence[BatchJob]) -> PackingResult:
        """Pack a whole queue, largest jobs first (best-fit decreasing)."""
        placements: list[Placement] = []
        backlog: list[BatchJob] = []
        ordered = sorted(jobs, key=lambda j: -j.instances)
        for job in ordered:
            placement = self.place(job)
            if placement.placed_instances == 0:
                backlog.append(job)
            else:
                placements.append(placement)
                shortfall = job.instances - placement.placed_instances
                if shortfall > 0:
                    backlog.append(BatchJob(profile=job.profile,
                                            instances=shortfall))
        return PackingResult(
            placements=tuple(placements),
            backlog=tuple(backlog),
            servers=tuple(self.servers),
        )


def round_robin_baseline(
    servers: Sequence[tuple[LatencySensitiveWorkload, int]],
    jobs: Sequence[BatchJob],
) -> PackingResult:
    """Prediction-blind placement: fill servers in order until full.

    The comparison point for :class:`JobQueueScheduler` — it places at
    least as many instances but has no idea what it does to QoS.
    """
    slots = [
        ServerSlot(index=i, latency_app=app, capacity=capacity)
        for i, (app, capacity) in enumerate(servers)
    ]
    placements: list[Placement] = []
    backlog: list[BatchJob] = []
    for job in jobs:
        remaining = job.instances
        assignments: list[tuple[int, int]] = []
        for server in slots:
            if remaining == 0:
                break
            if not server.accepts(job.profile):
                continue
            take = min(server.free_contexts, remaining)
            if take == 0:
                continue
            server.resident_profile = job.profile
            server.resident_instances += take
            assignments.append((server.index, take))
            remaining -= take
        if assignments:
            placements.append(Placement(job=job,
                                        assignments=tuple(assignments)))
        if remaining:
            backlog.append(BatchJob(profile=job.profile,
                                    instances=remaining))
    return PackingResult(placements=tuple(placements),
                         backlog=tuple(backlog), servers=tuple(slots))
