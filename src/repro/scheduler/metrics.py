"""Scale-out outcome metrics: utilization gains and QoS violations."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tail import TailLatencyModel
from repro.errors import SchedulingError
from repro.scheduler.cluster import Cluster
from repro.scheduler.qos import QosTarget

__all__ = ["ViolationStats", "ScaleOutResult", "violation_stats"]


@dataclass(frozen=True)
class ViolationStats:
    """QoS-violation accounting over a cluster's co-located servers.

    ``rate`` is violations / co-locations (the paper's percentage of QoS
    violation); ``worst_magnitude`` is the largest normalized violation.
    """

    colocated_servers: int
    violated_servers: int
    worst_magnitude: float
    mean_magnitude: float

    @property
    def rate(self) -> float:
        if self.colocated_servers == 0:
            return 0.0
        return self.violated_servers / self.colocated_servers


@dataclass(frozen=True)
class ScaleOutResult:
    """One (policy, QoS target) cell of Figures 14-17."""

    policy: str
    target: QosTarget
    utilization_improvement: float
    violations: ViolationStats


def violation_stats(
    cluster: Cluster,
    target: QosTarget,
    *,
    tail_models: dict[str, TailLatencyModel] | None = None,
) -> ViolationStats:
    """Check every co-located server's actual degradation against the QoS."""
    colocated = [s for s in cluster.servers if s.is_colocated]
    violated = 0
    worst = 0.0
    total_magnitude = 0.0
    for server in colocated:
        tail_model = None
        if tail_models is not None:
            tail_model = tail_models.get(server.latency_app.name)
            if tail_model is None:
                raise SchedulingError(
                    f"no tail model for {server.latency_app.name}"
                )
        if not target.is_met(server.actual_degradation, tail_model):
            violated += 1
            magnitude = target.violation_magnitude(
                server.actual_degradation, tail_model
            )
            worst = max(worst, magnitude)
            total_magnitude += magnitude
    return ViolationStats(
        colocated_servers=len(colocated),
        violated_servers=violated,
        worst_magnitude=worst,
        mean_magnitude=(total_magnitude / violated) if violated else 0.0,
    )
