"""QoS targets: average performance or percentile latency.

A QoS target of 0.95 on *average performance* means the latency app must
retain at least 95% of its solo IPC (degradation <= 5%). On *tail
latency* it means the 90th-percentile latency may grow to at most
baseline/0.95 — which, through the queueing model, maps to a much
tighter degradation budget (the paper's Section IV-D point).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.tail import TailLatencyModel
from repro.errors import ConfigurationError

__all__ = ["QosMetric", "QosTarget", "UNSTABLE_VIOLATION"]

#: Cap on the reported tail-latency violation when a co-location drives
#: the queue unstable (latency unbounded in steady state).
UNSTABLE_VIOLATION = 10.0


class QosMetric(enum.Enum):
    """Which latency statistic a QoS target constrains."""
    AVERAGE_PERFORMANCE = "average_performance"
    TAIL_LATENCY = "tail_latency"

    def __repr__(self) -> str:
        return f"QosMetric.{self.name}"


@dataclass(frozen=True)
class QosTarget:
    """A QoS requirement: metric plus the retained-quality level."""

    metric: QosMetric
    level: float  # e.g. 0.95, 0.90, 0.85

    def __post_init__(self) -> None:
        if not 0.0 < self.level <= 1.0:
            raise ConfigurationError(
                f"QoS level must be in (0, 1], got {self.level}"
            )

    @staticmethod
    def average(level: float) -> "QosTarget":
        return QosTarget(metric=QosMetric.AVERAGE_PERFORMANCE, level=level)

    @staticmethod
    def tail(level: float) -> "QosTarget":
        return QosTarget(metric=QosMetric.TAIL_LATENCY, level=level)

    def degradation_budget(
        self, tail_model: TailLatencyModel | None = None
    ) -> float:
        """The largest average degradation that still meets this target."""
        if self.metric is QosMetric.AVERAGE_PERFORMANCE:
            return 1.0 - self.level
        if tail_model is None:
            raise ConfigurationError(
                "tail-latency QoS targets need a fitted TailLatencyModel"
            )
        return tail_model.max_safe_degradation(self.level)

    def is_met(self, degradation: float,
               tail_model: TailLatencyModel | None = None) -> bool:
        """Whether an observed degradation satisfies the target."""
        return degradation <= self.degradation_budget(tail_model) + 1e-12

    def violation_magnitude(
        self, degradation: float,
        tail_model: TailLatencyModel | None = None,
    ) -> float:
        """Normalized violation (QoS_target - QoS_actual) / QoS_target.

        For average performance, actual QoS is ``1 - degradation`` (the
        paper's definition). For tail latency, the violation is the
        percentile-latency overshoot relative to the allowed budget
        ``baseline / level`` — queueing makes this grow super-linearly,
        which is how the paper's Random policy reaches 110% violations.
        A co-location that drives the queue unstable is capped at
        :data:`UNSTABLE_VIOLATION`.
        """
        if self.metric is QosMetric.AVERAGE_PERFORMANCE:
            actual = 1.0 - degradation
            return max(0.0, (self.level - actual) / self.level)
        if tail_model is None:
            raise ConfigurationError(
                "tail-latency QoS targets need a fitted TailLatencyModel"
            )
        budget = tail_model.baseline_latency() / self.level
        try:
            observed = tail_model.predict_latency(degradation)
        except Exception:
            return UNSTABLE_VIOLATION  # queue driven unstable
        return min(UNSTABLE_VIOLATION, max(0.0, (observed - budget) / budget))
