"""Cluster-level scale-out study (Sections IV-C and IV-D).

Models the paper's 4,000-server warehouse: each server runs one
latency-sensitive CloudSuite app half-loaded (one thread per core, the
sibling SMT contexts idle), and a co-location policy decides how many
instances of an arriving batch application may fill the idle contexts
without violating the QoS target.

Policies: the no-co-location baseline, SMiTe (prediction-steered), Oracle
(actual measured degradation), and Random (interference-oblivious, driven
to a target utilization for the violation comparison).
"""

from repro.scheduler.cluster import Cluster, ServerState
from repro.scheduler.jobqueue import (
    BatchJob,
    JobQueueScheduler,
    PackingResult,
    Placement,
    round_robin_baseline,
)
from repro.scheduler.metrics import ScaleOutResult, ViolationStats
from repro.scheduler.policies import (
    ColocationPolicy,
    NoColocationPolicy,
    OraclePolicy,
    RandomPolicy,
    SMiTePolicy,
)
from repro.scheduler.qos import QosTarget
from repro.scheduler.scaleout import ScaleOutStudy

__all__ = [
    "Cluster",
    "ServerState",
    "BatchJob",
    "JobQueueScheduler",
    "PackingResult",
    "Placement",
    "round_robin_baseline",
    "ScaleOutResult",
    "ViolationStats",
    "ColocationPolicy",
    "NoColocationPolicy",
    "OraclePolicy",
    "RandomPolicy",
    "SMiTePolicy",
    "QosTarget",
    "ScaleOutStudy",
]
