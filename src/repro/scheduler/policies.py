"""Co-location policies for the scale-out study.

A policy answers one question per server: given the latency-sensitive app
already running there and a candidate batch application, how many batch
instances may fill the idle SMT contexts? The paper compares:

- the state-of-the-art **baseline** — no SMT co-location at all;
- **SMiTe** — as many instances as the prediction says stay within the
  QoS target's degradation budget;
- **Oracle** — the same decision made with the *actual* measured
  degradation (the upper bound on what prediction-steered scheduling can
  achieve);
- **Random** — interference-oblivious placement driven to the same total
  utilization gain as SMiTe, used to quantify how many violations precise
  prediction avoids.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.predictor import SMiTe
from repro.core.tail import TailLatencyModel
from repro.errors import SchedulingError
from repro.scheduler.qos import QosTarget
from repro.smt.simulator import Simulator
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = [
    "ColocationPolicy",
    "NoColocationPolicy",
    "SMiTePolicy",
    "OraclePolicy",
    "RandomPolicy",
]


class ColocationPolicy(ABC):
    """Decides batch-instance counts per server."""

    name: str = "policy"
    #: True when ``decide`` itself queries the simulator (so a driver can
    #: bulk-prefetch the decision space before the per-server loop).
    uses_simulator: bool = False

    @abstractmethod
    def decide(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_app: WorkloadProfile,
        target: QosTarget,
        *,
        max_instances: int,
        tail_model: TailLatencyModel | None = None,
    ) -> int:
        """How many instances of ``batch_app`` to co-locate (0..max)."""


class NoColocationPolicy(ColocationPolicy):
    """The paper's baseline: leave every sibling SMT context idle."""

    name = "baseline"

    def decide(self, latency_app, batch_app, target, *, max_instances,
               tail_model=None) -> int:
        return 0


class SMiTePolicy(ColocationPolicy):
    """Admit the largest instance count the prediction calls safe."""

    name = "smite"

    def __init__(self, predictor: SMiTe) -> None:
        if not predictor.model.is_fitted:
            raise SchedulingError("SMiTePolicy needs a fitted predictor")
        self.predictor = predictor

    def decide(self, latency_app, batch_app, target, *, max_instances,
               tail_model=None) -> int:
        budget = target.degradation_budget(tail_model)
        for instances in range(max_instances, 0, -1):
            predicted = self.predictor.predict_server(
                latency_app.profile, batch_app, instances=instances,
            )
            if predicted <= budget:
                return instances
        return 0


class OraclePolicy(ColocationPolicy):
    """Admit based on the actual measured degradation (offline exhaustive)."""

    name = "oracle"
    uses_simulator = True

    def __init__(self, simulator: Simulator) -> None:
        self.simulator = simulator

    def decide(self, latency_app, batch_app, target, *, max_instances,
               tail_model=None) -> int:
        budget = target.degradation_budget(tail_model)
        for instances in range(max_instances, 0, -1):
            actual = self.simulator.measure_server_degradation(
                latency_app.profile, batch_app, instances=instances,
                mode="smt",
            )
            if actual <= budget:
                return instances
        return 0


class RandomPolicy(ColocationPolicy):
    """Interference-oblivious: a fixed instance count chosen at random.

    Constructed by the study driver with a per-server count so the
    cluster-wide utilization gain matches a reference policy exactly (the
    paper's comparison protocol); the policy itself never looks at QoS.
    """

    name = "random"

    def __init__(self, counts: dict[int, int]) -> None:
        self._counts = dict(counts)
        self._server = 0

    def decide(self, latency_app, batch_app, target, *, max_instances,
               tail_model=None) -> int:
        count = self._counts.get(self._server, 0)
        self._server += 1
        if count > max_instances:
            raise SchedulingError(
                f"random assignment of {count} exceeds {max_instances} slots"
            )
        return count

    def reset(self) -> None:
        self._server = 0
