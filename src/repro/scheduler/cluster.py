"""The 4,000-server cluster model.

Each server runs one latency-sensitive CloudSuite application, half-loaded
(one thread per core; the sibling SMT contexts idle). A seeded stream of
batch applications arrives, one candidate per server; the active policy
decides how many instances to admit, and the simulator provides the
actual degradation each decision causes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.tail import TailLatencyModel
from repro.errors import SchedulingError
from repro.obs import counter, span
from repro.scheduler.policies import ColocationPolicy
from repro.scheduler.qos import QosTarget
from repro.smt.simulator import ContextPlacement, Simulator
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = ["ServerState", "Cluster"]


@dataclass
class ServerState:
    """One server: its latency app, batch candidate, and the decision."""

    index: int
    latency_app: LatencySensitiveWorkload
    batch_candidate: WorkloadProfile
    instances: int = 0
    actual_degradation: float = 0.0

    @property
    def is_colocated(self) -> bool:
        return self.instances > 0


@dataclass
class Cluster:
    """A fixed fleet of servers plus the machinery to apply policies."""

    simulator: Simulator
    servers: list[ServerState] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        simulator: Simulator,
        latency_apps: Sequence[LatencySensitiveWorkload],
        batch_pool: Sequence[WorkloadProfile],
        *,
        servers_per_app: int = 1000,
        seed: int = 42,
    ) -> "Cluster":
        """The paper's layout: ``servers_per_app`` servers per latency app.

        Batch candidates are drawn uniformly (seeded) from the pool — the
        arrival stream the cluster scheduler sees.
        """
        if not latency_apps:
            raise SchedulingError("cluster needs at least one latency app")
        if not batch_pool:
            raise SchedulingError("cluster needs a batch-application pool")
        if servers_per_app < 1:
            raise SchedulingError("servers_per_app must be >= 1")
        rng = np.random.default_rng(seed)
        servers = []
        index = 0
        for app in latency_apps:
            for _ in range(servers_per_app):
                batch = batch_pool[int(rng.integers(0, len(batch_pool)))]
                servers.append(ServerState(
                    index=index, latency_app=app, batch_candidate=batch,
                ))
                index += 1
        return cls(simulator=simulator, servers=servers)

    # ------------------------------------------------------------------

    @property
    def threads_per_server(self) -> int:
        """Latency threads per server (one per core, half-loading it)."""
        return self.simulator.machine.cores

    @property
    def contexts_per_server(self) -> int:
        return self.simulator.machine.total_contexts

    def apply_policy(
        self,
        policy: ColocationPolicy,
        target: QosTarget,
        *,
        tail_models: dict[str, TailLatencyModel] | None = None,
    ) -> None:
        """Run the policy over every server and record actual outcomes.

        Decisions run strictly in server order (policies may be stateful),
        but the solves behind them are batched: an oracle-style policy gets
        its whole (app, candidate, instances) decision space prefetched up
        front, and the outcome measurements are prefetched between the
        decision and measurement passes. With 4,000 servers drawing from a
        small app x candidate pool, this collapses thousands of
        ``measure_server_degradation`` calls into a few batch solves.
        """
        with span("cluster.apply_policy"):
            if policy.uses_simulator:
                self._prefetch_decision_space()
            decisions: list[int] = []
            for server in self.servers:
                tail_model = None
                if tail_models is not None:
                    tail_model = tail_models.get(server.latency_app.name)
                    if tail_model is None:
                        raise SchedulingError(
                            f"no tail model for {server.latency_app.name}"
                        )
                decisions.append(policy.decide(
                    server.latency_app,
                    server.batch_candidate,
                    target,
                    max_instances=self.threads_per_server,
                    tail_model=tail_model,
                ))
            counter("scheduler.cluster.decisions").inc(len(decisions))
            self._prefetch_outcomes(decisions)
            violations = 0
            for server, instances in zip(self.servers, decisions):
                server.instances = instances
                if instances == 0:
                    server.actual_degradation = 0.0
                else:
                    server.actual_degradation = (
                        self.simulator.measure_server_degradation(
                            server.latency_app.profile,
                            server.batch_candidate,
                            instances=instances,
                            mode="smt",
                        )
                    )
                    tail_model = (tail_models.get(server.latency_app.name)
                                  if tail_models is not None else None)
                    if not target.is_met(server.actual_degradation,
                                         tail_model):
                        violations += 1
            counter("scheduler.cluster.colocations").inc(
                sum(1 for k in decisions if k > 0))
            counter("scheduler.cluster.instances").inc(sum(decisions))
            counter("scheduler.cluster.qos_violations").inc(violations)

    def _prefetch_decision_space(self) -> None:
        """Batch-solve every placement an exhaustive policy could query."""
        jobs = []
        for app, batch in dict.fromkeys(
                (s.latency_app, s.batch_candidate) for s in self.servers):
            jobs.append([ContextPlacement(batch, core=0)])
            jobs.extend(
                self.simulator.server_placements(app.profile, batch,
                                                 instances=k, mode="smt")
                for k in range(self.threads_per_server + 1)
            )
        self.simulator.prefetch(jobs)

    def _prefetch_outcomes(self, decisions: Sequence[int]) -> None:
        """Batch-solve the placements the measurement pass will read."""
        jobs = []
        for app, batch, instances in dict.fromkeys(
            (s.latency_app, s.batch_candidate, k)
            for s, k in zip(self.servers, decisions) if k > 0
        ):
            jobs.append([ContextPlacement(batch, core=0)])
            jobs.append(self.simulator.server_placements(
                app.profile, batch, instances=0, mode="smt"))
            jobs.append(self.simulator.server_placements(
                app.profile, batch, instances=instances, mode="smt"))
        self.simulator.prefetch(jobs)

    # ------------------------------------------------------------------

    @property
    def total_instances(self) -> int:
        return sum(s.instances for s in self.servers)

    @property
    def baseline_busy_contexts(self) -> int:
        return len(self.servers) * self.threads_per_server

    def utilization(self) -> float:
        """Busy contexts over total contexts, cluster-wide."""
        busy = self.baseline_busy_contexts + self.total_instances
        return busy / (len(self.servers) * self.contexts_per_server)

    def utilization_improvement(self) -> float:
        """Relative gain over the no-co-location baseline (paper's metric)."""
        return self.total_instances / self.baseline_busy_contexts

    def reset(self) -> None:
        for server in self.servers:
            server.instances = 0
            server.actual_degradation = 0.0
