"""The scale-out study driver (Sections IV-C and IV-D).

``ScaleOutStudy`` wires the pieces together: build the 4,000-server
cluster, fit the SMiTe predictor on the training half of SPEC, fit
per-app tail-latency models from Ruler co-runs (degradation measured on
the server topology, percentile latency "measured" by the discrete-event
queue), then run each policy at each QoS target and collect utilization
and violation metrics.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.predictor import SMiTe
from repro.core.tail import TailLatencyModel
from repro.errors import SchedulingError
from repro.obs import counter
from repro.queueing.des import simulate_fcfs_mm1
from repro.rulers.suite import intensity_sweep
from repro.scheduler.cluster import Cluster
from repro.scheduler.metrics import ScaleOutResult, violation_stats
from repro.scheduler.policies import (
    NoColocationPolicy,
    OraclePolicy,
    RandomPolicy,
    SMiTePolicy,
)
from repro.scheduler.qos import QosTarget
from repro.smt.simulator import Simulator
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = ["ScaleOutStudy", "fit_tail_model", "random_counts_for_gain"]


def fit_tail_model(
    simulator: Simulator,
    predictor: SMiTe,
    workload: LatencySensitiveWorkload,
    *,
    percentile: float = 0.90,
    sweep_points: int = 4,
    des_jobs: int = 60_000,
    seed: int = 7,
) -> TailLatencyModel:
    """Train Equation 6 from Ruler co-runs (the paper's protocol).

    For each Ruler at several intensities, measure the workload's
    server-level degradation and the resulting percentile latency (from
    the discrete-event queue running at the degraded service rate), then
    fit the reciprocal-linear model.
    """
    threads = simulator.machine.cores
    degradations: list[float] = [0.0]
    latencies: list[float] = []
    baseline = simulate_fcfs_mm1(
        workload.arrival_rate_hz, workload.service_rate_hz,
        jobs=des_jobs, seed=seed,
    )
    latencies.append(baseline.percentile(percentile))
    for dimension in predictor.suite:
        for ruler in intensity_sweep(predictor.suite[dimension], points=sweep_points):
            degradation = simulator.measure_server_degradation(
                workload.profile, ruler.profile, instances=threads, mode="smt",
            )
            degradation = min(max(degradation, 0.0), 0.95)
            degraded_mu = (1.0 - degradation) * workload.service_rate_hz
            if degraded_mu <= workload.arrival_rate_hz:
                # Ruler pressure drove this queue unstable: the point has
                # no steady-state latency to fit against.
                counter("scheduler.tail.unstable_skips").inc()
                continue
            run = simulate_fcfs_mm1(
                workload.arrival_rate_hz, degraded_mu,
                jobs=des_jobs,
                seed=seed + zlib.crc32(
                    f"{dimension.name}|{ruler.intensity:.3f}".encode()
                ) % 1000,
            )
            degradations.append(degradation)
            latencies.append(run.percentile(percentile))
    # The solo point is free; Eq. 6 needs at least 3 stable *co-run*
    # points on top of it or the reciprocal-linear fit is unconstrained.
    stable_points = len(degradations) - 1
    if stable_points < 3:
        raise SchedulingError(
            f"only {stable_points} stable Ruler points for {workload.name}; "
            "need >= 3 to fit the tail model (loosen the sweep or raise "
            "the service rate)"
        )
    return TailLatencyModel(percentile=percentile).fit(degradations, latencies)


def random_counts_for_gain(
    total_instances: int,
    n_servers: int,
    max_per_server: int,
    *,
    seed: int = 13,
) -> dict[int, int]:
    """Random per-server instance counts summing to ``total_instances``.

    This is how the Random policy is driven to exactly the utilization
    gain a reference policy achieved.
    """
    if total_instances > n_servers * max_per_server:
        raise SchedulingError("cannot place that many instances")
    # A seeded shuffle of every available (server, slot) pair, keeping the
    # first ``total_instances``: one pass, no rejection loop, and every
    # feasible assignment remains equally likely.
    rng = np.random.default_rng(seed)
    slots = np.repeat(np.arange(n_servers), max_per_server)
    rng.shuffle(slots)
    filled = np.bincount(slots[:total_instances], minlength=n_servers)
    return {i: int(filled[i]) for i in range(n_servers)}


@dataclass
class ScaleOutStudy:
    """Run the full policy x QoS-target grid over one cluster."""

    simulator: Simulator
    predictor: SMiTe
    latency_apps: Sequence[LatencySensitiveWorkload]
    batch_pool: Sequence[WorkloadProfile]
    servers_per_app: int = 1000
    seed: int = 42
    tail_percentile: float = 0.90
    _tail_models: dict[str, TailLatencyModel] = field(default_factory=dict)

    def build_cluster(self) -> Cluster:
        return Cluster.build(
            self.simulator,
            self.latency_apps,
            self.batch_pool,
            servers_per_app=self.servers_per_app,
            seed=self.seed,
        )

    def tail_models(self) -> dict[str, TailLatencyModel]:
        """Per-app Equation 6 models, fitted lazily and cached."""
        if not self._tail_models:
            for app in self.latency_apps:
                self._tail_models[app.name] = fit_tail_model(
                    self.simulator, self.predictor, app,
                    percentile=self.tail_percentile,
                )
        return self._tail_models

    def run(
        self,
        targets: Sequence[QosTarget],
        *,
        use_tail_models: bool = False,
    ) -> list[ScaleOutResult]:
        """Evaluate baseline, SMiTe, Oracle, and gain-matched Random."""
        results: list[ScaleOutResult] = []
        tail_models = self.tail_models() if use_tail_models else None
        cluster = self.build_cluster()
        for target in targets:
            per_policy_instances: dict[str, int] = {}
            for policy in (NoColocationPolicy(),
                           SMiTePolicy(self.predictor),
                           OraclePolicy(self.simulator)):
                cluster.reset()
                cluster.apply_policy(policy, target, tail_models=tail_models)
                per_policy_instances[policy.name] = cluster.total_instances
                results.append(ScaleOutResult(
                    policy=policy.name,
                    target=target,
                    utilization_improvement=cluster.utilization_improvement(),
                    violations=violation_stats(cluster, target,
                                               tail_models=tail_models),
                ))
            # Random, driven to SMiTe's exact utilization gain. The seed
            # is derived from the target so every grid cell draws an
            # independent layout (a shared seed would correlate the
            # violation counts across targets).
            target_tag = f"{target.metric.value}|{target.level:.6f}"
            random_policy = RandomPolicy(random_counts_for_gain(
                per_policy_instances["smite"],
                len(cluster.servers),
                cluster.threads_per_server,
                seed=self.seed + 1 + zlib.crc32(target_tag.encode()) % 100_000,
            ))
            cluster.reset()
            cluster.apply_policy(random_policy, target, tail_models=tail_models)
            results.append(ScaleOutResult(
                policy=random_policy.name,
                target=target,
                utilization_improvement=cluster.utilization_improvement(),
                violations=violation_stats(cluster, target,
                                           tail_models=tail_models),
            ))
        return results
