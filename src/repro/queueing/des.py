"""Discrete-event simulation of an FCFS single-server queue.

The analytic M/M/1 percentile prediction needs something to be judged
against; on the paper's testbed that is the measured query latency
distribution. Here it is this simulator: exponential inter-arrivals and
service times, FCFS discipline, waiting time by the Lindley recursion

    W_{k+1} = max(0, W_k + S_k - A_{k+1})

and sojourn time ``W + S``. The generator is seeded, so "measurements"
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueueingError

__all__ = ["FcfsQueueSimulation", "simulate_fcfs_mm1"]


@dataclass(frozen=True)
class FcfsQueueSimulation:
    """Sojourn-time sample from one simulated queue run."""

    arrival_rate: float
    service_rate: float
    sojourn_times: np.ndarray

    def percentile(self, p: float) -> float:
        """Empirical p-th percentile of the response time."""
        if not 0.0 < p < 1.0:
            raise QueueingError(f"percentile must be in (0, 1), got {p}")
        return float(np.quantile(self.sojourn_times, p))

    @property
    def mean_response_time(self) -> float:
        return float(self.sojourn_times.mean())

    @property
    def jobs(self) -> int:
        return int(self.sojourn_times.size)


def simulate_fcfs_mm1(
    arrival_rate: float,
    service_rate: float,
    *,
    jobs: int = 200_000,
    seed: int = 0,
    warmup_fraction: float = 0.05,
) -> FcfsQueueSimulation:
    """Simulate an FCFS M/M/1 queue and return its sojourn times.

    The first ``warmup_fraction`` of jobs is discarded so the sample
    reflects the steady state rather than the empty-queue start.
    """
    if arrival_rate <= 0 or service_rate <= 0:
        raise QueueingError("rates must be positive")
    if arrival_rate >= service_rate:
        raise QueueingError(
            f"unstable queue: lambda {arrival_rate} >= mu {service_rate}"
        )
    if jobs < 100:
        raise QueueingError(f"need at least 100 jobs, got {jobs}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise QueueingError("warmup fraction must be in [0, 1)")

    rng = np.random.default_rng(seed)
    inter_arrivals = rng.exponential(1.0 / arrival_rate, size=jobs)
    services = rng.exponential(1.0 / service_rate, size=jobs)

    sojourn = _lindley_waits(inter_arrivals, services) + services

    skip = int(jobs * warmup_fraction)
    return FcfsQueueSimulation(
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        sojourn_times=sojourn[skip:],
    )


def _lindley_waits(inter_arrivals: np.ndarray,
                   services: np.ndarray) -> np.ndarray:
    """Waiting times under the Lindley recursion, in closed form.

    The recursion ``W_{k+1} = max(0, W_k + S_k - A_{k+1})`` unrolls to
    ``W_k = P_k - min_{0<=j<=k} P_j`` where ``P`` is the prefix sum of
    the increments ``S_k - A_{k+1}`` (with ``P_0 = 0``): each reset to an
    empty queue is exactly the running minimum re-anchoring the sum. Two
    cumulative passes replace the per-job Python loop.
    """
    increments = services[:-1] - inter_arrivals[1:]
    prefix = np.concatenate(([0.0], np.cumsum(increments)))
    return prefix - np.minimum.accumulate(prefix)


def _lindley_waits_reference(inter_arrivals: np.ndarray,
                             services: np.ndarray) -> np.ndarray:
    """Direct per-job recursion; kept as the oracle for agreement tests."""
    jobs = services.size
    waits = np.empty(jobs)
    wait = 0.0
    for k in range(jobs):
        waits[k] = wait
        if k + 1 < jobs:
            wait = max(0.0, wait + services[k] - inter_arrivals[k + 1])
    return waits
