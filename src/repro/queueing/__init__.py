"""Queueing substrate for tail-latency modelling (Section III-C3).

- :mod:`repro.queueing.mm1` — the closed-form FCFS M/M/1 response-time
  model of Equations 4-6;
- :mod:`repro.queueing.des` — a discrete-event simulator of the same
  queue (Lindley recursion), used as the "measured" percentile latency
  the analytic prediction is judged against;
- :mod:`repro.queueing.mmc` — the M/M/c alternative (Erlang-C), which
  makes the paper's per-thread-M/M/1 modelling choice checkable.
"""

from repro.queueing.des import FcfsQueueSimulation, simulate_fcfs_mm1
from repro.queueing.mm1 import Mm1Queue
from repro.queueing.mmc import MmcQueue

__all__ = ["Mm1Queue", "MmcQueue", "FcfsQueueSimulation",
           "simulate_fcfs_mm1"]
