"""The M/M/c queue (Erlang-C), for validating the paper's M/M/1 choice.

Section III-C3 justifies modelling each worker thread as its own M/M/1
queue rather than the whole server as one M/M/c: "the queueing and the
processing usually happen at the same level (e.g. a per-thread queueing
strategy often implies that each job in the queue is handled by one
thread)" — memcached's per-thread queues being the example.

This module implements the M/M/c alternative so the choice is checkable
rather than asserted: the Erlang-C waiting probability, mean response
time, and a percentile via numeric inversion. The accompanying tests and
the discrete-event simulator show (a) M/M/c with c=1 degenerates to
M/M/1 exactly, and (b) a shared queue would predict *lower* tails than
per-thread queues at equal load — so using M/M/1 for a per-thread-queue
service is the conservative, architecture-matching model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import QueueingError

__all__ = ["MmcQueue"]


@dataclass(frozen=True)
class MmcQueue:
    """A stable FCFS M/M/c queue: one shared queue, ``servers`` workers."""

    arrival_rate: float  # lambda, aggregate
    service_rate: float  # mu, per server
    servers: int

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise QueueingError("an M/M/c queue needs at least one server")
        if self.arrival_rate <= 0:
            raise QueueingError("arrival rate must be positive")
        if self.service_rate <= 0:
            raise QueueingError("service rate must be positive")
        if self.arrival_rate >= self.servers * self.service_rate:
            raise QueueingError(
                f"unstable queue: lambda {self.arrival_rate} >= "
                f"c*mu {self.servers * self.service_rate}"
            )

    # ------------------------------------------------------------------

    @property
    def utilization(self) -> float:
        """Per-server offered load rho = lambda / (c mu)."""
        return self.arrival_rate / (self.servers * self.service_rate)

    @property
    def offered_load(self) -> float:
        """The traffic intensity a = lambda / mu (in Erlangs)."""
        return self.arrival_rate / self.service_rate

    def waiting_probability(self) -> float:
        """Erlang-C: probability an arrival finds all servers busy."""
        a = self.offered_load
        c = self.servers
        rho = self.utilization
        # Sum_{k<c} a^k/k!  computed iteratively for numeric stability.
        term = 1.0
        partial = 1.0
        for k in range(1, c):
            term *= a / k  # smite: noqa[SMT302]: range(1, c) yields k >= 1
            partial += term
        tail = term * (a / c) / (1.0 - rho)  # smite: noqa[SMT302]: c >= 1 and rho < 1 are __post_init__ invariants
        return tail / (partial + tail)  # smite: noqa[SMT302]: partial starts at 1.0 and only grows

    @property
    def mean_wait(self) -> float:
        """Mean time in queue (excluding service)."""
        c_prob = self.waiting_probability()
        return c_prob / (self.servers * self.service_rate  # smite: noqa[SMT302]: stability invariant lambda < c*mu keeps the drain rate positive
                         - self.arrival_rate)

    @property
    def mean_response_time(self) -> float:
        return self.mean_wait + 1.0 / self.service_rate

    def response_time_cdf(self, t: float) -> float:
        """P(sojourn <= t) for FCFS M/M/c.

        Closed form (see Harchol-Balter, ch. 14): with
        ``r = c(1-rho)`` servers' worth of drain rate relative to mu,
        the sojourn tail mixes the service exponential and the queue
        drain exponential.
        """
        if t < 0:
            return 0.0
        mu = self.service_rate
        c = self.servers
        lam = self.arrival_rate
        pw = self.waiting_probability()
        drain = c * mu - lam  # queue drain rate while saturated
        if abs(drain - mu) < 1e-12 * mu:
            # Degenerate case: the two exponentials coincide.
            tail = math.exp(-mu * t) * (1.0 + pw * mu * t)
        else:
            tail = (math.exp(-mu * t)
                    + pw * mu / (mu - drain)  # smite: noqa[SMT302]: the |drain - mu| < eps case takes the degenerate branch above
                    * (math.exp(-drain * t) - math.exp(-mu * t)))
        return max(0.0, min(1.0, 1.0 - tail))

    def percentile(self, p: float, *, tolerance: float = 1e-9) -> float:
        """The p-th percentile of the sojourn time, by bisection."""
        if not 0.0 < p < 1.0:
            raise QueueingError(f"percentile must be in (0, 1), got {p}")
        low = 0.0
        high = self.mean_response_time
        while self.response_time_cdf(high) < p:
            high *= 2.0
            if high > 1e12:
                raise QueueingError("percentile search diverged")
        while high - low > tolerance * max(high, 1e-12):
            mid = (low + high) / 2.0
            if self.response_time_cdf(mid) < p:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0
