"""The FCFS M/M/1 response-time model (Equations 4-6).

Each worker thread of a latency-sensitive service is one M/M/1 queue:
Poisson arrivals at rate ``lambda``, exponential service at rate ``mu``.
The sojourn (response) time is exponential with rate ``mu - lambda``
(Equation 4), so the p-th percentile is closed-form (Equation 6), and a
co-location that degrades average performance by ``Deg`` simply rescales
the service rate to ``(1 - Deg) * mu`` (Equation 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import QueueingError

__all__ = ["Mm1Queue"]


@dataclass(frozen=True)
class Mm1Queue:
    """A stable FCFS M/M/1 queue."""

    arrival_rate: float  # lambda
    service_rate: float  # mu

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise QueueingError(
                f"arrival rate must be positive, got {self.arrival_rate}"
            )
        if self.service_rate <= self.arrival_rate:
            raise QueueingError(
                f"unstable queue: service rate {self.service_rate} must "
                f"exceed arrival rate {self.arrival_rate}"
            )

    @property
    def utilization(self) -> float:
        """Offered load rho = lambda / mu."""
        return self.arrival_rate / self.service_rate

    @property
    def sojourn_rate(self) -> float:
        """The exponential response-time rate ``mu - lambda``."""
        return self.service_rate - self.arrival_rate

    @property
    def mean_response_time(self) -> float:
        return 1.0 / self.sojourn_rate  # smite: noqa[SMT302]: __post_init__ enforces mu > lambda, so mu - lambda > 0

    def response_time_pdf(self, t: float) -> float:
        """Equation 4: f(t) = (mu - lambda) * exp(-(mu - lambda) t)."""
        if t < 0:
            return 0.0
        rate = self.sojourn_rate
        return rate * math.exp(-rate * t)

    def response_time_cdf(self, t: float) -> float:
        """P(response time <= t)."""
        if t < 0:
            return 0.0
        return 1.0 - math.exp(-self.sojourn_rate * t)

    def percentile(self, p: float) -> float:
        """Equation 6 at Deg = 0: t_p = -ln(1 - p) / (mu - lambda)."""
        if not 0.0 < p < 1.0:
            raise QueueingError(f"percentile must be in (0, 1), got {p}")
        return -math.log(1.0 - p) / self.sojourn_rate  # smite: noqa[SMT302]: __post_init__ enforces mu > lambda, so mu - lambda > 0

    def degraded(self, degradation: float) -> "Mm1Queue":
        """Equation 5: the same queue with mu' = (1 - Deg) * mu.

        Raises :class:`QueueingError` if the degradation drives the queue
        unstable (service rate at or below the arrival rate) — the paper's
        scheduler treats such co-locations as categorically unsafe.
        """
        if degradation < 0:
            degradation = 0.0  # measurement noise can report tiny speedups
        if degradation >= 1.0:
            raise QueueingError(
                f"degradation {degradation} leaves no service capacity"
            )
        return Mm1Queue(
            arrival_rate=self.arrival_rate,
            service_rate=(1.0 - degradation) * self.service_rate,
        )

    def degraded_percentile(self, p: float, degradation: float) -> float:
        """Equation 6: t_p = -ln(1-p) / ((1 - Deg) mu - lambda)."""
        return self.degraded(degradation).percentile(p)

    def max_safe_degradation(self, p: float, latency_budget: float) -> float:
        """Largest Deg keeping the p-th percentile within the budget.

        Inverts Equation 6; the scale-out scheduler uses this to turn a
        tail-latency QoS target into a degradation threshold.
        """
        if latency_budget <= 0:
            raise QueueingError("latency budget must be positive")
        if not 0.0 < p < 1.0:
            raise QueueingError(f"percentile must be in (0, 1), got {p}")
        needed_rate = -math.log(1.0 - p) / latency_budget
        max_mu_drop = self.service_rate - self.arrival_rate - needed_rate
        if max_mu_drop <= 0:
            return 0.0
        return max_mu_drop / self.service_rate
