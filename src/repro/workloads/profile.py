"""The workload profile: what the simulator knows about an application.

A profile is a static, per-instruction description of an application's
demand on each shared SMT resource: the uop mix (which execution ports it
needs), dependency structure (how much ILP it exposes), memory footprint
strata (which cache levels it lives in), and fixed per-instruction penalty
rates (branch mispredictions, TLB walks). Profiles are immutable and
hashable so simulation results can be memoized.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.isa.opcodes import UopKind

__all__ = ["Suite", "FootprintStratum", "WorkloadProfile"]


class Suite(enum.Enum):
    """Which benchmark family a profile belongs to."""

    SPEC_INT = "spec_int"
    SPEC_FP = "spec_fp"
    CLOUDSUITE = "cloudsuite"
    RULER = "ruler"
    SYNTHETIC = "synthetic"

    def __repr__(self) -> str:
        return f"Suite.{self.name}"


@dataclass(frozen=True)
class FootprintStratum:
    """A fraction of memory accesses confined to a footprint of a given size.

    A profile's working-set behaviour is a small set of strata, e.g.
    "70% of accesses touch 24 KB, 25% touch 300 KB, 5% touch 20 MB" — the
    shape cache-miss stack-distance profiles typically take.
    """

    footprint_bytes: float
    access_fraction: float

    def __post_init__(self) -> None:
        if self.footprint_bytes <= 0:
            raise ConfigurationError(
                f"stratum footprint must be positive, got {self.footprint_bytes}"
            )
        if not 0.0 < self.access_fraction <= 1.0:
            raise ConfigurationError(
                f"stratum access fraction must be in (0, 1], "
                f"got {self.access_fraction}"
            )


_MAX_UOP_RATE = 4.0  # sanity ceiling: more uops/instruction than issue width


@dataclass(frozen=True)
class WorkloadProfile:
    """Immutable static description of an application.

    Uop-rate fields (``fp_mul`` ... ``nop``) are uops *per dynamic
    instruction* for each :class:`~repro.isa.opcodes.UopKind`.
    ``dependency_factor`` in [0, 1] is the serialized fraction of the
    instruction stream (1 = a single dependency chain). ``mlp`` is
    memory-level parallelism: how many outstanding misses overlap.
    """

    name: str
    suite: Suite
    fp_mul: float = 0.0
    fp_add: float = 0.0
    fp_shf: float = 0.0
    int_alu: float = 0.0
    load: float = 0.0
    store: float = 0.0
    branch: float = 0.0
    nop: float = 0.0
    dependency_factor: float = 0.2
    mlp: float = 2.0
    strata: tuple[FootprintStratum, ...] = ()
    branch_misprediction_rate: float = 0.002
    itlb_mpki: float = 0.1
    dtlb_mpki: float = 0.5
    icache_mpki: float = 1.0
    #: extra idle cycles per instruction; Rulers use this to duty-cycle
    #: their pressure without changing their uop mix
    throttle_cpi: float = 0.0
    #: True for multithreaded applications whose threads work on one
    #: shared data set (CloudSuite servers): co-located threads of the
    #: same profile then occupy cache capacity as a single entity instead
    #: of competing with each other
    shares_memory: bool = False
    spec_number: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload profiles must be named")
        for field_name in ("fp_mul", "fp_add", "fp_shf", "int_alu",
                           "load", "store", "branch", "nop"):
            value = getattr(self, field_name)
            if value < 0.0:
                raise ConfigurationError(
                    f"{self.name}: uop rate {field_name} is negative ({value})"
                )
        if self.uops_per_instruction <= 0.0:
            raise ConfigurationError(f"{self.name}: profile issues no uops")
        if self.uops_per_instruction > _MAX_UOP_RATE:
            raise ConfigurationError(
                f"{self.name}: {self.uops_per_instruction:.2f} uops/instruction "
                f"exceeds the {_MAX_UOP_RATE:.0f}-wide issue ceiling"
            )
        if not 0.0 <= self.dependency_factor <= 1.0:
            raise ConfigurationError(
                f"{self.name}: dependency factor must be in [0, 1], "
                f"got {self.dependency_factor}"
            )
        if self.mlp < 1.0:
            raise ConfigurationError(
                f"{self.name}: memory-level parallelism must be >= 1, "
                f"got {self.mlp}"
            )
        if not 0.0 <= self.branch_misprediction_rate <= 0.5:
            raise ConfigurationError(
                f"{self.name}: branch misprediction rate must be in [0, 0.5]"
            )
        for rate_name in ("itlb_mpki", "dtlb_mpki", "icache_mpki",
                          "throttle_cpi"):
            if getattr(self, rate_name) < 0.0:
                raise ConfigurationError(f"{self.name}: {rate_name} is negative")
        if self.accesses_per_instruction > 0.0:
            if not self.strata:
                raise ConfigurationError(
                    f"{self.name}: memory-accessing profile needs footprint strata"
                )
            total = sum(s.access_fraction for s in self.strata)
            if abs(total - 1.0) > 1e-6:
                raise ConfigurationError(
                    f"{self.name}: stratum access fractions sum to {total:.6f}, "
                    f"expected 1.0"
                )
        elif self.strata:
            raise ConfigurationError(
                f"{self.name}: has footprint strata but makes no memory accesses"
            )

    # ------------------------------------------------------------------
    # Derived quantities

    @property
    def uops(self) -> "Mapping[UopKind, float]":
        """Uops per instruction keyed by kind (zero-rate kinds omitted)."""
        # Imported here rather than at module level: the ISA package's
        # analyzer depends on this module, so a top-level import would cycle.
        from repro.isa.opcodes import UopKind

        pairs = {
            UopKind.FP_MUL: self.fp_mul,
            UopKind.FP_ADD: self.fp_add,
            UopKind.FP_SHF: self.fp_shf,
            UopKind.INT_ALU: self.int_alu,
            UopKind.LOAD: self.load,
            UopKind.STORE: self.store,
            UopKind.BRANCH: self.branch,
            UopKind.NOP: self.nop,
        }
        return {kind: rate for kind, rate in pairs.items() if rate > 0.0}

    @property
    def uops_per_instruction(self) -> float:
        return (self.fp_mul + self.fp_add + self.fp_shf + self.int_alu
                + self.load + self.store + self.branch + self.nop)

    @property
    def accesses_per_instruction(self) -> float:
        """Data-memory accesses per instruction (loads + stores)."""
        return self.load + self.store

    @property
    def total_footprint_bytes(self) -> float:
        """The largest stratum footprint — the profile's full working set."""
        if not self.strata:
            return 0.0
        return max(s.footprint_bytes for s in self.strata)

    @property
    def is_even_numbered(self) -> bool:
        """SPEC even/odd parity, the paper's train/test split key."""
        if self.spec_number is None:
            raise ConfigurationError(
                f"{self.name} has no SPEC number; parity split does not apply"
            )
        return self.spec_number % 2 == 0

    @property
    def is_floating_point(self) -> bool:
        """True when FP uops dominate the compute mix."""
        fp = self.fp_mul + self.fp_add + self.fp_shf
        return fp > self.int_alu

    def __hash__(self) -> int:
        # The dataclass-generated hash rebuilds the full field tuple
        # (nested strata included) on every call, which dominates the
        # simulator's memo-key lookups on the serving hot path. Profiles
        # sharing a name are rare and just fall back to __eq__.
        return hash(self.name)

    def replace(self, **changes: object) -> "WorkloadProfile":
        """A copy of this profile with the given fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def key(self) -> tuple:
        """A full value tuple, usable as a memoization key.

        ``astuple`` recurses (and deepcopies) the whole profile, which is
        far too slow for the hot canonicalization path, so the tuple is
        computed once and stashed on the (frozen, immutable) instance.
        """
        try:
            return self.__dict__["_key"]
        except KeyError:
            key = dataclasses.astuple(self)
            object.__setattr__(self, "_key", key)
            return key
