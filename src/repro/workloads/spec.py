"""Synthetic profiles for the 29 SPEC CPU2006 benchmarks.

These stand in for the paper's benchmark binaries (DESIGN.md,
Substitutions). Parameters follow the benchmarks' published characters —
e.g. 429.mcf is pointer-chasing and memory-bound with low MLP, 444.namd and
454.calculix are FP-port-bound with small working sets, 470.lbm streams
through hundreds of megabytes with high MLP, 458.sjeng and 473.astar
mispredict branches heavily. The population is deliberately diverse and
weakly correlated across sharing dimensions, which is the property the
paper's Findings 1-9 rest on.

The paper's Finding-4 anchors are preserved: 454.calculix leans on FP_MUL
(port 0) while 470.lbm leans on FP_ADD (port 1); 429.mcf is barely
sensitive to port 1 while 444.namd is highly sensitive.
"""

from __future__ import annotations

from repro.workloads.profile import FootprintStratum, Suite, WorkloadProfile

__all__ = ["SPEC_CPU2006", "spec_even", "spec_odd", "KB", "MB"]

KB = 1024
MB = 1024 * 1024


def _strata(*pairs: tuple[float, float]) -> tuple[FootprintStratum, ...]:
    """Build footprint strata from (bytes, access_fraction) pairs."""
    return tuple(
        FootprintStratum(footprint_bytes=size, access_fraction=frac)
        for size, frac in pairs
    )


def _spec(
    name: str,
    number: int,
    suite: Suite,
    *,
    fp_mul: float = 0.0,
    fp_add: float = 0.0,
    fp_shf: float = 0.0,
    int_alu: float,
    load: float,
    store: float,
    branch: float,
    dep: float,
    mlp: float,
    strata: tuple[FootprintStratum, ...],
    bmr: float,
    itlb: float = 0.1,
    dtlb: float = 0.5,
    icache: float = 1.0,
    description: str,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite=suite,
        spec_number=number,
        fp_mul=fp_mul,
        fp_add=fp_add,
        fp_shf=fp_shf,
        int_alu=int_alu,
        load=load,
        store=store,
        branch=branch,
        dependency_factor=dep,
        mlp=mlp,
        strata=strata,
        branch_misprediction_rate=bmr,
        itlb_mpki=itlb,
        dtlb_mpki=dtlb,
        icache_mpki=icache,
        description=description,
    )


_INT = Suite.SPEC_INT
_FP = Suite.SPEC_FP

#: All 29 SPEC CPU2006 benchmarks, keyed by full name, ordered by number.
SPEC_CPU2006: dict[str, WorkloadProfile] = {
    p.name: p
    for p in (
        _spec("400.perlbench", 400, _INT, int_alu=0.45, load=0.28, store=0.12,
              branch=0.20, dep=0.25, mlp=2.5,
              strata=_strata((16 * KB, 0.75), (150 * KB, 0.20), (6 * MB, 0.05)),
              bmr=0.006, itlb=0.4, dtlb=0.6, icache=4.0,
              description="Perl interpreter: branchy, code-footprint heavy"),
        _spec("401.bzip2", 401, _INT, int_alu=0.48, load=0.30, store=0.10,
              branch=0.15, dep=0.30, mlp=3.0,
              strata=_strata((28 * KB, 0.60), (2 * MB, 0.35), (8 * MB, 0.05)),
              bmr=0.008, description="compression: mid-size working set"),
        _spec("403.gcc", 403, _INT, int_alu=0.42, load=0.30, store=0.14,
              branch=0.20, dep=0.28, mlp=2.2,
              strata=_strata((20 * KB, 0.55), (1 * MB, 0.30), (12 * MB, 0.15)),
              bmr=0.009, itlb=0.6, dtlb=0.9, icache=6.0,
              description="compiler: branchy with a long footprint tail"),
        _spec("410.bwaves", 410, _FP, fp_mul=0.12, fp_add=0.34, fp_shf=0.03,
              int_alu=0.15, load=0.32, store=0.07, branch=0.04, dep=0.20,
              mlp=6.5,
              strata=_strata((24 * KB, 0.35), (2 * MB, 0.20), (180 * MB, 0.45)),
              bmr=0.001, description="blast-wave CFD: streaming FP, DRAM-bound"),
        _spec("416.gamess", 416, _FP, fp_mul=0.31, fp_add=0.17, fp_shf=0.04,
              int_alu=0.18, load=0.26, store=0.06, branch=0.07, dep=0.30,
              mlp=2.0, strata=_strata((10 * KB, 0.95), (120 * KB, 0.05)),
              bmr=0.004, description="quantum chemistry: cache-resident FP"),
        _spec("429.mcf", 429, _INT, int_alu=0.30, load=0.38, store=0.09,
              branch=0.19, dep=0.45, mlp=1.6,
              strata=_strata((8 * KB, 0.30), (2 * MB, 0.25), (60 * MB, 0.45)),
              bmr=0.009, dtlb=2.5,
              description="network simplex: pointer-chasing, DRAM-latency-bound"),
        _spec("433.milc", 433, _FP, fp_mul=0.29, fp_add=0.17, fp_shf=0.05,
              int_alu=0.12, load=0.33, store=0.10, branch=0.03, dep=0.22,
              mlp=6.0,
              strata=_strata((16 * KB, 0.25), (2 * MB, 0.15), (120 * MB, 0.60)),
              bmr=0.001, description="lattice QCD: streaming FP, bandwidth-hungry"),
        _spec("434.zeusmp", 434, _FP, fp_mul=0.13, fp_add=0.32, fp_shf=0.04,
              int_alu=0.16, load=0.28, store=0.09, branch=0.04, dep=0.25,
              mlp=5.0,
              strata=_strata((28 * KB, 0.40), (2 * MB, 0.25), (60 * MB, 0.35)),
              bmr=0.001, description="astrophysical CFD: mixed FP/memory"),
        _spec("435.gromacs", 435, _FP, fp_mul=0.33, fp_add=0.14, fp_shf=0.10,
              int_alu=0.20, load=0.26, store=0.06, branch=0.05, dep=0.28,
              mlp=2.5, strata=_strata((24 * KB, 0.70), (160 * KB, 0.30)),
              bmr=0.003, description="molecular dynamics: FP-compute-bound"),
        _spec("436.cactusADM", 436, _FP, fp_mul=0.12, fp_add=0.42, fp_shf=0.03,
              int_alu=0.12, load=0.30, store=0.09, branch=0.01, dep=0.35,
              mlp=4.0,
              strata=_strata((28 * KB, 0.35), (2 * MB, 0.20), (90 * MB, 0.45)),
              bmr=0.0005, description="numerical relativity: long FP chains"),
        _spec("437.leslie3d", 437, _FP, fp_mul=0.30, fp_add=0.18, fp_shf=0.04,
              int_alu=0.12, load=0.31, store=0.09, branch=0.03, dep=0.25,
              mlp=5.5,
              strata=_strata((28 * KB, 0.35), (2 * MB, 0.25), (80 * MB, 0.40)),
              bmr=0.001, description="combustion CFD: streaming FP"),
        _spec("444.namd", 444, _FP, fp_mul=0.37, fp_add=0.21, fp_shf=0.05,
              int_alu=0.16, load=0.24, store=0.05, branch=0.05, dep=0.18,
              mlp=2.0, strata=_strata((24 * KB, 0.85), (1 * MB, 0.15)),
              bmr=0.002,
              description="molecular dynamics: FP-port-saturating, tiny footprint"),
        _spec("445.gobmk", 445, _INT, int_alu=0.46, load=0.27, store=0.12,
              branch=0.21, dep=0.30, mlp=2.0,
              strata=_strata((24 * KB, 0.70), (190 * KB, 0.25), (4 * MB, 0.05)),
              bmr=0.013, icache=5.0,
              description="Go playing: extremely branchy"),
        _spec("447.dealII", 447, _FP, fp_mul=0.15, fp_add=0.33, fp_shf=0.04,
              int_alu=0.20, load=0.30, store=0.07, branch=0.08, dep=0.30,
              mlp=2.5,
              strata=_strata((20 * KB, 0.55), (220 * KB, 0.25), (20 * MB, 0.20)),
              bmr=0.004, description="finite elements: mixed FP/INT"),
        _spec("450.soplex", 450, _FP, fp_mul=0.10, fp_add=0.24, fp_shf=0.03,
              int_alu=0.22, load=0.33, store=0.08, branch=0.08, dep=0.35,
              mlp=3.0,
              strata=_strata((16 * KB, 0.40), (1536 * KB, 0.25), (50 * MB, 0.35)),
              bmr=0.005, description="linear programming: sparse, memory-leaning"),
        _spec("453.povray", 453, _FP, fp_mul=0.31, fp_add=0.15, fp_shf=0.09,
              int_alu=0.22, load=0.26, store=0.07, branch=0.09, dep=0.35,
              mlp=1.8, strata=_strata((20 * KB, 0.90), (400 * KB, 0.10)),
              bmr=0.005, description="ray tracing: cache-resident FP, branchy"),
        _spec("454.calculix", 454, _FP, fp_mul=0.34, fp_add=0.18, fp_shf=0.04,
              int_alu=0.16, load=0.25, store=0.06, branch=0.04, dep=0.25,
              mlp=2.2, strata=_strata((26 * KB, 0.90), (200 * KB, 0.10)),
              bmr=0.002,
              description="structural mechanics: FP_MUL-heavy (port 0), "
                          "L1-reliant (paper's Finding 4/7 anchor)"),
        _spec("456.hmmer", 456, _INT, int_alu=0.55, load=0.30, store=0.10,
              branch=0.08, dep=0.12, mlp=4.0,
              strata=_strata((8 * KB, 0.90), (96 * KB, 0.10)),
              bmr=0.002, description="HMM search: INT-ALU-saturating"),
        _spec("458.sjeng", 458, _INT, int_alu=0.48, load=0.25, store=0.09,
              branch=0.21, dep=0.30, mlp=2.0,
              strata=_strata((48 * KB, 0.60), (1536 * KB, 0.35), (160 * MB, 0.05)),
              bmr=0.012, description="chess: branchy with a huge hash table"),
        _spec("459.GemsFDTD", 459, _FP, fp_mul=0.14, fp_add=0.36, fp_shf=0.03,
              int_alu=0.12, load=0.32, store=0.08, branch=0.03, dep=0.30,
              mlp=5.0,
              strata=_strata((28 * KB, 0.30), (2 * MB, 0.25), (100 * MB, 0.45)),
              bmr=0.001, description="electromagnetics: streaming FP"),
        _spec("462.libquantum", 462, _INT, int_alu=0.38, load=0.32, store=0.12,
              branch=0.17, dep=0.15, mlp=7.5,
              strata=_strata((4 * KB, 0.20), (64 * MB, 0.80)),
              bmr=0.003,
              description="quantum simulation: pure streaming, bandwidth-bound"),
        _spec("464.h264ref", 464, _INT, fp_shf=0.04, int_alu=0.50, load=0.32,
              store=0.10, branch=0.08, dep=0.18, mlp=3.5,
              strata=_strata((24 * KB, 0.65), (230 * KB, 0.30), (12 * MB, 0.05)),
              bmr=0.004, description="video encoding: INT/SIMD compute"),
        _spec("465.tonto", 465, _FP, fp_mul=0.30, fp_add=0.20, fp_shf=0.04,
              int_alu=0.20, load=0.27, store=0.07, branch=0.06, dep=0.30,
              mlp=2.2,
              strata=_strata((24 * KB, 0.65), (200 * KB, 0.25), (8 * MB, 0.10)),
              bmr=0.003, description="quantum crystallography: mixed FP"),
        _spec("470.lbm", 470, _FP, fp_mul=0.13, fp_add=0.37, fp_shf=0.03,
              int_alu=0.10, load=0.29, store=0.13, branch=0.01, dep=0.20,
              mlp=7.5, strata=_strata((8 * KB, 0.15), (200 * MB, 0.85)),
              bmr=0.0005,
              description="lattice Boltzmann: FP_ADD-heavy (port 1), "
                          "stream-everything (paper's Finding 4 anchor)"),
        _spec("471.omnetpp", 471, _INT, int_alu=0.38, load=0.33, store=0.14,
              branch=0.17, dep=0.40, mlp=1.8,
              strata=_strata((16 * KB, 0.45), (1 * MB, 0.25), (40 * MB, 0.30)),
              bmr=0.007, dtlb=1.8,
              description="discrete-event simulation: pointer-heavy"),
        _spec("473.astar", 473, _INT, int_alu=0.42, load=0.33, store=0.09,
              branch=0.16, dep=0.42, mlp=1.7,
              strata=_strata((20 * KB, 0.50), (1536 * KB, 0.30), (25 * MB, 0.20)),
              bmr=0.012, description="path finding: irregular, mispredict-heavy"),
        _spec("481.wrf", 481, _FP, fp_mul=0.17, fp_add=0.32, fp_shf=0.04,
              int_alu=0.16, load=0.28, store=0.08, branch=0.05, dep=0.28,
              mlp=4.0,
              strata=_strata((24 * KB, 0.50), (2 * MB, 0.25), (50 * MB, 0.25)),
              bmr=0.002, description="weather modelling: balanced FP/memory"),
        _spec("482.sphinx3", 482, _FP, fp_mul=0.32, fp_add=0.19, fp_shf=0.03,
              int_alu=0.16, load=0.30, store=0.05, branch=0.06, dep=0.25,
              mlp=4.5,
              strata=_strata((16 * KB, 0.40), (1 * MB, 0.30), (20 * MB, 0.30)),
              bmr=0.004, description="speech recognition: L3-working-set FP"),
        _spec("483.xalancbmk", 483, _INT, int_alu=0.40, load=0.33, store=0.11,
              branch=0.19, dep=0.33, mlp=2.0,
              strata=_strata((12 * KB, 0.50), (800 * KB, 0.30), (30 * MB, 0.20)),
              bmr=0.006, itlb=0.8, dtlb=1.2, icache=8.0,
              description="XSLT processing: code- and pointer-heavy"),
    )
}


def spec_even() -> list[WorkloadProfile]:
    """Even-numbered SPEC benchmarks (one half of the paper's split)."""
    return [p for p in SPEC_CPU2006.values() if p.spec_number % 2 == 0]  # type: ignore[operator]


def spec_odd() -> list[WorkloadProfile]:
    """Odd-numbered SPEC benchmarks (the other half of the split)."""
    return [p for p in SPEC_CPU2006.values() if p.spec_number % 2 == 1]  # type: ignore[operator]
