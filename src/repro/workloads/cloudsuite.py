"""CloudSuite latency-sensitive workload models.

Four applications mirror the paper's selection: Web-Search, Data-Caching
(memcached), Data-Serving (Cassandra), and Graph-Analytics. Per the paper's
findings, their functional-unit behaviour resembles SPEC_INT (Finding 5)
while their L3 contentiousness is far higher (Finding 8), driven by large
last-level-cache footprints and heavy instruction-fetch pressure.

Each is wrapped in :class:`LatencySensitiveWorkload`, which adds the
queueing-facing parameters (per-thread service rate, offered load, whether
the app reports percentile latency — Data-Serving and Graph-Analytics do
not, exactly as in Section IV-B3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.profile import FootprintStratum, Suite, WorkloadProfile

__all__ = ["LatencySensitiveWorkload", "CLOUDSUITE", "cloudsuite_apps"]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class LatencySensitiveWorkload:
    """A CloudSuite application plus its queueing parameters.

    ``service_rate_hz`` is the per-thread service rate ``mu`` when running
    alone; ``arrival_rate_hz`` is the per-thread offered load ``lambda``
    (the scale-out study half-loads each server, so lambda = mu / 2 by
    default). Queueing is modelled per thread (one M/M/1 per worker), the
    paper's second modelling observation.
    """

    profile: WorkloadProfile
    service_rate_hz: float
    arrival_rate_hz: float
    reports_percentile_latency: bool = True
    threads_per_server: int = 6

    def __post_init__(self) -> None:
        if self.service_rate_hz <= 0:
            raise ConfigurationError(
                f"{self.name}: service rate must be positive"
            )
        if not 0 < self.arrival_rate_hz < self.service_rate_hz:
            raise ConfigurationError(
                f"{self.name}: offered load must keep the queue stable "
                f"(0 < lambda < mu)"
            )
        if self.threads_per_server < 1:
            raise ConfigurationError(f"{self.name}: needs at least one thread")

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def utilization(self) -> float:
        """Offered load rho = lambda / mu of each worker thread."""
        return self.arrival_rate_hz / self.service_rate_hz


def _cloud(
    name: str,
    *,
    int_alu: float,
    load: float,
    store: float,
    branch: float,
    fp_shf: float = 0.0,
    dep: float,
    mlp: float,
    strata: tuple[FootprintStratum, ...],
    bmr: float,
    itlb: float,
    dtlb: float,
    icache: float,
    description: str,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite=Suite.CLOUDSUITE,
        int_alu=int_alu,
        fp_shf=fp_shf,
        load=load,
        store=store,
        branch=branch,
        dependency_factor=dep,
        mlp=mlp,
        strata=strata,
        branch_misprediction_rate=bmr,
        itlb_mpki=itlb,
        dtlb_mpki=dtlb,
        icache_mpki=icache,
        shares_memory=True,  # threads serve one shared index/heap/graph
        description=description,
    )


def _strata(*pairs: tuple[float, float]) -> tuple[FootprintStratum, ...]:
    return tuple(
        FootprintStratum(footprint_bytes=size, access_fraction=frac)
        for size, frac in pairs
    )


#: The four CloudSuite applications of the paper's evaluation.
CLOUDSUITE: dict[str, LatencySensitiveWorkload] = {
    w.name: w
    for w in (
        LatencySensitiveWorkload(
            profile=_cloud(
                "web-search",
                int_alu=0.42, load=0.34, store=0.10, branch=0.18,
                dep=0.28, mlp=4.5,
                strata=_strata((16 * KB, 0.28), (1 * MB, 0.24), (10 * MB, 0.45),
                               (40 * MB, 0.03)),
                bmr=0.007, itlb=1.5, dtlb=2.0, icache=12.0,
                description="Nutch/Lucene index serving: large code and "
                            "index footprints",
            ),
            service_rate_hz=100.0,
            arrival_rate_hz=50.0,
        ),
        LatencySensitiveWorkload(
            profile=_cloud(
                "data-caching",
                int_alu=0.38, load=0.36, store=0.12, branch=0.17,
                dep=0.32, mlp=4.0,
                strata=_strata((12 * KB, 0.20), (500 * KB, 0.18), (12 * MB, 0.58),
                               (48 * MB, 0.04)),
                bmr=0.005, itlb=0.8, dtlb=2.5, icache=8.0,
                description="memcached: hash-table lookups over a large heap",
            ),
            service_rate_hz=2000.0,
            arrival_rate_hz=1000.0,
        ),
        LatencySensitiveWorkload(
            profile=_cloud(
                "data-serving",
                int_alu=0.40, load=0.34, store=0.13, branch=0.17,
                dep=0.30, mlp=4.2,
                strata=_strata((16 * KB, 0.24), (1 * MB, 0.20), (8 * MB, 0.52),
                               (60 * MB, 0.04)),
                bmr=0.006, itlb=1.8, dtlb=2.2, icache=14.0,
                description="Cassandra: JVM-heavy key-value store",
            ),
            service_rate_hz=300.0,
            arrival_rate_hz=150.0,
            reports_percentile_latency=False,
        ),
        LatencySensitiveWorkload(
            profile=_cloud(
                "graph-analytics",
                int_alu=0.38, load=0.38, store=0.08, branch=0.15,
                dep=0.36, mlp=3.5,
                strata=_strata((12 * KB, 0.18), (2 * MB, 0.22), (12 * MB, 0.54),
                               (80 * MB, 0.06)),
                bmr=0.008, itlb=0.6, dtlb=3.0, icache=6.0,
                description="TunkRank over Twitter graph: irregular traversal",
            ),
            service_rate_hz=50.0,
            arrival_rate_hz=25.0,
            reports_percentile_latency=False,
        ),
    )
}


def cloudsuite_apps() -> list[LatencySensitiveWorkload]:
    """All four CloudSuite applications, in the paper's order."""
    return list(CLOUDSUITE.values())
