"""Random workload generation for property-based testing and sweeps.

``random_profile`` draws a valid, diverse profile from a seeded RNG: the
property tests use it to check simulator invariants over the whole profile
space, and the ablation benches use it to scale the population beyond the
33 built-in workloads.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.profile import FootprintStratum, Suite, WorkloadProfile

__all__ = ["random_profile", "random_population"]

KB = 1024
MB = 1024 * 1024


def random_profile(
    rng: np.random.Generator | int,
    *,
    name: str | None = None,
    suite: Suite = Suite.SYNTHETIC,
) -> WorkloadProfile:
    """Draw a random but always-valid workload profile.

    The draw covers the interesting corners: pure-compute profiles (no
    memory accesses at all), streaming profiles, pointer chasers, and
    branchy integer codes.
    """
    if isinstance(rng, int):
        rng = np.random.default_rng(rng)

    # Compute mix: pick FP share, then split it across mul/add/shf.
    fp_share = float(rng.uniform(0.0, 0.65))
    fp_split = rng.dirichlet([2.0, 2.0, 1.0])
    memory_free = rng.random() < 0.1
    load = 0.0 if memory_free else float(rng.uniform(0.10, 0.40))
    store = 0.0 if memory_free else float(rng.uniform(0.02, 0.15))
    branch = float(rng.uniform(0.01, 0.22))
    compute = float(rng.uniform(0.35, 0.65))
    fp_mul = compute * fp_share * float(fp_split[0])
    fp_add = compute * fp_share * float(fp_split[1])
    fp_shf = compute * fp_share * float(fp_split[2])
    int_alu = compute * (1.0 - fp_share)

    if memory_free:
        strata: tuple[FootprintStratum, ...] = ()
    else:
        n_strata = int(rng.integers(1, 4))
        footprints = np.sort(
            np.exp(rng.uniform(np.log(4 * KB), np.log(256 * MB), size=n_strata))
        )
        fractions = rng.dirichlet(np.ones(n_strata))
        # Renormalize exactly to 1.0 to satisfy profile validation.
        fractions = fractions / fractions.sum()
        fractions[-1] = 1.0 - float(fractions[:-1].sum())
        strata = tuple(
            FootprintStratum(footprint_bytes=float(fp), access_fraction=float(fr))
            for fp, fr in zip(footprints, fractions)
            if fr > 0.0
        )
        total = sum(s.access_fraction for s in strata)
        if abs(total - 1.0) > 1e-12:  # dropped a zero-fraction stratum
            first = strata[0]
            strata = (
                FootprintStratum(first.footprint_bytes,
                                 first.access_fraction + (1.0 - total)),
            ) + strata[1:]

    label = name or f"synthetic-{rng.integers(0, 10**9):09d}"
    return WorkloadProfile(
        name=label,
        suite=suite,
        fp_mul=fp_mul,
        fp_add=fp_add,
        fp_shf=fp_shf,
        int_alu=int_alu,
        load=load,
        store=store,
        branch=branch,
        dependency_factor=float(rng.uniform(0.05, 0.6)),
        mlp=float(rng.uniform(1.0, 8.0)),
        strata=strata,
        branch_misprediction_rate=float(rng.uniform(0.0, 0.015)),
        itlb_mpki=float(rng.uniform(0.0, 2.0)),
        dtlb_mpki=float(rng.uniform(0.0, 3.0)),
        icache_mpki=float(rng.uniform(0.0, 15.0)),
        description="randomly generated profile",
    )


def random_population(
    count: int, *, seed: int = 0, suite: Suite = Suite.SYNTHETIC
) -> list[WorkloadProfile]:
    """A reproducible list of ``count`` random profiles."""
    rng = np.random.default_rng(seed)
    return [
        random_profile(rng, name=f"synthetic-{seed}-{i:03d}", suite=suite)
        for i in range(count)
    ]
