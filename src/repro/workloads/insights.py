"""Static workload classification and summaries.

Schedulers and operators reason about workloads in categories — "FP-port
bound", "LLC-resident", "DRAM streamer" — before any measurement exists.
These helpers derive that vocabulary from a profile's static fields, and
the classification is used to sanity-check the synthetic populations
(each paper-relevant class must be represented).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.opcodes import UOP_LATENCY
from repro.workloads.profile import WorkloadProfile

__all__ = ["ResourceClass", "classify", "WorkloadSummary", "summarize_profile"]

KB = 1024
MB = 1024 * 1024


class ResourceClass(enum.Enum):
    """The dominant shared resource a workload will contend on."""

    FP_COMPUTE = "fp-compute"
    INT_COMPUTE = "int-compute"
    CACHE_RESIDENT = "cache-resident"
    LLC_HEAVY = "llc-heavy"
    DRAM_STREAMING = "dram-streaming"
    DRAM_LATENCY = "dram-latency"

    def __repr__(self) -> str:
        return f"ResourceClass.{self.name}"


def _dram_fraction(profile: WorkloadProfile, llc_bytes: float) -> float:
    """Fraction of accesses whose stratum exceeds a nominal LLC."""
    return sum(s.access_fraction for s in profile.strata
               if s.footprint_bytes > llc_bytes)


def _llc_fraction(profile: WorkloadProfile, l2_bytes: float,
                  llc_bytes: float) -> float:
    return sum(s.access_fraction for s in profile.strata
               if l2_bytes < s.footprint_bytes <= llc_bytes)


def classify(profile: WorkloadProfile, *,
             l2_bytes: float = 256 * KB,
             llc_bytes: float = 8 * MB) -> ResourceClass:
    """The dominant contention class of a profile.

    Thresholds follow the hierarchy the paper's machines share (256 KB
    L2, 8-15 MB L3); pass different ones for other machines.
    """
    dram = _dram_fraction(profile, llc_bytes)
    llc = _llc_fraction(profile, l2_bytes, llc_bytes)
    if dram >= 0.30:
        # Streaming if it can overlap misses; latency-bound otherwise.
        return (ResourceClass.DRAM_STREAMING if profile.mlp >= 4.0
                else ResourceClass.DRAM_LATENCY)
    if llc >= 0.30:
        return ResourceClass.LLC_HEAVY
    fp = profile.fp_mul + profile.fp_add + profile.fp_shf
    compute = fp + profile.int_alu
    if profile.accesses_per_instruction >= 0.30 and compute < 0.55:
        return ResourceClass.CACHE_RESIDENT
    return (ResourceClass.FP_COMPUTE if fp > profile.int_alu
            else ResourceClass.INT_COMPUTE)


@dataclass(frozen=True)
class WorkloadSummary:
    """Scheduler-facing one-line description of a profile."""

    name: str
    resource_class: ResourceClass
    arithmetic_per_access: float
    critical_path_cycles: float
    footprint_bytes: float
    dram_access_fraction: float

    def __str__(self) -> str:
        footprint = (f"{self.footprint_bytes / MB:.1f} MB"
                     if self.footprint_bytes >= MB
                     else f"{self.footprint_bytes / KB:.0f} KB")
        return (f"{self.name}: {self.resource_class.value}, "
                f"{self.arithmetic_per_access:.1f} ops/access, "
                f"{footprint} working set")


def summarize_profile(profile: WorkloadProfile, *,
                      llc_bytes: float = 8 * MB) -> WorkloadSummary:
    """Derive the summary a scheduler would log for a new profile."""
    compute = (profile.fp_mul + profile.fp_add + profile.fp_shf
               + profile.int_alu)
    accesses = profile.accesses_per_instruction
    arithmetic = compute / accesses if accesses > 0 else float("inf")
    critical_path = profile.dependency_factor * sum(
        rate * UOP_LATENCY[kind] for kind, rate in profile.uops.items()
    )
    return WorkloadSummary(
        name=profile.name,
        resource_class=classify(profile, llc_bytes=llc_bytes),
        arithmetic_per_access=arithmetic,
        critical_path_cycles=critical_path,
        footprint_bytes=profile.total_footprint_bytes,
        dram_access_fraction=_dram_fraction(profile, llc_bytes),
    )
