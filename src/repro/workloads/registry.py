"""A name-keyed registry over all known workload profiles.

The registry serves two purposes: convenient lookup by name anywhere in the
library (experiments, examples, the scheduler), and a single place where
user-defined profiles can be registered so the rest of the stack picks them
up without plumbing.
"""

from __future__ import annotations

from repro.errors import UnknownWorkloadError
from repro.workloads.cloudsuite import CLOUDSUITE
from repro.workloads.profile import Suite, WorkloadProfile
from repro.workloads.spec import SPEC_CPU2006

__all__ = ["get_profile", "all_profiles", "spec_profiles", "register_profile",
           "unregister_profile"]

_CUSTOM: dict[str, WorkloadProfile] = {}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by name across SPEC, CloudSuite, and custom entries."""
    if name in _CUSTOM:
        return _CUSTOM[name]
    if name in SPEC_CPU2006:
        return SPEC_CPU2006[name]
    if name in CLOUDSUITE:
        return CLOUDSUITE[name].profile
    raise UnknownWorkloadError(name)


def all_profiles(*, include_custom: bool = True) -> list[WorkloadProfile]:
    """Every known profile: 29 SPEC + 4 CloudSuite (+ custom)."""
    profiles = list(SPEC_CPU2006.values())
    profiles.extend(w.profile for w in CLOUDSUITE.values())
    if include_custom:
        profiles.extend(_CUSTOM.values())
    return profiles


def spec_profiles(suite: Suite | None = None) -> list[WorkloadProfile]:
    """SPEC profiles, optionally restricted to SPEC_INT or SPEC_FP."""
    profiles = list(SPEC_CPU2006.values())
    if suite is None:
        return profiles
    return [p for p in profiles if p.suite is suite]


def register_profile(profile: WorkloadProfile, *, overwrite: bool = False) -> None:
    """Add a custom profile to the registry.

    Refuses to shadow a built-in or an existing custom profile unless
    ``overwrite`` is set.
    """
    exists = (profile.name in _CUSTOM or profile.name in SPEC_CPU2006
              or profile.name in CLOUDSUITE)
    if exists and not overwrite:
        raise UnknownWorkloadError(
            f"profile {profile.name!r} already registered; "
            f"pass overwrite=True to replace it"
        )
    _CUSTOM[profile.name] = profile


def unregister_profile(name: str) -> None:
    """Remove a custom profile; built-ins cannot be removed."""
    if name not in _CUSTOM:
        raise UnknownWorkloadError(name)
    del _CUSTOM[name]
