"""Workload models: SPEC CPU2006, CloudSuite, and synthetic generators.

A workload is a :class:`~repro.workloads.profile.WorkloadProfile` — a static
description of instruction mix, dependency structure, and memory footprint
that the SMT simulator turns into IPC under any co-location. The profiles
here are synthetic stand-ins for the paper's benchmark binaries (see
DESIGN.md, Substitutions).
"""

from repro.workloads.cloudsuite import (
    CLOUDSUITE,
    LatencySensitiveWorkload,
    cloudsuite_apps,
)
from repro.workloads.insights import (
    ResourceClass,
    classify,
    summarize_profile,
)
from repro.workloads.profile import FootprintStratum, Suite, WorkloadProfile
from repro.workloads.registry import (
    all_profiles,
    get_profile,
    register_profile,
    spec_profiles,
)
from repro.workloads.spec import SPEC_CPU2006, spec_even, spec_odd
from repro.workloads.synthetic import random_profile

__all__ = [
    "CLOUDSUITE",
    "LatencySensitiveWorkload",
    "cloudsuite_apps",
    "ResourceClass",
    "classify",
    "summarize_profile",
    "FootprintStratum",
    "Suite",
    "WorkloadProfile",
    "all_profiles",
    "get_profile",
    "register_profile",
    "spec_profiles",
    "SPEC_CPU2006",
    "spec_even",
    "spec_odd",
    "random_profile",
]
