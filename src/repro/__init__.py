"""SMiTe reproduction: precise QoS-interference prediction on SMT processors.

A full-system reproduction of Zhang, Laurenzano, Mars & Tang, "SMiTe:
Precise QoS Prediction on Real-System SMT Processors to Improve
Utilization in Warehouse Scale Computers" (MICRO 2014), built on an
analytic SMT multicore interference simulator in place of the paper's
physical testbed (see DESIGN.md for the substitution argument).

Quick start::

    from repro import Simulator, IVY_BRIDGE, SMiTe
    from repro.workloads import spec_even, SPEC_CPU2006

    simulator = Simulator(IVY_BRIDGE)
    smite = SMiTe(simulator).fit(spec_even(), mode="smt")
    degradation = smite.predict(SPEC_CPU2006["429.mcf"],
                                SPEC_CPU2006["470.lbm"])

Subpackages:

- :mod:`repro.smt` — the SMT/CMP interference simulator substrate;
- :mod:`repro.workloads` — SPEC CPU2006 / CloudSuite workload models;
- :mod:`repro.isa` — the mini-ISA Rulers are authored in;
- :mod:`repro.rulers` — the seven-dimension stressor suite;
- :mod:`repro.core` — characterization, regression, tail latency (SMiTe);
- :mod:`repro.queueing` — M/M/1 analytics and a discrete-event validator;
- :mod:`repro.scheduler` — the 4,000-server scale-out study;
- :mod:`repro.tco` — the 3-year TCO analysis;
- :mod:`repro.experiments` — one driver per paper table/figure.
"""

from repro.core.predictor import SMiTe
from repro.core.tail import TailLatencyModel
from repro.errors import ReproError
from repro.rulers.base import Dimension
from repro.rulers.suite import default_suite
from repro.smt.params import IVY_BRIDGE, MACHINES, SANDY_BRIDGE_EN, MachineSpec
from repro.smt.simulator import Simulator
from repro.workloads.profile import Suite, WorkloadProfile

__version__ = "1.0.0"

__all__ = [
    "SMiTe",
    "TailLatencyModel",
    "ReproError",
    "Dimension",
    "default_suite",
    "IVY_BRIDGE",
    "MACHINES",
    "SANDY_BRIDGE_EN",
    "MachineSpec",
    "Simulator",
    "Suite",
    "WorkloadProfile",
    "__version__",
]
