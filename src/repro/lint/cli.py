"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean (only suppressed/baselined/advisory findings),
1 = new violations or stale baseline entries, 2 = usage error.

Examples::

    python -m repro.lint src                 # lint the tree
    python -m repro.lint --format json src   # machine-readable findings
    python -m repro.lint --update-baseline   # record today's violations
    python -m repro.lint --list-rules        # rule reference
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import load_config
from repro.lint.engine import LintResult, run
from repro.lint.findings import Severity
from repro.lint.registry import all_rules

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="SMiTe domain-aware static analysis "
                    "(see docs/STATIC_ANALYSIS.md)",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: [tool.smite-lint] paths)")
    parser.add_argument("--root", default=".",
                        help="repository root holding pyproject.toml "
                             "and the baseline (default: cwd)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the checked-in baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current violations")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed/baselined findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule reference and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print per-rule finding/suppression counts "
                             "and phase timings")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="phase-2 worker processes (default: "
                             "$SMITE_LINT_JOBS or 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")
    return parser


def _list_rules() -> int:
    print(f"{'id':<8} {'severity':<8} {'family':<12} summary")
    for rule in all_rules():
        print(f"{rule.id:<8} {rule.severity.value:<8} {rule.family:<12} "
              f"{rule.summary}")
    return 0


def _render_text(result: LintResult, *, show_suppressed: bool) -> None:
    failing = result.failing
    for finding in result.findings:
        is_failing = (not finding.suppressed and not finding.baselined
                      and finding.severity is not Severity.INFO)
        if is_failing or show_suppressed:
            tag = ""
            if finding.suppressed:
                reason = finding.suppress_reason or "no reason given"
                tag = f"  (suppressed: {reason})"
            elif finding.baselined:
                tag = "  (baselined)"
            print(finding.render() + tag)
    for fingerprint in result.stale_baseline:
        print(f"stale baseline entry (fixed? delete it): {fingerprint}")
    suppressed = sum(1 for f in result.findings if f.suppressed)
    baselined = sum(1 for f in result.findings if f.baselined)
    advisory = sum(1 for f in result.findings
                   if f.severity is Severity.INFO
                   and not f.suppressed and not f.baselined)
    status = "FAIL" if result.exit_code else "OK"
    print(f"{status}: {len(failing)} new violation(s), "
          f"{baselined} baselined, {suppressed} suppressed, "
          f"{advisory} advisory, {len(result.stale_baseline)} stale "
          f"baseline entr(ies) across {result.files_checked} file(s)")


def _render_stats(result: LintResult) -> None:
    stats = result.rule_stats()
    print()
    print(f"{'rule':<8} {'failing':>8} {'baselined':>10} "
          f"{'suppressed':>11} {'advisory':>9}")
    for rule_id in sorted(stats):
        row = stats[rule_id]
        print(f"{rule_id:<8} {row['failing']:>8} {row['baselined']:>10} "
              f"{row['suppressed']:>11} {row['advisory']:>9}")
    timings = result.timings
    if timings:
        print(f"phase1 {timings.get('phase1_s', 0.0):.3f}s "
              f"(parse+graph)  phase2 {timings.get('phase2_s', 0.0):.3f}s "
              f"(rules)  total {timings.get('total_s', 0.0):.3f}s  "
              f"jobs={result.jobs}  cache {result.cache_hits} hit(s) / "
              f"{result.cache_misses} miss(es)")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules()

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"--root {args.root!r} is not a directory")
    config = load_config(root)
    paths = [Path(p) for p in args.paths] or None
    if paths:
        missing = [p for p in paths if not p.exists()]
        if missing:
            parser.error(f"no such path(s): "
                         f"{', '.join(str(p) for p in missing)}")

    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    result = run(config, paths,
                 use_baseline=not (args.no_baseline or args.update_baseline),
                 jobs=args.jobs, use_cache=not args.no_cache)

    if args.update_baseline:
        baseline = Baseline.from_findings(result.failing)
        config.baseline_file.parent.mkdir(parents=True, exist_ok=True)
        baseline.save(config.baseline_file)
        print(f"baseline written: {len(baseline)} entr(ies) -> "
              f"{config.baseline_file}")
        return 0

    if args.format == "json":
        print(json.dumps({
            "findings": [f.to_dict() for f in result.findings],
            "stale_baseline": result.stale_baseline,
            "files_checked": result.files_checked,
            "exit_code": result.exit_code,
            "timings": result.timings,
            "cache": {"hits": result.cache_hits,
                      "misses": result.cache_misses},
            "jobs": result.jobs,
            "rule_stats": result.rule_stats(),
        }, indent=2))
    else:
        _render_text(result, show_suppressed=args.show_suppressed)
        if args.stats:
            _render_stats(result)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
