"""Lint configuration: defaults plus the ``[tool.smite-lint]`` block.

Configuration lives in ``pyproject.toml`` so the lint, the test suite,
and the benchmark preflight all agree on what is checked::

    [tool.smite-lint]
    paths = ["src"]
    baseline = ".smite-lint-baseline.json"
    disable = []

    [tool.smite-lint.scopes.determinism]
    include = ["src/repro/core", "src/repro/smt"]

Per-family *scopes* restrict where a rule family fires: ``include`` is a
list of path prefixes the family applies to (empty = everywhere under
the linted paths) and ``exclude`` is a list of prefixes it skips.
``tomllib`` ships with Python 3.11; on older interpreters the loader
degrades to the in-code defaults rather than failing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

try:
    import tomllib
except ImportError:  # Python 3.10: run with in-code defaults
    tomllib = None  # type: ignore[assignment]

__all__ = ["LintConfig", "Scope", "load_config", "DEFAULT_SCOPES"]


@dataclass(frozen=True)
class Scope:
    """Path prefixes a rule family applies to (include) and skips (exclude)."""

    include: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        path = relpath.replace("\\", "/")
        if any(_has_prefix(path, prefix) for prefix in self.exclude):
            return False
        if not self.include:
            return True
        return any(_has_prefix(path, prefix) for prefix in self.include)


def _has_prefix(path: str, prefix: str) -> bool:
    prefix = prefix.rstrip("/")
    return path == prefix or path.startswith(prefix + "/")


#: Where each rule family fires when the config does not say otherwise.
#: Determinism and numeric rules target the model code implementing the
#: paper's equations; the metrics rule skips the registry internals whose
#: helper methods legitimately take dynamic names.
DEFAULT_SCOPES: Mapping[str, Scope] = {
    "determinism": Scope(include=(
        "src/repro/core", "src/repro/smt",
        "src/repro/queueing", "src/repro/scheduler",
        "src/repro/serve",
    )),
    "metrics": Scope(exclude=("src/repro/obs",)),
    "numeric": Scope(include=(
        "src/repro/core", "src/repro/smt", "src/repro/queueing",
        "src/repro/isa", "src/repro/rulers", "src/repro/analysis",
    )),
    "api": Scope(),
    "ports": Scope(),
    "concurrency": Scope(),
    "procsafety": Scope(),
}


@dataclass(frozen=True)
class LintConfig:
    """Everything the engine needs to know about one lint run."""

    root: Path = Path(".")
    paths: tuple[str, ...] = ("src",)
    baseline_path: str = ".smite-lint-baseline.json"
    cache_path: str = ".smite-lint-cache.json"
    disable: tuple[str, ...] = ()
    scopes: Mapping[str, Scope] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES))

    def scope_for(self, family: str) -> Scope:
        return self.scopes.get(family, Scope())

    def rule_enabled(self, rule_id: str, family: str) -> bool:
        """Disable entries may name a rule id or a whole family."""
        return rule_id not in self.disable and family not in self.disable

    @property
    def baseline_file(self) -> Path:
        return self.root / self.baseline_path

    @property
    def cache_file(self) -> Path:
        return self.root / self.cache_path


def _parse_scope(raw: Mapping[str, Any], fallback: Scope) -> Scope:
    return Scope(
        include=tuple(raw.get("include", fallback.include)),
        exclude=tuple(raw.get("exclude", fallback.exclude)),
    )


def load_config(root: Path | str = ".") -> LintConfig:
    """The config for ``root``, honoring its ``[tool.smite-lint]`` block."""
    root = Path(root).resolve()
    config = LintConfig(root=root)
    pyproject = root / "pyproject.toml"
    if tomllib is None or not pyproject.is_file():
        return config
    with pyproject.open("rb") as fh:
        data = tomllib.load(fh)
    raw = data.get("tool", {}).get("smite-lint", {})
    if not raw:
        return config
    scopes = dict(DEFAULT_SCOPES)
    for family, entry in raw.get("scopes", {}).items():
        scopes[family] = _parse_scope(entry, scopes.get(family, Scope()))
    return replace(
        config,
        paths=tuple(raw.get("paths", config.paths)),
        baseline_path=str(raw.get("baseline", config.baseline_path)),
        cache_path=str(raw.get("cache", config.cache_path)),
        disable=tuple(raw.get("disable", ())),
        scopes=scopes,
    )
