"""Finding and severity model for the ``repro.lint`` framework.

A :class:`Finding` is one rule violation at one source location. Findings
are plain values: the engine produces them, suppressions and baselines
filter them, and the CLI renders them (human text or JSON). The
``fingerprint`` intentionally excludes the line *number* — it hashes the
rule, the file, and the stripped source text of the flagged line — so a
baseline entry survives unrelated edits that shift code up or down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Severity", "Finding"]


class Severity(enum.Enum):
    """How bad a violation is; orders from advisory to blocking."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    def __repr__(self) -> str:
        return f"Severity.{self.name}"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str            # rule id, e.g. "SMT101"
    severity: Severity
    path: str            # repo-relative, forward slashes
    line: int            # 1-based; 0 for whole-file findings
    col: int             # 0-based column offset
    message: str
    source: str = ""     # stripped text of the flagged line ('' if n/a)
    suppressed: bool = field(default=False, compare=False)
    suppress_reason: str = field(default="", compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.source}"

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def render(self) -> str:
        """The one-line human form: location, severity, rule, message."""
        return (f"{self.location}: {self.severity.value} "
                f"[{self.rule}] {self.message}")

    def to_dict(self) -> dict[str, Any]:
        """A JSON-able dict (the ``--format json`` record shape)."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source": self.source,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
            "baselined": self.baselined,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            severity=Severity(data.get("severity", "error")),
            path=str(data["path"]),
            line=int(data.get("line", 0)),
            col=int(data.get("col", 0)),
            message=str(data.get("message", "")),
            source=str(data.get("source", "")),
            suppressed=bool(data.get("suppressed", False)),
            suppress_reason=str(data.get("suppress_reason", "")),
            baselined=bool(data.get("baselined", False)),
        )
