"""Phase 1 of the two-phase engine: the project-wide symbol graph.

The single-walk rule families (SMT1xx-5xx) see one module at a time;
the concurrency families (SMT6xx/SMT7xx) need to know what a call
*reaches* across module boundaries — a ``time.sleep`` three helpers away
from an ``async def`` blocks the event loop just as surely as one in the
coroutine body. This module builds that view:

- :class:`ModuleInfo` per file: defined functions/classes, import
  bindings (absolute, relative, aliased, ``from x import *``), and per
  function the raw call sites, blocking-primitive calls, obs-recorder
  calls, module-global mutations, and executor submit sites;
- :class:`ProjectGraph`: resolves call sites to project symbols
  (module functions, class methods through base classes *and* project
  subclass overrides, ``self.<attr>`` fields typed by constructor
  annotations or local construction), then computes three closures:
  the **async taint** (functions reachable from a coroutine body by
  plain calls — an executor hop passes the function as a value, so it
  breaks the chain naturally), the **worker taint** (functions reachable
  from a ``ProcessPoolExecutor.submit`` / ``multiprocessing.Process``
  entrypoint, tracked per entrypoint so snapshot/merge foldback can be
  checked per worker), and **blocking reachability** with the call chain
  kept for diagnostics.

Everything stored here is plain data (no AST nodes), so the graph
pickles cleanly to phase-2 worker processes and hashes stably into the
result cache's per-module signature.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "BLOCKING_ATTR_TAILS",
    "BLOCKING_DOTTED",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectGraph",
    "build_graph",
    "module_name_for",
    "scan_module",
]

# ----------------------------------------------------------------------
# What counts as blocking / event-loop-hostile (SMT601)

#: Exact dotted names (after import-alias expansion) whose call blocks
#: the calling thread. ``asyncio.sleep`` is absent on purpose.
BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.getoutput", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
    "select.select",
})

#: Attribute tails whose call blocks regardless of the receiver's type
#: (sockets, pipe connections, files). Matched only when the dotted
#: receiver cannot be resolved to something known-safe; in practice the
#: false-positive risk is tiny because these only matter once the
#: function is async-tainted.
BLOCKING_ATTR_TAILS = frozenset({
    "recv", "recvfrom", "accept", "connect", "sendall",
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: ``asyncio`` helpers that *consume* a coroutine object, so a call
#: appearing as their argument is not "un-awaited" (SMT602).
COROUTINE_WRAPPER_TAILS = frozenset({
    "create_task", "ensure_future", "gather", "wait", "wait_for",
    "run", "run_coroutine_threadsafe", "run_until_complete", "shield",
    "as_completed", "timeout",
})

#: Calls that hand work to a process pool: ``<executor>.submit(fn, ...)``
#: (positional target) and ``multiprocessing.Process(target=fn)``.
_PROCESS_CTORS = frozenset({
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Pool", "multiprocessing.pool.Pool",
})

#: Methods on module-level containers that mutate them in place.
_MUTATOR_TAILS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
})

#: Obs-registry recorders (mutate process-global metric state) and the
#: snapshot/merge calls that fold that state back to a parent process.
_OBS_RECORDERS = frozenset({"counter", "gauge", "histogram", "span",
                            "time_histogram"})
_OBS_FOLDBACK = frozenset({"snapshot", "merge", "reset"})


def module_name_for(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/`` is the import root (``src/repro/obs/__init__.py`` →
    ``repro.obs``); paths outside it (``benchmarks/bench_api.py``) keep
    their directory as a pseudo-package so intra-project resolution
    still has a unique name per file.
    """
    path = relpath.replace("\\", "/")
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith(".py"):
        path = path[:-3]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


@dataclass(frozen=True)
class CallSite:
    """One call expression, with enough context for the SMT6xx rules."""

    lineno: int
    col: int
    raw: str                 # dotted source text ("self.decider.decide")
    expanded: str            # after import-alias expansion
    awaited: bool            # immediate ``await`` parent
    wrapped: bool            # argument of create_task/gather/run/...
    returned: bool           # direct ``return <call>`` statement
    assigned: bool = False   # bound to a name (may be awaited later)
    callees: tuple[str, ...] = ()   # resolved project qualnames


@dataclass
class FunctionInfo:
    """One function or method, with the facts phase 2 consults."""

    qualname: str            # "repro.serve.shard:_shard_worker"
    module: str
    local: str               # "ApiServer._run_batch"
    lineno: int
    is_async: bool
    is_nested: bool
    class_name: str | None = None
    calls: list[CallSite] = field(default_factory=list)
    #: (lineno, col, dotted) of direct blocking-primitive calls.
    blocking: list[tuple[int, int, str]] = field(default_factory=list)
    #: (lineno, col, name) of obs-recorder calls (counter/gauge/...).
    obs_mutations: list[tuple[int, int, str]] = field(default_factory=list)
    #: Obs foldback calls (snapshot/merge/reset) made directly here.
    obs_foldback: bool = False
    #: (lineno, col, name, how) module-global mutations.
    global_mutations: list[tuple[int, int, str, str]] = (
        field(default_factory=list))
    #: local variable -> expanded ctor dotted name (light type tracking).
    local_ctors: dict[str, str] = field(default_factory=dict)
    #: local variable -> the ``self.`` attribute chain it aliases
    #: (``simulator`` -> "self.predictor.simulator").
    local_aliases: dict[str, str] = field(default_factory=dict)
    #: (lineno, col, api, target kind, target name) executor submits.
    submits: list[tuple[int, int, str, str, str]] = (
        field(default_factory=list))


@dataclass
class ClassInfo:
    """One class: bases by raw name, methods, annotation-typed attrs."""

    qualname: str            # "repro.serve.service:PredictionService"
    module: str
    name: str
    lineno: int
    bases: tuple[str, ...] = ()          # raw dotted base names
    methods: dict[str, str] = field(default_factory=dict)
    #: self.<attr> -> raw dotted class name (from ctor annotations or
    #: direct construction in any method).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: Lifecycle methods the class defines (close/shutdown/...).
    closers: frozenset[str] = frozenset()


@dataclass
class ModuleInfo:
    """Everything phase 1 learns about one module."""

    relpath: str
    modname: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: local alias -> dotted target ("np" -> "numpy",
    #: "counter" -> "repro.obs.counter").
    imports: dict[str, str] = field(default_factory=dict)
    star_imports: tuple[str, ...] = ()
    module_globals: frozenset[str] = frozenset()

    def expand(self, dotted: str) -> str:
        """Rewrite the leading segment through this module's imports."""
        head, sep, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return dotted
        return target + sep + rest if sep else target


# ----------------------------------------------------------------------
# Phase-1 scan: one module's AST -> ModuleInfo (plain data)

def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _annotation_dotted(node: ast.AST) -> str:
    """The class a parameter annotation names, unwrapping optionals.

    ``X | None`` / ``X | str | None`` take the first project-resolvable
    arm; ``Optional[X]`` unwraps the subscript. Anything fancier
    resolves to '' (untracked).
    """
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            name = _annotation_dotted(side)
            if name:
                return name
        return ""
    if isinstance(node, ast.Subscript):
        if _dotted(node.value).rpartition(".")[2] == "Optional":
            return _annotation_dotted(node.slice)
        return ""
    if isinstance(node, ast.Constant) and node.value is None:
        return ""
    name = _dotted(node)
    return "" if name in ("None", "str", "int", "float", "bool") else name


_CLOSER_NAMES = frozenset({"close", "shutdown", "stop", "drain",
                           "__exit__", "__aexit__", "__del__"})


class _Scanner(ast.NodeVisitor):
    """Single recursive walk building a :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo, parents: dict[ast.AST, ast.AST]):
        self.info = info
        self.parents = parents
        self._class_stack: list[ClassInfo] = []
        self._func_stack: list[FunctionInfo] = []
        self._declared_globals: list[set[str]] = []

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.partition(".")[0]
            target = alias.name if alias.asname else alias.name.partition(
                ".")[0]
            # ``import a.b.c`` binds ``a``; ``import a.b as c`` binds the
            # full dotted path to ``c``.
            self.info.imports.setdefault(name, target)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            pkg_parts = self.info.modname.split(".")
            # level 1 = current package (module's own dir), 2 = parent...
            anchor = pkg_parts[: len(pkg_parts) - node.level]
            base = ".".join(anchor + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                self.info.star_imports += (base,)
                continue
            bound = alias.asname or alias.name
            self.info.imports.setdefault(bound, f"{base}.{alias.name}")

    # -- definitions ----------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # The innermost enclosing class name is already fully dotted.
        prefix = [self._class_stack[-1].name] if self._class_stack else []
        local = ".".join(prefix + [node.name])
        cls = ClassInfo(
            qualname=f"{self.info.modname}:{local}",
            module=self.info.modname, name=local, lineno=node.lineno,
            bases=tuple(d for d in (_dotted(b) for b in node.bases) if d),
        )
        self.info.classes[local] = cls
        self._class_stack.append(cls)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()
        cls.closers = frozenset(m for m in cls.methods
                                if m.rpartition(".")[2] in _CLOSER_NAMES)

    def _visit_function(self, node, *, is_async: bool) -> None:
        if self._func_stack:
            # Nested def: extend the enclosing function's dotted name.
            prefix = [self._func_stack[-1].local]
        elif self._class_stack:
            prefix = [self._class_stack[-1].name]
        else:
            prefix = []
        local = ".".join(prefix + [node.name])
        fn = FunctionInfo(
            qualname=f"{self.info.modname}:{local}",
            module=self.info.modname, local=local, lineno=node.lineno,
            is_async=is_async, is_nested=bool(self._func_stack),
            class_name=(self._class_stack[-1].name
                        if self._class_stack and not self._func_stack
                        else None),
        )
        self.info.functions[local] = fn
        if fn.class_name is not None:
            self._class_stack[-1].methods[node.name] = local
            self._note_annotated_attrs(node)
        self._func_stack.append(fn)
        self._declared_globals.append(set())
        for child in node.body:
            self.visit(child)
        self._declared_globals.pop()
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    def _note_annotated_attrs(self, node) -> None:
        """``self.x = param`` with an annotated param types attr ``x``."""
        cls = self._class_stack[-1]
        annotations: dict[str, str] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                ann = _annotation_dotted(arg.annotation)
                if ann:
                    annotations[arg.arg] = ann
        for stmt in ast.walk(node):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if isinstance(stmt.value, ast.Name) \
                    and stmt.value.id in annotations:
                cls.attr_types.setdefault(target.attr,
                                          annotations[stmt.value.id])
            elif isinstance(stmt.value, ast.Call):
                ctor = _dotted(stmt.value.func)
                if ctor:
                    cls.attr_types.setdefault(target.attr, ctor)

    # -- statements inside functions ------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        if self._declared_globals:
            self._declared_globals[-1].update(node.names)

    def _mutated_root(self, target: ast.AST) -> tuple[str, str] | None:
        """(name, how) when ``target`` stores into module-global state."""
        if isinstance(target, ast.Name):
            if self._declared_globals and \
                    target.id in self._declared_globals[-1]:
                return target.id, "global-statement rebind"
            return None
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name) \
                and node.id in self.info.module_globals:
            how = ("item assignment" if isinstance(target, ast.Subscript)
                   else "attribute assignment")
            return node.id, how
        return None

    def _note_mutations(self, targets) -> None:
        if not self._func_stack:
            return
        fn = self._func_stack[-1]
        for target in targets:
            hit = self._mutated_root(target)
            if hit is not None:
                fn.global_mutations.append(
                    (target.lineno, target.col_offset, *hit))

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._func_stack and not self._class_stack:
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        self.info.module_globals |= {leaf.id}
        self._note_mutations(node.targets)
        if self._func_stack and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            bound = node.targets[0].id
            if isinstance(node.value, ast.Call):
                ctor = _dotted(node.value.func)
                if ctor:
                    self._func_stack[-1].local_ctors.setdefault(
                        bound, self.info.expand(ctor))
            elif isinstance(node.value, ast.Attribute):
                chain = _dotted(node.value)
                if chain.startswith("self."):
                    self._func_stack[-1].local_aliases.setdefault(
                        bound, chain)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._func_stack and not self._class_stack \
                and isinstance(node.target, ast.Name):
            self.info.module_globals |= {node.target.id}
        if node.value is not None:
            self._note_mutations([node.target])
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_mutations([node.target])
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        if self._func_stack:
            fn = self._func_stack[-1]
            for item in node.items:
                if isinstance(item.context_expr, ast.Call) \
                        and isinstance(item.optional_vars, ast.Name):
                    ctor = _dotted(item.context_expr.func)
                    if ctor:
                        fn.local_ctors.setdefault(
                            item.optional_vars.id, self.info.expand(ctor))
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    # -- calls ----------------------------------------------------------

    def _call_context(self, node: ast.Call) -> tuple[bool, bool, bool, bool]:
        """(awaited, wrapped, returned, assigned) for one call expression."""
        parent = self.parents.get(node)
        awaited = isinstance(parent, ast.Await)
        wrapped = False
        returned = isinstance(parent, ast.Return)
        assigned = isinstance(parent, (ast.Assign, ast.AnnAssign,
                                       ast.NamedExpr))
        seen = parent
        while seen is not None and not isinstance(
                seen, (ast.stmt, ast.Lambda)):
            if isinstance(seen, ast.Call):
                tail = _dotted(seen.func).rpartition(".")[2]
                if tail in COROUTINE_WRAPPER_TAILS:
                    wrapped = True
                    break
            seen = self.parents.get(seen)
        return awaited, wrapped, returned, assigned

    def visit_Call(self, node: ast.Call) -> None:
        raw = _dotted(node.func)
        if self._func_stack and raw:
            fn = self._func_stack[-1]
            expanded = self.info.expand(raw)
            awaited, wrapped, returned, assigned = self._call_context(node)
            fn.calls.append(CallSite(
                lineno=node.lineno, col=node.col_offset, raw=raw,
                expanded=expanded, awaited=awaited, wrapped=wrapped,
                returned=returned, assigned=assigned,
            ))
            self._classify_call(fn, node, raw, expanded)
        self.generic_visit(node)

    def _classify_call(self, fn: FunctionInfo, node: ast.Call,
                       raw: str, expanded: str) -> None:
        tail = raw.rpartition(".")[2]
        if expanded in BLOCKING_DOTTED or raw == "open" \
                or (tail in BLOCKING_ATTR_TAILS and "." in raw):
            fn.blocking.append((node.lineno, node.col_offset, raw))
        if expanded.startswith("repro.obs"):
            leaf = expanded.rpartition(".")[2]
            if leaf in _OBS_RECORDERS:
                fn.obs_mutations.append(
                    (node.lineno, node.col_offset, leaf))
            elif leaf in _OBS_FOLDBACK:
                fn.obs_foldback = True
        if tail in _MUTATOR_TAILS and "." in raw:
            root = raw.partition(".")[0]
            if root in self.info.module_globals:
                fn.global_mutations.append(
                    (node.lineno, node.col_offset, root,
                     f"in-place `.{tail}()`"))
        self._classify_submit(fn, node, raw, expanded, tail)

    def _classify_submit(self, fn: FunctionInfo, node: ast.Call,
                         raw: str, expanded: str, tail: str) -> None:
        """Record executor-submit sites with their target expression."""
        target: ast.AST | None = None
        api = ""
        if tail == "submit" and node.args:
            receiver = raw.rpartition(".")[0]
            ctor = fn.local_ctors.get(receiver, "")
            if ctor in _PROCESS_CTORS \
                    or ctor.rpartition(".")[2] == "ProcessPoolExecutor":
                target, api = node.args[0], f"{ctor.rpartition('.')[2]}.submit"
        elif tail in ("map", "imap", "imap_unordered", "starmap") \
                and node.args:
            receiver = raw.rpartition(".")[0]
            ctor = fn.local_ctors.get(receiver, "")
            if ctor in _PROCESS_CTORS \
                    or ctor.rpartition(".")[2] == "ProcessPoolExecutor":
                target, api = node.args[0], f"{ctor.rpartition('.')[2]}.{tail}"
        elif expanded in ("multiprocessing.Process",
                          "multiprocessing.context.Process"):
            api = "multiprocessing.Process"
            for kw in node.keywords:
                if kw.arg == "target":
                    target = kw.value
        if target is None:
            return
        if isinstance(target, ast.Lambda):
            kind, name = "lambda", "<lambda>"
        elif isinstance(target, ast.Name):
            kind, name = "name", target.id
        elif isinstance(target, (ast.Attribute,)):
            kind, name = "attr", _dotted(target)
        else:
            kind, name = "expr", ast.dump(target)[:40]
        fn.submits.append((node.lineno, node.col_offset, api, kind, name))


def scan_module(relpath: str, tree: ast.Module) -> ModuleInfo:
    """Build the plain-data summary of one parsed module."""
    info = ModuleInfo(relpath=relpath.replace("\\", "/"),
                      modname=module_name_for(relpath))
    # Module-level names must be known before function bodies are
    # scanned (a mutation site may precede the assignment textually).
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        info.module_globals |= {leaf.id}
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) \
                and isinstance(stmt.target, ast.Name):
            info.module_globals |= {stmt.target.id}
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    _Scanner(info, parents).visit(tree)
    return info


# ----------------------------------------------------------------------
# Phase-1 linking: resolution + closures over the whole project

class ProjectGraph:
    """All modules' summaries, linked: resolution, taints, chains."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        #: relpath -> ModuleInfo
        self.modules = modules
        self.by_name: dict[str, ModuleInfo] = {
            m.modname: m for m in modules.values()
        }
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for mod in modules.values():
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
        self._subclasses: dict[str, set[str]] = {}
        self._link()
        self.async_taint: dict[str, tuple[str, ...]] = {}
        self.worker_taint: dict[str, frozenset[str]] = {}
        self.worker_roots: dict[str, frozenset[str]] = {}
        self.blocking_next: dict[str, tuple[str, int, str]] = {}
        self._close()

    # -- symbol resolution ----------------------------------------------

    def _resolve_symbol(self, modname: str, symbol_path: str,
                        _seen: frozenset = frozenset()) -> tuple[str, ...]:
        """Resolve ``symbol_path`` (``f`` / ``Class.method``) in a module."""
        mod = self.by_name.get(modname)
        if mod is None or (modname, symbol_path) in _seen:
            return ()
        seen = _seen | {(modname, symbol_path)}
        head, _, rest = symbol_path.partition(".")
        if symbol_path in mod.functions:
            return (mod.functions[symbol_path].qualname,)
        if head in mod.classes:
            cls = mod.classes[head]
            if rest:
                return self._method_targets(cls, rest.rpartition(".")[2])
            init = cls.methods.get("__init__")
            if init is not None:
                return (f"{modname}:{init}",)
            return self._method_targets(cls, "__init__") or ()
        if head in mod.imports:
            target = mod.imports[head]
            full = target + ("." + rest if rest else "")
            return self._resolve_dotted_absolute(full, seen)
        for star in mod.star_imports:
            hit = self._resolve_symbol(star, symbol_path, seen)
            if hit:
                return hit
        return ()

    def _resolve_dotted_absolute(self, dotted: str,
                                 _seen: frozenset = frozenset()
                                 ) -> tuple[str, ...]:
        """Resolve a fully-expanded dotted path against project modules."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            modname = ".".join(parts[:cut])
            if modname in self.by_name:
                return self._resolve_symbol(
                    modname, ".".join(parts[cut:]), _seen)
        return ()

    def _method_targets(self, cls: ClassInfo, method: str,
                        *, include_overrides: bool = True,
                        _seen: frozenset = frozenset()) -> tuple[str, ...]:
        """The method in ``cls`` (walking bases) plus subclass overrides."""
        if cls.qualname in _seen:
            return ()
        seen = _seen | {cls.qualname}
        targets: list[str] = []
        local = cls.methods.get(method)
        if local is not None:
            targets.append(f"{cls.module}:{local}")
        else:
            for base_raw in cls.bases:
                base = self._class_for(cls.module, base_raw)
                if base is not None:
                    targets.extend(self._method_targets(
                        base, method, include_overrides=False, _seen=seen))
        if include_overrides:
            for sub_qual in sorted(self._all_subclasses(cls.qualname)):
                sub = self.classes.get(sub_qual)
                if sub is not None and method in sub.methods:
                    targets.append(f"{sub.module}:{sub.methods[method]}")
        return tuple(dict.fromkeys(targets))

    def _class_for(self, modname: str, raw: str) -> ClassInfo | None:
        """The project class a raw dotted name in ``modname`` refers to."""
        mod = self.by_name.get(modname)
        if mod is None:
            return None
        head, _, rest = raw.partition(".")
        if raw in mod.classes:
            return mod.classes[raw]
        if head in mod.imports:
            full = mod.imports[head] + ("." + rest if rest else "")
            parts = full.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                owner = ".".join(parts[:cut])
                target_mod = self.by_name.get(owner)
                if target_mod is not None:
                    name = ".".join(parts[cut:])
                    if name in target_mod.classes:
                        return target_mod.classes[name]
                    return None
        for star in mod.star_imports:
            star_mod = self.by_name.get(star)
            if star_mod is not None and raw in star_mod.classes:
                return star_mod.classes[raw]
        return None

    def _all_subclasses(self, qualname: str,
                        _seen: set | None = None) -> set[str]:
        seen = _seen if _seen is not None else set()
        for sub in self._subclasses.get(qualname, ()):
            if sub not in seen:
                seen.add(sub)
                self._all_subclasses(sub, seen)
        return seen

    def _link(self) -> None:
        """Resolve base classes, then every call site, in place."""
        for cls in self.classes.values():
            for base_raw in cls.bases:
                base = self._class_for(cls.module, base_raw)
                if base is not None:
                    self._subclasses.setdefault(
                        base.qualname, set()).add(cls.qualname)
        for fn in self.functions.values():
            mod = self.by_name[fn.module]
            cls = (mod.classes.get(fn.class_name)
                   if fn.class_name is not None else None)
            fn.calls = [
                self._resolved_site(fn, mod, cls, site)
                for site in fn.calls
            ]

    def _resolved_site(self, fn: FunctionInfo, mod: ModuleInfo,
                       cls: ClassInfo | None, site: CallSite) -> CallSite:
        callees = self._resolve_call(fn, mod, cls, site.raw)
        if callees == site.callees:
            return site
        return CallSite(
            lineno=site.lineno, col=site.col, raw=site.raw,
            expanded=site.expanded, awaited=site.awaited,
            wrapped=site.wrapped, returned=site.returned,
            assigned=site.assigned, callees=callees,
        )

    def resolve_call(self, fn: FunctionInfo, raw: str) -> tuple[str, ...]:
        """Public resolution query: ``raw`` as called from inside ``fn``."""
        mod = self.by_name.get(fn.module)
        if mod is None:
            return ()
        cls = (mod.classes.get(fn.class_name)
               if fn.class_name is not None else None)
        return self._resolve_call(fn, mod, cls, raw)

    def _resolve_call(self, fn: FunctionInfo, mod: ModuleInfo,
                      cls: ClassInfo | None, raw: str) -> tuple[str, ...]:
        head, _, rest = raw.partition(".")
        if head in fn.local_aliases and rest:
            # `sim = self.predictor.simulator; sim.prefetch(...)` —
            # rewrite through the alias (aliases start at `self`, so
            # this recurses at most once).
            return self._resolve_call(
                fn, mod, cls, fn.local_aliases[head] + "." + rest)
        if head == "self" and cls is not None and rest:
            # Walk `self.a.b.method` through attr types class by class.
            parts = rest.split(".")
            owner = cls
            for attr in parts[:-1]:
                attr_raw = owner.attr_types.get(attr)
                if attr_raw is None:
                    return ()
                nxt = self._class_for(owner.module, attr_raw)
                if nxt is None:
                    return ()
                owner = nxt
            return self._method_targets(owner, parts[-1])
        if not rest:
            # A bare name may be a function nested in this one or in an
            # enclosing scope (`is_nested` keeps class methods, which
            # are never callable bare, out of the walk).
            scope = fn.local
            while scope:
                nested = mod.functions.get(f"{scope}.{raw}")
                if nested is not None and nested.is_nested:
                    return (nested.qualname,)
                scope = scope.rpartition(".")[0]
        if head in fn.local_ctors and rest:
            ctor = fn.local_ctors[head]
            targets = self._resolve_dotted_absolute(ctor)
            if not targets:
                # ctor may itself be a project class dotted name
                ctor_cls = self._class_for(fn.module, ctor)
            else:
                ctor_cls = None
                init = targets[0]
                owner_mod, _, owner_local = init.partition(":")
                owner_cls_name = owner_local.rpartition(".__init__")[0]
                owner = self.by_name.get(owner_mod)
                if owner is not None:
                    ctor_cls = owner.classes.get(owner_cls_name)
            if ctor_cls is not None:
                return self._method_targets(
                    ctor_cls, rest.rpartition(".")[2])
            return ()
        return self._resolve_symbol(mod.modname, raw)

    # -- closures -------------------------------------------------------

    def _close(self) -> None:
        """Compute async taint, worker taints, blocking reachability."""
        # Blocking reachability, backwards: seed with functions that
        # contain a primitive, then pull callers in until fixpoint.
        nxt: dict[str, tuple[str, int, str]] = {}
        for fn in self.functions.values():
            if fn.blocking:
                lineno, _col, raw = fn.blocking[0]
                nxt[fn.qualname] = (f"`{raw}`", lineno, "")
        changed = True
        while changed:
            changed = False
            for fn in self.functions.values():
                if fn.qualname in nxt:
                    continue
                for site in fn.calls:
                    hit = next((c for c in site.callees if c in nxt), None)
                    if hit is not None and not self.functions[hit].is_async:
                        nxt[fn.qualname] = (site.raw, site.lineno, hit)
                        changed = True
                        break
        self.blocking_next = nxt

        # Async taint, forwards from coroutine bodies. Edges into async
        # callees are not followed: an awaited coroutine is its own root
        # and an un-awaited one never runs (SMT602's problem).
        taint: dict[str, tuple[str, ...]] = {
            fn.qualname: () for fn in self.functions.values() if fn.is_async
        }
        queue = list(taint)
        while queue:
            current = queue.pop()
            chain = taint[current]
            for site in self.functions[current].calls:
                for callee in site.callees:
                    target = self.functions.get(callee)
                    if target is None or target.is_async:
                        continue
                    if callee not in taint:
                        taint[callee] = chain + (current,)
                        queue.append(callee)
        self.async_taint = taint

        # Worker taint, forwards from submit targets, tracked per root.
        roots: dict[str, set[str]] = {}
        for fn in self.functions.values():
            for _lineno, _col, _api, kind, name in fn.submits:
                if kind not in ("name", "attr"):
                    continue
                for target in self.resolve_call(fn, name):
                    roots.setdefault(target, set())
        reach: dict[str, set[str]] = {q: {q} for q in roots}
        for root in roots:
            seen = {root}
            stack = [root]
            while stack:
                for site in self.functions[stack.pop()].calls:
                    for callee in site.callees:
                        if callee in self.functions and callee not in seen:
                            seen.add(callee)
                            stack.append(callee)
            reach[root] = seen
        taint_roots: dict[str, set[str]] = {}
        for root, seen in reach.items():
            for fn_qual in seen:
                taint_roots.setdefault(fn_qual, set()).add(root)
        self.worker_taint = {
            q: frozenset(rs) for q, rs in taint_roots.items()
        }
        self.worker_roots = {
            root: frozenset(seen) for root, seen in reach.items()
        }

    # -- phase-2 queries -------------------------------------------------

    def module_for(self, relpath: str) -> ModuleInfo | None:
        return self.modules.get(relpath.replace("\\", "/"))

    def blocking_chain(self, qualname: str, limit: int = 6) -> str:
        """Human-readable call chain from ``qualname`` to a primitive."""
        hops: list[str] = []
        current = qualname
        for _ in range(limit):
            entry = self.blocking_next.get(current)
            if entry is None:
                break
            via, _lineno, nxt = entry
            if not nxt:
                hops.append(via)
                break
            hops.append(f"{via} -> {self.functions[nxt].local}")
            current = nxt
        return " -> ".join(hops) if hops else "?"

    def root_folds_back(self, root: str) -> bool:
        """Does this worker entrypoint ship obs state back (snapshot)?"""
        for fn_qual in self.worker_roots.get(root, ()):
            fn = self.functions.get(fn_qual)
            if fn is not None and fn.obs_foldback:
                return True
        return False

    def module_signature(self, relpath: str) -> str:
        """A stable digest of everything phase 2 reads for one module.

        The result cache keys on this: if an edit two modules away
        changes this module's taints, resolution targets, or blocking
        chains, the signature changes and the cached findings are
        invalidated even though the file's own bytes did not move.
        """
        mod = self.module_for(relpath)
        if mod is None:
            return ""
        parts: list[str] = []
        for local in sorted(mod.functions):
            fn = mod.functions[local]
            q = fn.qualname
            parts.append(
                f"{local}|{fn.is_async}|{q in self.async_taint}"
                f"|{sorted(self.worker_taint.get(q, ()))}"
                f"|{self.blocking_next.get(q)}"
            )
            for site in fn.calls:
                callee_bits = ",".join(
                    f"{c}:{self.functions[c].is_async}"
                    f":{self.blocking_next.get(c) is not None}"
                    f":{self.blocking_chain(c)}"
                    for c in site.callees if c in self.functions
                )
                parts.append(f"  {site.lineno}:{site.raw}|{callee_bits}")
            for root in sorted(self.worker_taint.get(q, ())):
                parts.append(f"  root {root}|{self.root_folds_back(root)}")
        return "\n".join(parts)


def build_graph(modules: dict[str, ModuleInfo]) -> ProjectGraph:
    """Link scanned modules into the queryable project graph."""
    return ProjectGraph(modules)
