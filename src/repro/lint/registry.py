"""Rule base class and the global rule registry.

A rule is a class with an ``id`` (``SMT###``), a ``family`` (the scope
unit the config keys on), a default ``severity``, and either AST hooks
(methods named ``visit_<NodeType>``, dispatched during one shared walk
of the module) or a ``check_module`` hook (for whole-module analyses
like ``__all__`` drift or the Ruler port-purity check). Registration is
by decorator::

    @register
    class UnseededRandom(Rule):
        id = "SMT101"
        family = "determinism"
        ...

Rule ids are stable API: docs, suppression comments, and baseline
entries all refer to them.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Type

from repro.lint.findings import Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import ModuleContext

__all__ = ["Rule", "register", "all_rules", "rules_by_family", "find_rule"]


class Rule:
    """Base class for lint rules; subclass and :func:`register`."""

    id: str = ""
    family: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check_module(self, ctx: "ModuleContext") -> None:
        """Whole-module hook, called after the AST walk. Optional."""

    @classmethod
    def ast_hooks(cls) -> dict[str, str]:
        """Map of AST node-type name -> visit method name."""
        return {
            name[len("visit_"):]: name
            for name in dir(cls)
            if name.startswith("visit_") and callable(getattr(cls, name))
        }


_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id or not rule_class.family:
        raise ValueError(
            f"rule {rule_class.__name__} must define id and family"
        )
    existing = _REGISTRY.get(rule_class.id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rules() -> tuple[Type[Rule], ...]:
    """Every registered rule, in rule-id order."""
    _load_builtin_rules()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def rules_by_family() -> dict[str, tuple[Type[Rule], ...]]:
    """All registered rule classes grouped by family name."""
    families: dict[str, list[Type[Rule]]] = {}
    for rule in all_rules():
        families.setdefault(rule.family, []).append(rule)
    return {family: tuple(rules) for family, rules in families.items()}


def find_rule(rule_id: str) -> Type[Rule] | None:
    """The registered rule class with the given id, if any."""
    _load_builtin_rules()
    return _REGISTRY.get(rule_id)


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (registration side effect)."""
    from repro.lint import rules  # noqa: F401  (import registers rules)
