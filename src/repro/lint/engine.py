"""The two-phase lint engine.

**Phase 1** parses every file once and scans it into the plain-data
module summaries of :mod:`repro.lint.graph`, then links them into one
:class:`~repro.lint.graph.ProjectGraph` — the project-wide symbol table,
import/call graph, and taint sets ("reachable from an ``async def``",
"executed inside a shard worker") the cross-module rule families need.

**Phase 2** lints each module: the single-walk families (SMT1xx-5xx)
dispatch their ``visit_<NodeType>`` hooks during one shared
:func:`ast.walk` exactly as before, and the graph families (SMT6xx/7xx)
read ``ctx.project`` in their ``check_module`` hooks. Rules never do
their own tree walks or file IO, which keeps a whole-tree run linear in
the source size regardless of how many rules are enabled.

Phase 2 is the expensive half, so it is memoized per file in a
content-hash :class:`~repro.lint.cache.ResultCache` (keyed by file
bytes, the lint framework's own sources, the config, and the module's
graph slice) and can fan out across worker processes (``jobs``); both
are transparent — cached, parallel, and cold in-process runs produce
identical findings.
"""

from __future__ import annotations

import ast
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence, Type

from repro.lint.baseline import Baseline
from repro.lint.cache import ResultCache
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.graph import ProjectGraph, build_graph, scan_module
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import Suppression, parse_suppressions

__all__ = ["ModuleContext", "ProjectContext", "LintResult", "lint_source",
           "lint_sources", "lint_file", "lint_paths", "collect_files",
           "run", "SYNTAX_ERROR_RULE"]

#: Pseudo-rule id for files the parser rejects; not suppressible.
SYNTAX_ERROR_RULE = "SMT000"


class ProjectContext:
    """Phase-1 output shared by every module's phase-2 run."""

    def __init__(self, graph: ProjectGraph, config: LintConfig) -> None:
        self.graph = graph
        self.config = config


class ModuleContext:
    """Everything a rule may inspect about the module being linted."""

    def __init__(self, *, path: Path, relpath: str, source: str,
                 tree: ast.Module, config: LintConfig,
                 project: ProjectContext | None = None) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.project = project
        self.findings: list[Finding] = []
        self._parent_map: dict[ast.AST, ast.AST] | None = None

    # -- reporting ------------------------------------------------------

    def report(self, rule: Rule, message: str, *,
               node: ast.AST | None = None, line: int = 0,
               col: int = 0) -> None:
        """Record one violation, located at ``node`` or an explicit line."""
        if node is not None:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            source=self.source_line(line),
        ))

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- structure helpers ----------------------------------------------

    @property
    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent links, built lazily on first use."""
        if self._parent_map is None:
            parents: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parent_map = parents
        return self._parent_map

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The nearest FunctionDef/AsyncFunctionDef around ``node``."""
        current = self.parent_map.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent_map.get(current)
        return None


@dataclass
class LintResult:
    """Outcome of one lint run, after suppression and baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0
    #: Wall-clock attribution: ``phase1_s`` (parse + graph build),
    #: ``phase2_s`` (rule execution incl. cache lookups), ``total_s``.
    timings: dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    @property
    def failing(self) -> list[Finding]:
        """Findings that should fail the run (new, unsuppressed, not INFO)."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined
                and f.severity is not Severity.INFO]

    @property
    def exit_code(self) -> int:
        return 1 if (self.failing or self.stale_baseline) else 0

    def rule_stats(self) -> dict[str, dict[str, int]]:
        """Per-rule ``{failing, suppressed, baselined, advisory}`` counts."""
        stats: dict[str, dict[str, int]] = {}
        for finding in self.findings:
            row = stats.setdefault(finding.rule, {
                "failing": 0, "suppressed": 0, "baselined": 0,
                "advisory": 0,
            })
            if finding.suppressed:
                row["suppressed"] += 1
            elif finding.baselined:
                row["baselined"] += 1
            elif finding.severity is Severity.INFO:
                row["advisory"] += 1
            else:
                row["failing"] += 1
        return stats


def _active_rules(config: LintConfig, relpath: str,
                  rule_classes: Sequence[Type[Rule]]) -> list[Rule]:
    active = []
    for rule_class in rule_classes:
        if not config.rule_enabled(rule_class.id, rule_class.family):
            continue
        if not config.scope_for(rule_class.family).applies_to(relpath):
            continue
        active.append(rule_class())
    return active


def _apply_suppressions(findings: list[Finding],
                        suppressions: dict[int, Suppression]) -> list[Finding]:
    if not suppressions:
        return findings
    out: list[Finding] = []
    for finding in findings:
        # Whole-module findings (line 0) may be silenced from line 1.
        mark = suppressions.get(finding.line or 1)
        if (mark is not None and finding.rule != SYNTAX_ERROR_RULE
                and mark.covers(finding.rule)):
            finding = Finding(
                rule=finding.rule, severity=finding.severity,
                path=finding.path, line=finding.line, col=finding.col,
                message=finding.message, source=finding.source,
                suppressed=True, suppress_reason=mark.reason,
            )
        out.append(finding)
    return out


def _syntax_finding(relpath: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule=SYNTAX_ERROR_RULE, severity=Severity.ERROR, path=relpath,
        line=exc.lineno or 0, col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
    )


def _lint_module(source: str, relpath: str, config: LintConfig,
                 *, tree: ast.Module | None = None,
                 path: Path | None = None,
                 project: ProjectContext | None = None,
                 rule_classes: Sequence[Type[Rule]] | None = None,
                 ) -> list[Finding]:
    """Phase 2 for one module: the shared walk plus module hooks."""
    if rule_classes is None:
        rule_classes = all_rules()
    if tree is None:
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            return [_syntax_finding(relpath, exc)]
    ctx = ModuleContext(
        path=path if path is not None else Path(relpath),
        relpath=relpath, source=source, tree=tree, config=config,
        project=project,
    )
    rules = _active_rules(config, relpath, rule_classes)
    if not rules:
        return []

    # One shared walk: dispatch each node to every rule hooked on its type.
    hooks: dict[str, list] = {}
    for rule in rules:
        for node_type, method_name in type(rule).ast_hooks().items():
            hooks.setdefault(node_type, []).append(getattr(rule, method_name))
    if hooks:
        for node in ast.walk(tree):
            for hook in hooks.get(type(node).__name__, ()):
                hook(node, ctx)
    for rule in rules:
        rule.check_module(ctx)

    ctx.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return _apply_suppressions(ctx.findings, parse_suppressions(source))


def _single_module_project(relpath: str, tree: ast.Module,
                           config: LintConfig) -> ProjectContext:
    graph = build_graph({relpath: scan_module(relpath, tree)})
    return ProjectContext(graph, config)


def lint_source(source: str, relpath: str, config: LintConfig,
                *, path: Path | None = None,
                rule_classes: Sequence[Type[Rule]] | None = None,
                ) -> list[Finding]:
    """Lint one module given as text; the unit every test fixture uses.

    The module gets a one-file project graph, so the cross-module rule
    families still run (with only intra-module edges to work with).
    """
    relpath = relpath.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [_syntax_finding(relpath, exc)]
    project = _single_module_project(relpath, tree, config)
    return _lint_module(source, relpath, config, tree=tree, path=path,
                        project=project, rule_classes=rule_classes)


def lint_sources(sources: Mapping[str, str],
                 config: LintConfig | None = None,
                 *, rule_classes: Sequence[Type[Rule]] | None = None,
                 ) -> list[Finding]:
    """Lint several in-memory modules as one project.

    ``sources`` maps repo-relative paths to source text. This is the
    cross-module fixture entry point: a coroutine in one file and the
    blocking helper it reaches two files away are linked through the
    same project graph a real tree run would build.
    """
    if config is None:
        config = LintConfig()
    modules = {}
    parsed: dict[str, tuple[str, ast.Module]] = {}
    findings: list[Finding] = []
    for relpath, source in sources.items():
        relpath = relpath.replace("\\", "/")
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            findings.append(_syntax_finding(relpath, exc))
            continue
        parsed[relpath] = (source, tree)
        modules[relpath] = scan_module(relpath, tree)
    project = ProjectContext(build_graph(modules), config)
    for relpath, (source, tree) in parsed.items():
        findings.extend(_lint_module(
            source, relpath, config, tree=tree, project=project,
            rule_classes=rule_classes,
        ))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Path, config: LintConfig,
              *, rule_classes: Sequence[Type[Rule]] | None = None,
              ) -> list[Finding]:
    """Lint one file on disk, reporting paths relative to the config root."""
    relpath = _relpath_for(path, config)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, relpath, config, path=path,
                       rule_classes=rule_classes)


def _relpath_for(path: Path, config: LintConfig) -> str:
    try:
        return str(path.resolve().relative_to(config.root)).replace(
            "\\", "/")
    except ValueError:
        return str(path).replace("\\", "/")


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen: set[Path] = set()
    unique = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def _config_signature(config: LintConfig) -> str:
    scopes = sorted(
        (family, tuple(scope.include), tuple(scope.exclude))
        for family, scope in config.scopes.items()
    )
    return repr((tuple(config.paths), tuple(sorted(config.disable)), scopes))


def _phase2_worker(items: list[tuple[str, str]], config: LintConfig,
                   graph: ProjectGraph) -> list[tuple[str, list[Finding]]]:
    """Lint a chunk of modules in a worker process (re-parses sources)."""
    project = ProjectContext(graph, config)
    return [
        (relpath, _lint_module(source, relpath, config, project=project))
        for relpath, source in items
    ]


def default_jobs() -> int:
    """``SMITE_LINT_JOBS`` env override, else 1 (in-process)."""
    raw = os.environ.get("SMITE_LINT_JOBS", "").strip()
    if raw.isdigit() and int(raw) > 0:
        return int(raw)
    return 1


def lint_paths(paths: Sequence[Path], config: LintConfig,
               *, rule_classes: Sequence[Type[Rule]] | None = None,
               jobs: int = 1, cache: ResultCache | None = None,
               timings: dict[str, float] | None = None,
               ) -> tuple[list[Finding], int]:
    """Lint every ``.py`` file under ``paths``; (findings, files checked).

    Phase 1 always covers every file (the graph must be whole no matter
    which modules' phase-2 results are cached); phase 2 consults
    ``cache`` when given and fans out over ``jobs`` processes when > 1.
    The cache is only used with the default rule set — a custom
    ``rule_classes`` selection bypasses it.
    """
    t0 = time.perf_counter()
    files = collect_files(paths)
    findings: list[Finding] = []
    parsed: list[tuple[Path, str, str, ast.Module]] = []
    modules = {}
    for file in files:
        relpath = _relpath_for(file, config)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError as exc:
            findings.append(_syntax_finding(relpath, exc))
            continue
        parsed.append((file, relpath, source, tree))
        modules[relpath] = scan_module(relpath, tree)
    graph = build_graph(modules)
    project = ProjectContext(graph, config)
    t1 = time.perf_counter()

    use_cache = cache is not None and rule_classes is None
    config_sig = _config_signature(config) if use_cache else ""
    pending: list[tuple[Path, str, str, ast.Module, str]] = []
    for file, relpath, source, tree in parsed:
        key = ""
        if use_cache:
            key = ResultCache.key_for(
                source, config_sig, graph.module_signature(relpath))
            hit = cache.get(relpath, key)
            if hit is not None:
                findings.extend(hit)
                continue
        pending.append((file, relpath, source, tree, key))

    if jobs > 1 and len(pending) > 1:
        workers = min(jobs, len(pending))
        chunks: list[list[tuple[str, str]]] = [[] for _ in range(workers)]
        by_relpath = {relpath: key for _f, relpath, _s, _t, key in pending}
        for index, (_file, relpath, source, _tree, _key) in \
                enumerate(pending):
            chunks[index % workers].append((relpath, source))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            futures = [
                executor.submit(_phase2_worker, chunk, config, graph)
                for chunk in chunks if chunk
            ]
            for future in futures:
                for relpath, file_findings in future.result():
                    findings.extend(file_findings)
                    if use_cache:
                        cache.put(relpath, by_relpath[relpath],
                                  file_findings)
    else:
        for file, relpath, source, tree, key in pending:
            file_findings = _lint_module(
                source, relpath, config, tree=tree, path=file,
                project=project, rule_classes=rule_classes,
            )
            findings.extend(file_findings)
            if use_cache:
                cache.put(relpath, key, file_findings)

    if use_cache:
        cache.prune({relpath for _f, relpath, _s, _t in parsed})
        cache.save()
    t2 = time.perf_counter()
    if timings is not None:
        timings["phase1_s"] = t1 - t0
        timings["phase2_s"] = t2 - t1
        timings["total_s"] = t2 - t0
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def run(config: LintConfig, paths: Sequence[Path] | None = None,
        *, use_baseline: bool = True, jobs: int | None = None,
        use_cache: bool = True) -> LintResult:
    """A full lint run: collect, suppress, subtract the baseline."""
    if paths is None:
        paths = [config.root / p for p in config.paths]
    if jobs is None:
        jobs = default_jobs()
    cache = ResultCache(config.cache_file) if use_cache else None
    timings: dict[str, float] = {}
    findings, files_checked = lint_paths(
        paths, config, jobs=jobs, cache=cache, timings=timings)
    stale: list[str] = []
    if use_baseline:
        baseline = Baseline.load(config.baseline_file)
        findings, stale = baseline.apply(findings)
    return LintResult(
        findings=findings, stale_baseline=stale,
        files_checked=files_checked, timings=timings,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        jobs=jobs,
    )
