"""The lint engine: one AST walk per module, shared by every rule.

The engine parses each file once, dispatches nodes to every active
rule's ``visit_<NodeType>`` hooks during a single :func:`ast.walk`, runs
``check_module`` hooks, then filters the collected findings through
inline suppressions and (optionally) the checked-in baseline. Rules
never do their own tree walks or file IO, which keeps a whole-tree run
linear in the source size regardless of how many rules are enabled.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, Type

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import Suppression, parse_suppressions

__all__ = ["ModuleContext", "LintResult", "lint_source", "lint_file",
           "lint_paths", "collect_files", "run", "SYNTAX_ERROR_RULE"]

#: Pseudo-rule id for files the parser rejects; not suppressible.
SYNTAX_ERROR_RULE = "SMT000"


class ModuleContext:
    """Everything a rule may inspect about the module being linted."""

    def __init__(self, *, path: Path, relpath: str, source: str,
                 tree: ast.Module, config: LintConfig) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.findings: list[Finding] = []
        self._parent_map: dict[ast.AST, ast.AST] | None = None

    # -- reporting ------------------------------------------------------

    def report(self, rule: Rule, message: str, *,
               node: ast.AST | None = None, line: int = 0,
               col: int = 0) -> None:
        """Record one violation, located at ``node`` or an explicit line."""
        if node is not None:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(
            rule=rule.id,
            severity=rule.severity,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            source=self.source_line(line),
        ))

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # -- structure helpers ----------------------------------------------

    @property
    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent links, built lazily on first use."""
        if self._parent_map is None:
            parents: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parent_map = parents
        return self._parent_map

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """The nearest FunctionDef/AsyncFunctionDef around ``node``."""
        current = self.parent_map.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent_map.get(current)
        return None


@dataclass
class LintResult:
    """Outcome of one lint run, after suppression and baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def failing(self) -> list[Finding]:
        """Findings that should fail the run (new, unsuppressed, not INFO)."""
        return [f for f in self.findings
                if not f.suppressed and not f.baselined
                and f.severity is not Severity.INFO]

    @property
    def exit_code(self) -> int:
        return 1 if (self.failing or self.stale_baseline) else 0


def _active_rules(config: LintConfig, relpath: str,
                  rule_classes: Sequence[Type[Rule]]) -> list[Rule]:
    active = []
    for rule_class in rule_classes:
        if not config.rule_enabled(rule_class.id, rule_class.family):
            continue
        if not config.scope_for(rule_class.family).applies_to(relpath):
            continue
        active.append(rule_class())
    return active


def _apply_suppressions(findings: list[Finding],
                        suppressions: dict[int, Suppression]) -> list[Finding]:
    if not suppressions:
        return findings
    out: list[Finding] = []
    for finding in findings:
        # Whole-module findings (line 0) may be silenced from line 1.
        mark = suppressions.get(finding.line or 1)
        if (mark is not None and finding.rule != SYNTAX_ERROR_RULE
                and mark.covers(finding.rule)):
            finding = Finding(
                rule=finding.rule, severity=finding.severity,
                path=finding.path, line=finding.line, col=finding.col,
                message=finding.message, source=finding.source,
                suppressed=True, suppress_reason=mark.reason,
            )
        out.append(finding)
    return out


def lint_source(source: str, relpath: str, config: LintConfig,
                *, path: Path | None = None,
                rule_classes: Sequence[Type[Rule]] | None = None,
                ) -> list[Finding]:
    """Lint one module given as text; the unit every test fixture uses."""
    if rule_classes is None:
        rule_classes = all_rules()
    relpath = relpath.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [Finding(
            rule=SYNTAX_ERROR_RULE, severity=Severity.ERROR, path=relpath,
            line=exc.lineno or 0, col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )]
    ctx = ModuleContext(
        path=path if path is not None else Path(relpath),
        relpath=relpath, source=source, tree=tree, config=config,
    )
    rules = _active_rules(config, relpath, rule_classes)
    if not rules:
        return []

    # One shared walk: dispatch each node to every rule hooked on its type.
    hooks: dict[str, list] = {}
    for rule in rules:
        for node_type, method_name in type(rule).ast_hooks().items():
            hooks.setdefault(node_type, []).append(getattr(rule, method_name))
    if hooks:
        for node in ast.walk(tree):
            for hook in hooks.get(type(node).__name__, ()):
                hook(node, ctx)
    for rule in rules:
        rule.check_module(ctx)

    ctx.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return _apply_suppressions(ctx.findings, parse_suppressions(source))


def lint_file(path: Path, config: LintConfig,
              *, rule_classes: Sequence[Type[Rule]] | None = None,
              ) -> list[Finding]:
    """Lint one file on disk, reporting paths relative to the config root."""
    try:
        relpath = str(path.resolve().relative_to(config.root))
    except ValueError:
        relpath = str(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, relpath, config, path=path,
                       rule_classes=rule_classes)


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen: set[Path] = set()
    unique = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def lint_paths(paths: Sequence[Path], config: LintConfig,
               *, rule_classes: Sequence[Type[Rule]] | None = None,
               ) -> tuple[list[Finding], int]:
    """Lint every ``.py`` file under ``paths``; (findings, files checked)."""
    findings: list[Finding] = []
    files = collect_files(paths)
    for file in files:
        findings.extend(lint_file(file, config, rule_classes=rule_classes))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


def run(config: LintConfig, paths: Sequence[Path] | None = None,
        *, use_baseline: bool = True) -> LintResult:
    """A full lint run: collect, suppress, subtract the baseline."""
    if paths is None:
        paths = [config.root / p for p in config.paths]
    findings, files_checked = lint_paths(paths, config)
    stale: list[str] = []
    if use_baseline:
        baseline = Baseline.load(config.baseline_file)
        findings, stale = baseline.apply(findings)
    return LintResult(findings=findings, stale_baseline=stale,
                      files_checked=files_checked)
