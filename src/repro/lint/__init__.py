"""``repro.lint``: domain-aware static analysis for the SMiTe tree.

A dependency-free, AST-based lint framework. The engine runs in two
phases: phase 1 parses every file once and links a project-wide symbol
and call graph (:mod:`repro.lint.graph` — imports, class hierarchies,
async/worker taint sets, blocking reachability); phase 2 executes the
rule families per module, the single-walk ones against the AST and the
cross-module ones against the graph. Seven built-in families tie to
the paper's correctness invariants and the serving runtime's
concurrency contracts:

- **determinism** (SMT1xx): unseeded RNGs, wall-clock logic, and
  set-iteration-order hazards in model code — characterization runs
  must be bit-reproducible for Eq. 1-3 to mean anything;
- **metrics** (SMT2xx): every ``repro.obs`` metric/span name recorded
  anywhere in the tree must be statically resolvable and declared in
  :mod:`repro.obs.catalog` — a whole-tree superset of the runtime
  docs-parity check;
- **numeric** (SMT3xx): exact float equality and unguarded division in
  the Eq. 1-9 code paths;
- **api** (SMT4xx): exported names need docstrings; ``__all__`` must
  not drift from what a module defines;
- **ports** (SMT5xx): each functional-unit Ruler's kernel, walked
  through the real ISA layer, must map to exactly one execution port
  (Table 1) and respect the 0.01% loop-branch purity budget;
- **concurrency** (SMT6xx): blocking calls transitively reachable from
  coroutines without an executor hop, dropped (un-awaited) coroutine
  objects, and implicit event-loop creation;
- **procsafety** (SMT7xx): worker-process state that never folds back
  (obs snapshot/merge), unpicklable executor submit targets, and
  process/socket resources without a close guarantee.

Run it as ``python -m repro.lint src``; configure via the
``[tool.smite-lint]`` block in ``pyproject.toml``; silence one finding
with ``# smite: noqa[SMT301]: reason``; track legacy findings in the
checked-in baseline (``--update-baseline``). Full reference:
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, Scope, load_config
from repro.lint.engine import (
    LintResult,
    ModuleContext,
    ProjectContext,
    collect_files,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
    run,
)
from repro.lint.graph import ProjectGraph, build_graph, scan_module
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, find_rule, register
from repro.lint.suppress import Suppression, parse_suppressions

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "ProjectContext",
    "ProjectGraph",
    "Rule",
    "Scope",
    "Severity",
    "Suppression",
    "all_rules",
    "build_graph",
    "collect_files",
    "find_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_config",
    "scan_module",
    "parse_suppressions",
    "register",
    "run",
]
