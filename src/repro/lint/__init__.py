"""``repro.lint``: domain-aware static analysis for the SMiTe tree.

A dependency-free, AST-based lint framework with five built-in rule
families tied to the paper's correctness invariants:

- **determinism** (SMT1xx): unseeded RNGs, wall-clock logic, and
  set-iteration-order hazards in model code — characterization runs
  must be bit-reproducible for Eq. 1-3 to mean anything;
- **metrics** (SMT2xx): every ``repro.obs`` metric/span name recorded
  anywhere in the tree must be statically resolvable and declared in
  :mod:`repro.obs.catalog` — a whole-tree superset of the runtime
  docs-parity check;
- **numeric** (SMT3xx): exact float equality and unguarded division in
  the Eq. 1-9 code paths;
- **api** (SMT4xx): exported names need docstrings; ``__all__`` must
  not drift from what a module defines;
- **ports** (SMT5xx): each functional-unit Ruler's kernel, walked
  through the real ISA layer, must map to exactly one execution port
  (Table 1) and respect the 0.01% loop-branch purity budget.

Run it as ``python -m repro.lint src``; configure via the
``[tool.smite-lint]`` block in ``pyproject.toml``; silence one finding
with ``# smite: noqa[SMT301]: reason``; track legacy findings in the
checked-in baseline (``--update-baseline``). Full reference:
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, Scope, load_config
from repro.lint.engine import (
    LintResult,
    ModuleContext,
    collect_files,
    lint_file,
    lint_paths,
    lint_source,
    run,
)
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules, find_rule, register
from repro.lint.suppress import Suppression, parse_suppressions

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "Rule",
    "Scope",
    "Severity",
    "Suppression",
    "all_rules",
    "collect_files",
    "find_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "parse_suppressions",
    "register",
    "run",
]
