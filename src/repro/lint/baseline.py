"""The checked-in baseline: legacy findings tracked, new findings fail.

A baseline file is a JSON list of finding fingerprints with
multiplicities. ``apply`` subtracts baseline entries from a fresh run's
findings (marking the survivors of the subtraction ``baselined``), so a
tree with only legacy violations lints clean while any *new* violation
— or an old one moved to a new file — still fails. Fingerprints hash
the rule, the file, and the flagged line's stripped source text (not its
line number), so unrelated edits do not churn the baseline.

The workflow:

1. ``python -m repro.lint --update-baseline`` records today's violations;
2. the file is committed and reviewed like code;
3. fixing a violation makes its entry *stale* — ``apply`` reports stale
   entries so the baseline can only shrink, never silently rot.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from pathlib import Path

from repro.lint.findings import Finding

__all__ = ["Baseline"]

_FORMAT_VERSION = 1


class Baseline:
    """Fingerprint multiset with load/save and subtraction."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: dict[str, int] = dict(counts or {})

    def __len__(self) -> int:
        return sum(self.counts.values())

    # -- persistence ----------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """The baseline at ``path``; empty if the file does not exist."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r}"
            )
        counts = {str(entry["fingerprint"]): int(entry.get("count", 1))
                  for entry in data.get("entries", [])}
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(dict(_Counter(f.fingerprint for f in findings)))

    def save(self, path: Path) -> None:
        entries = [
            {"fingerprint": fingerprint, "count": count}
            for fingerprint, count in sorted(self.counts.items())
        ]
        payload = {"version": _FORMAT_VERSION, "entries": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    # -- subtraction ----------------------------------------------------

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], list[str]]:
        """Mark baselined findings; return (annotated findings, stale).

        Each baseline entry absorbs up to ``count`` matching findings.
        ``stale`` lists fingerprints the baseline tracks but the tree no
        longer produces — entries that should be deleted.
        """
        remaining = dict(self.counts)
        annotated: list[Finding] = []
        for finding in findings:
            left = remaining.get(finding.fingerprint, 0)
            if left > 0:
                remaining[finding.fingerprint] = left - 1
                finding = Finding(
                    rule=finding.rule, severity=finding.severity,
                    path=finding.path, line=finding.line, col=finding.col,
                    message=finding.message, source=finding.source,
                    suppressed=finding.suppressed,
                    suppress_reason=finding.suppress_reason,
                    baselined=True,
                )
            annotated.append(finding)
        stale = sorted(
            fingerprint for fingerprint, count in remaining.items() if count > 0
        )
        return annotated, stale
