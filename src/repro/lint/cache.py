"""Content-hash result cache for phase 2 of the lint engine.

A two-phase run still has to parse and scan every file (phase 1 is what
the cross-module rules exist for), but phase 2 — executing every rule
over every module — dominates the wall time. This cache memoizes phase-2
output per file, keyed by everything that can change it:

- the file's own bytes,
- the lint framework itself (a digest of the ``repro.lint`` package
  sources, so editing a rule invalidates every entry),
- the effective configuration (paths, disables, per-family scopes),
- the module's *graph slice* (:meth:`ProjectGraph.module_signature`) —
  the taints, resolved callees, and blocking chains phase 2 consults,
  so an edit two modules away that changes what this module's coroutine
  reaches invalidates this module's entry even though its bytes did not
  move.

The cache file lives next to the baseline (``.smite-lint-cache.json``)
and is safe to delete at any time; a missing or corrupt cache simply
means a cold run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lint.findings import Finding

__all__ = ["ResultCache", "ruleset_signature"]

_FORMAT_VERSION = 1

_RULESET_SIG: str | None = None


def ruleset_signature() -> str:
    """Digest of the lint framework's own sources (memoized per process)."""
    global _RULESET_SIG
    if _RULESET_SIG is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _RULESET_SIG = digest.hexdigest()
    return _RULESET_SIG


class ResultCache:
    """Per-file phase-2 findings, keyed by a combined content hash."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.path.is_file():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # corrupt cache == cold cache
        if data.get("version") != _FORMAT_VERSION:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    @staticmethod
    def key_for(source: str, config_sig: str, graph_sig: str) -> str:
        digest = hashlib.sha256()
        digest.update(source.encode("utf-8", errors="replace"))
        digest.update(b"\x00")
        digest.update(ruleset_signature().encode())
        digest.update(b"\x00")
        digest.update(config_sig.encode())
        digest.update(b"\x00")
        digest.update(graph_sig.encode())
        return digest.hexdigest()

    def get(self, relpath: str, key: str) -> list[Finding] | None:
        entry = self._entries.get(relpath)
        if entry is None or entry.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        try:
            return [Finding.from_dict(f) for f in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            self.hits -= 1
            return None

    def put(self, relpath: str, key: str,
            findings: list[Finding]) -> None:
        self._entries[relpath] = {
            "key": key,
            "findings": [f.to_dict() for f in findings],
        }
        self._dirty = True

    def prune(self, live_relpaths: set[str]) -> None:
        """Drop entries for files no longer part of the run."""
        dead = [p for p in self._entries if p not in live_relpaths]
        for path in dead:
            del self._entries[path]
            self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        payload = {"version": _FORMAT_VERSION, "entries": self._entries}
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n",
                encoding="utf-8")
        except OSError:
            pass  # a read-only tree just runs cold next time
        self._dirty = False
