"""Inline suppressions: ``# smite: noqa[RULE]`` comments.

A violation is silenced by annotating its *line* (or, for whole-module
findings such as ``__all__`` drift reported at line 0, the module's first
line) with::

    x = random.random()  # smite: noqa[SMT101]: seeded upstream by caller

The bracket takes one or more comma-separated rule ids, or ``*`` to
silence every rule on the line. Everything after the closing bracket's
optional ``:`` is the free-form *reason* — the convention (enforced in
review, not by the parser) is that every suppression carries one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Suppression", "parse_suppressions"]

_NOQA = re.compile(
    r"#\s*smite:\s*noqa\[(?P<rules>[A-Za-z0-9_*,\s]+)\]"
    r"(?:\s*:\s*(?P<reason>.*))?",
)


@dataclass(frozen=True)
class Suppression:
    """One parsed noqa comment."""

    line: int                  # 1-based line the comment sits on
    rules: frozenset[str]      # rule ids, or {"*"} for all
    reason: str

    def covers(self, rule: str) -> bool:
        return "*" in self.rules or rule in self.rules


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """All noqa comments in ``source``, keyed by 1-based line number.

    Parsing is lexical (a regex over each line), which deliberately also
    matches a noqa inside a string literal — the same trade every
    flake8-style tool makes; in exchange the parser cannot be confused
    by code the ast module refuses to parse.
    """
    found: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip() for part in match["rules"].split(",") if part.strip()
        )
        if not rules:
            continue
        found[lineno] = Suppression(
            line=lineno,
            rules=rules,
            reason=(match["reason"] or "").strip(),
        )
    return found
