"""Determinism rules (SMT1xx).

Characterization runs are only comparable — and Eq. 1-3 predictions only
trustworthy — if re-running a model produces bit-identical numbers.
These rules flag the three ways nondeterminism usually leaks into model
code: an unseeded random source, logic keyed to the wall clock, and
iteration over hash-ordered sets. They are scoped (via the
``determinism`` scope in the config) to the model packages; harness code
may legitimately look at the clock.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

__all__ = ["UnseededRandom", "WallClockLogic", "SetIterationOrder"]

#: Module-level ``random.*`` functions that draw from the global RNG.
_STDLIB_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "expovariate", "betavariate", "getrandbits", "randbytes",
})

#: Legacy ``numpy.random.*`` functions backed by the global, unseeded state.
_NUMPY_LEGACY_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "exponential", "beta",
    "standard_normal", "seed",
})

#: Dotted-name tails whose call reads the wall clock. ``time.perf_counter``
#: and ``time.monotonic`` are deliberately absent: measuring a duration is
#: fine, branching on the date is not.
_WALL_CLOCK_TAILS = frozenset({
    "time.time", "time.time_ns", "time.ctime", "time.localtime",
    "time.gmtime", "time.strftime", "datetime.now", "datetime.utcnow",
    "datetime.today", "date.today",
})


def _dotted(node: ast.AST) -> str:
    """The dotted name of a call target (``np.random.rand``), or ''."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expression(node: ast.AST) -> bool:
    """A set display or a ``set()``/``frozenset()`` call."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@register
class UnseededRandom(Rule):
    """Flag random draws whose seed the caller cannot control."""

    id = "SMT101"
    family = "determinism"
    severity = Severity.ERROR
    summary = ("unseeded random source (global `random`, legacy "
               "`numpy.random`, or `default_rng()` without a seed)")

    def visit_Call(self, node: ast.Call, ctx) -> None:
        name = _dotted(node.func)
        if not name:
            return
        head, _, tail = name.rpartition(".")
        if head == "random" and tail in _STDLIB_RANDOM_FNS:
            ctx.report(self, f"`{name}()` draws from the global stdlib RNG; "
                             "thread a seeded `random.Random(seed)` through "
                             "instead", node=node)
        elif name == "random.Random" and not node.args and not node.keywords:
            ctx.report(self, "`random.Random()` without a seed is "
                             "nondeterministic; pass an explicit seed",
                       node=node)
        elif head.endswith("random") and "." in head \
                and tail in _NUMPY_LEGACY_FNS:
            ctx.report(self, f"legacy `{name}()` uses numpy's global RNG "
                             "state; use `np.random.default_rng(seed)`",
                       node=node)
        elif tail == "default_rng" and not node.args and not node.keywords:
            ctx.report(self, "`default_rng()` without a seed gives a fresh "
                             "OS-entropy stream; pass the pipeline seed",
                       node=node)


@register
class WallClockLogic(Rule):
    """Flag model logic that reads the wall clock or calendar."""

    id = "SMT102"
    family = "determinism"
    severity = Severity.ERROR
    summary = ("wall-clock/calendar read (`time.time`, `datetime.now`, ...) "
               "in model code; `perf_counter` spans are exempt")

    def visit_Call(self, node: ast.Call, ctx) -> None:
        name = _dotted(node.func)
        if not name:
            return
        for tail in _WALL_CLOCK_TAILS:
            if name == tail or name.endswith("." + tail):
                ctx.report(self, f"`{name}()` makes model output depend on "
                                 "the wall clock; inject the timestamp or "
                                 "use a perf_counter span for durations",
                           node=node)
                return


@register
class SetIterationOrder(Rule):
    """Flag iteration whose order depends on hash randomization."""

    id = "SMT103"
    family = "determinism"
    severity = Severity.ERROR
    summary = ("iteration over a set (or list(set(...))) leaks hash order "
               "into results; sort first")

    _MESSAGE = ("iterating a set is hash-ordered (nondeterministic for "
                "str keys across runs); use sorted(...) or a dict/list")

    def visit_For(self, node: ast.For, ctx) -> None:
        if _is_set_expression(node.iter):
            ctx.report(self, self._MESSAGE, node=node.iter)

    def visit_comprehension(self, node: ast.comprehension, ctx) -> None:
        if _is_set_expression(node.iter):
            ctx.report(self, self._MESSAGE, node=node.iter)

    def visit_Call(self, node: ast.Call, ctx) -> None:
        # list(set(...)) / tuple(set(...)) / enumerate(set(...)): an
        # order-sensitive materialization. sorted(set(...)) is the fix.
        if not (isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple", "enumerate")):
            return
        if len(node.args) >= 1 and _is_set_expression(node.args[0]):
            ctx.report(self, f"`{node.func.id}(set(...))` materializes hash "
                             "order; use sorted(...)", node=node)
