"""Built-in rule families; importing this package registers them all.

===========  ==========  ===================================================
family       rules       checks
===========  ==========  ===================================================
determinism  SMT101-103  unseeded RNG, wall-clock logic, set-iteration order
metrics      SMT201-202  statically-resolvable, cataloged ``obs`` metric names
numeric      SMT301-302  float equality, unguarded division (Eq. 1-9 paths)
api          SMT401-403  exported-name docstrings and ``__all__`` drift
ports        SMT501-502  Ruler port purity and loop-branch purity budget
concurrency  SMT601-603  blocking reachable from coroutines, dropped
                         coroutine objects, implicit event loops
procsafety   SMT701-703  worker-state foldback, picklable submit targets,
                         resource close-on-all-paths
===========  ==========  ===================================================

The concurrency and procsafety families are *cross-module*: they read
the phase-1 project graph (``ctx.project``) instead of walking the AST
themselves.
"""

from repro.lint.rules import (api, concurrency, determinism, metrics,
                              numeric, ports, procsafety)

__all__ = ["api", "concurrency", "determinism", "metrics", "numeric",
           "ports", "procsafety"]
