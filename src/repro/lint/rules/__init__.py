"""Built-in rule families; importing this package registers them all.

======  ============  ========================================================
family  rules         checks
======  ============  ========================================================
determinism  SMT101-103  unseeded RNG, wall-clock logic, set-iteration order
metrics      SMT201-202  statically-resolvable, cataloged ``obs`` metric names
numeric      SMT301-302  float equality, unguarded division (Eq. 1-9 paths)
api          SMT401-403  exported-name docstrings and ``__all__`` drift
ports        SMT501-502  Ruler port purity and loop-branch purity budget
======  ============  ========================================================
"""

from repro.lint.rules import api, determinism, metrics, numeric, ports

__all__ = ["api", "determinism", "metrics", "numeric", "ports"]
