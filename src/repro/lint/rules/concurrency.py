"""Async-hygiene rules (SMT6xx).

The serving front-end (``repro.serve.api``) runs on one asyncio event
loop: a single blocking call anywhere in a coroutine's *transitive*
call tree stalls every in-flight request, which surfaces as a tail-
latency cliff rather than a crash. Per-file linting cannot see a
``time.sleep`` three helpers away, so these rules read the phase-1
project graph (``ctx.project``):

- **SMT601** walks every coroutine's resolved call edges and flags both
  direct blocking primitives in its body and call sites whose (sync)
  callee is blocking-reachable, printing the offending chain. Handing
  the work to ``loop.run_in_executor`` / ``asyncio.to_thread`` passes
  the function as a *value*, so no call edge exists and the taint
  breaks exactly where the fix goes.
- **SMT602** flags calls that resolve only to coroutine functions but
  are neither awaited, wrapped in an asyncio scheduling helper
  (``create_task``/``gather``/...), returned, nor bound to a name — the
  coroutine object is created and silently dropped, so the code never
  runs.
- **SMT603** flags ``asyncio.get_event_loop()``: deprecated, and
  implicitly *creates* a loop when called off-thread, which is how a
  second event loop ends up owning half the callbacks.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

__all__ = ["BlockingInCoroutine", "UnawaitedCoroutine", "EventLoopMisuse"]


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register
class BlockingInCoroutine(Rule):
    """Flag blocking work on the event loop, however many hops away."""

    id = "SMT601"
    family = "concurrency"
    severity = Severity.ERROR
    summary = ("blocking call (time.sleep, subprocess, socket/file IO) "
               "reachable from a coroutine without an executor hop")

    def check_module(self, ctx) -> None:
        if ctx.project is None:
            return
        graph = ctx.project.graph
        mod = graph.module_for(ctx.relpath)
        if mod is None:
            return
        for fn in mod.functions.values():
            if not fn.is_async:
                continue
            for lineno, col, raw in fn.blocking:
                ctx.report(
                    self,
                    f"blocking call `{raw}` in coroutine `{fn.local}` "
                    "stalls the event loop; hop through "
                    "`loop.run_in_executor(...)` or use an async "
                    "equivalent",
                    line=lineno, col=col,
                )
            for site in fn.calls:
                hit = next(
                    (c for c in site.callees
                     if c in graph.blocking_next
                     and not graph.functions[c].is_async),
                    None,
                )
                if hit is None:
                    continue
                chain = graph.blocking_chain(hit)
                ctx.report(
                    self,
                    f"coroutine `{fn.local}` reaches blocking work via "
                    f"`{site.raw}` ({chain}); hop through "
                    "`loop.run_in_executor(...)` before the sync call",
                    line=site.lineno, col=site.col,
                )


@register
class UnawaitedCoroutine(Rule):
    """Flag coroutine calls whose result object is silently dropped."""

    id = "SMT602"
    family = "concurrency"
    severity = Severity.ERROR
    summary = ("call to an async def is neither awaited, scheduled "
               "(create_task/gather/...), returned, nor bound — it "
               "never runs")

    def check_module(self, ctx) -> None:
        if ctx.project is None:
            return
        graph = ctx.project.graph
        mod = graph.module_for(ctx.relpath)
        if mod is None:
            return
        for fn in mod.functions.values():
            for site in fn.calls:
                if site.awaited or site.wrapped or site.returned \
                        or site.assigned:
                    continue
                targets = [graph.functions[c] for c in site.callees
                           if c in graph.functions]
                if not targets or not all(t.is_async for t in targets):
                    continue
                ctx.report(
                    self,
                    f"`{site.raw}(...)` creates a coroutine object and "
                    "drops it — the body never executes; await it or "
                    "schedule it with `asyncio.create_task(...)`",
                    line=site.lineno, col=site.col,
                )


@register
class EventLoopMisuse(Rule):
    """Flag the deprecated implicit-loop accessor."""

    id = "SMT603"
    family = "concurrency"
    severity = Severity.ERROR
    summary = ("`asyncio.get_event_loop()` is deprecated and may create "
               "a second loop; use get_running_loop() or asyncio.run()")

    def visit_Call(self, node: ast.Call, ctx) -> None:
        name = _dotted(node.func)
        if name != "asyncio.get_event_loop" and name != "get_event_loop":
            return
        ctx.report(
            self,
            "`asyncio.get_event_loop()` returns (or silently creates) "
            "a loop that may not be the running one; use "
            "`asyncio.get_running_loop()` inside coroutines and "
            "`asyncio.run(...)` at the top level",
            node=node,
        )
