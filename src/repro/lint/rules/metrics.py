"""Metric-catalog parity rules (SMT2xx).

``repro.obs.catalog`` is the single source of truth for every metric
name the codebase emits. The runtime docs-parity tests can only verify
the names a given test run happens to touch; this rule family proves
the property for the *whole tree* at review time: every
``counter``/``gauge``/``histogram``/``span`` recording site must use a
name the linter can resolve statically (SMT201), and that resolved name
must fall under a catalog entry (SMT202). f-strings are resolved
structurally — ``f"experiment.{eid}"`` satisfies the catalog pattern
``experiment.{id}`` — so dynamic *segments* are fine as long as the
catalog declares them.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.registry import Rule, register
from repro.obs.catalog import find_spec

__all__ = ["StaticMetricName", "CatalogedMetricName"]

#: Recording entry points -> the catalog kind their name argument uses.
_RECORDERS: dict[str, str] = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "span": "span",
    "time_histogram": "histogram",
    # Trace emission sites: markers and counter samples use names
    # cataloged under the dedicated "trace" kind.
    "instant": "trace",
    "counter_value": "trace",
    # Telemetry tracking registrations reuse the registry kinds.
    "track_counter": "counter",
    "track_gauge": "gauge",
    "track_percentile": "histogram",
    # Alert-rule factories; call sites that keep the default rule name
    # pass no name argument and are skipped.
    "burn_rate_rule": "alert",
    "drift_rule": "alert",
    "shed_rate_rule": "alert",
    "queue_saturation_rule": "alert",
}

#: Placeholder substituted for f-string interpolations when matching the
#: catalog's ``{placeholder}`` patterns.
_WILDCARD = "X"


def _recorder_kind(func: ast.AST) -> str | None:
    """The catalog kind if ``func`` is a metric recording entry point."""
    if isinstance(func, ast.Name):
        return _RECORDERS.get(func.id)
    if isinstance(func, ast.Attribute):
        return _RECORDERS.get(func.attr)
    return None


def _name_argument(node: ast.Call) -> ast.AST | None:
    if node.args:
        return node.args[0]
    for keyword in node.keywords:
        if keyword.arg in ("name", "path"):
            return keyword.value
    return None


def _resolve(arg: ast.AST) -> tuple[str | None, bool]:
    """(candidate name, had dynamic segments) or (None, _) if unresolvable.

    Constants resolve exactly. f-strings resolve to a candidate with each
    interpolation replaced by a wildcard token, provided the *static*
    skeleton is non-trivial (a purely dynamic name has no skeleton to
    check against the catalog).
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr):
        parts: list[str] = []
        static_text = ""
        for piece in arg.values:
            if isinstance(piece, ast.Constant) and isinstance(piece.value, str):
                parts.append(piece.value)
                static_text += piece.value
            elif isinstance(piece, ast.FormattedValue):
                parts.append(_WILDCARD)
            else:
                return None, True
        if not static_text:
            return None, True
        return "".join(parts), True
    return None, True


class _MetricRule(Rule):
    """Shared call-site scanning for the two parity rules."""

    def _inspect(self, node: ast.Call, ctx):
        kind = _recorder_kind(node.func)
        if kind is None:
            return None
        arg = _name_argument(node)
        if arg is None:
            return None
        name, dynamic = _resolve(arg)
        return kind, arg, name, dynamic


@register
class StaticMetricName(_MetricRule):
    """Metric names must be statically resolvable at the recording site."""

    id = "SMT201"
    family = "metrics"
    severity = Severity.ERROR
    summary = ("obs metric/span name is not statically resolvable "
               "(variable or fully-dynamic expression)")

    def visit_Call(self, node: ast.Call, ctx) -> None:
        inspected = self._inspect(node, ctx)
        if inspected is None:
            return
        kind, arg, name, _ = inspected
        if name is None:
            ctx.report(self, f"{kind} name {ast.unparse(arg)!r} cannot be "
                             "resolved statically; use a literal or an "
                             "f-string with a static skeleton", node=arg)


@register
class CatalogedMetricName(_MetricRule):
    """Every resolvable metric name must fall under a catalog entry."""

    id = "SMT202"
    family = "metrics"
    severity = Severity.ERROR
    summary = ("obs metric/span name is missing from repro.obs.catalog")

    def visit_Call(self, node: ast.Call, ctx) -> None:
        inspected = self._inspect(node, ctx)
        if inspected is None:
            return
        kind, arg, name, dynamic = inspected
        if name is None:
            return  # SMT201's finding
        if find_spec(kind, name) is None:
            shape = "f-string pattern" if dynamic else "name"
            ctx.report(self, f"{kind} {shape} {name!r} is not declared in "
                             "repro.obs.catalog; add a MetricSpec or delete "
                             "the recording", node=arg)
