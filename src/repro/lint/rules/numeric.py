"""Numerical-safety rules (SMT3xx), scoped to the Eq. 1-9 code paths.

The model's equations chain fixed-point iterations, utilization ratios,
and regression fits; a silent ZeroDivisionError or an exact float
comparison in those paths corrupts predictions rather than crashing
loudly. SMT301 flags exact ``==``/``!=`` against non-zero float values
(comparison against the literal ``0.0`` is the blessed *guard* idiom —
it is exactly how divisions are protected, so it is never flagged).
SMT302 flags divisions whose denominator is neither a non-zero constant
nor provably guarded in the enclosing scope.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

__all__ = ["FloatEquality", "UnguardedDivision"]


def _is_zero_constant(node: ast.AST) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)
            and float(node.value) == 0.0)


def _is_numeric_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


def _is_floatish(node: ast.AST) -> bool:
    """Expressions that are float-valued on their face."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return False


@register
class FloatEquality(Rule):
    """Exact equality between floats; use a tolerance instead."""

    id = "SMT301"
    family = "numeric"
    severity = Severity.ERROR
    summary = ("exact float ==/!= comparison (non-zero operand); use "
               "math.isclose or an epsilon")

    def visit_Compare(self, node: ast.Compare, ctx) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(_is_zero_constant(operand) for operand in operands):
            return  # zero-guards are the sanctioned division-guard idiom
        if any(_is_floatish(operand) for operand in operands):
            ctx.report(self, "exact float equality is brittle under "
                             "round-off; compare with math.isclose or an "
                             "explicit tolerance", node=node)


class _GuardIndex:
    """Expressions a scope tests against zero or for truthiness.

    A denominator ``d`` counts as guarded when the enclosing function
    (or the module, for top-level code) contains a comparison of ``d``
    against 0/0.0, or tests ``d`` (or ``not d``) as a condition — the
    early-return / ternary / ``and`` idioms all reduce to one of those.
    With ``include_validation`` (used for the class-level pass over
    dataclass ``__post_init__`` invariants), any expression compared
    inside a raising ``if`` also counts: ``if self.mu <= self.lam:
    raise`` is how frozen dataclasses reject degenerate parameters.
    """

    def __init__(self, scope: ast.AST, *,
                 include_validation: bool = False) -> None:
        self.guarded: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Compare):
                # Comparing an expression against any numeric threshold
                # (`if x < 2: raise`, `if apki == 0.0: return`) is the
                # range-check idiom; the compared expression is guarded.
                operands = [node.left, *node.comparators]
                if any(_is_numeric_constant(operand)
                       for operand in operands):
                    for operand in operands:
                        if not _is_numeric_constant(operand):
                            self.guarded.add(ast.unparse(operand))
            elif isinstance(node, (ast.If, ast.While, ast.IfExp, ast.Assert)):
                self._add_truth(node.test)
                if (include_validation and isinstance(node, ast.If)
                        and any(isinstance(stmt, ast.Raise)
                                for stmt in node.body)):
                    for compare in ast.walk(node.test):
                        if isinstance(compare, ast.Compare):
                            for operand in [compare.left,
                                            *compare.comparators]:
                                if not isinstance(operand, ast.Constant):
                                    self.guarded.add(ast.unparse(operand))
            elif isinstance(node, ast.BoolOp):
                for value in node.values:
                    self._add_truth(value)
            elif isinstance(node, ast.comprehension):
                for condition in node.ifs:
                    self._add_truth(condition)

    def _add_truth(self, test: ast.AST) -> None:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test = test.operand
        if isinstance(test, (ast.Name, ast.Attribute, ast.Call,
                             ast.Subscript)):
            self.guarded.add(ast.unparse(test))

    def covers(self, denominator: ast.AST) -> bool:
        text = ast.unparse(denominator)
        if text in self.guarded:
            return True
        # len(x) is positive iff x is truthy; accept a guard on either.
        if (isinstance(denominator, ast.Call)
                and isinstance(denominator.func, ast.Name)
                and denominator.func.id == "len"
                and len(denominator.args) == 1
                and ast.unparse(denominator.args[0]) in self.guarded):
            return True
        # A product is non-zero when every factor is guarded non-zero.
        if (isinstance(denominator, ast.BinOp)
                and isinstance(denominator.op, ast.Mult)):
            return all(
                _statically_nonzero(side) or self.covers(side)
                for side in (denominator.left, denominator.right)
            )
        return False


def _statically_nonzero(node: ast.AST) -> bool:
    """Denominators that cannot be zero on their face.

    Non-zero constants (and their products), ``max(...)`` /
    ``np.maximum(...)`` floors, and sums that add a positive constant are
    accepted; everything else must be guarded in the enclosing scope.
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and node.value != 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _statically_nonzero(node.operand)
    if isinstance(node, ast.Call):
        if (isinstance(node.func, ast.Name) and node.func.id == "max"
                and len(node.args) >= 2):
            return True
        # np.maximum(x, floor): the vectorized max-floor idiom.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "maximum" and len(node.args) >= 2):
            return True
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Mult):
            return (_statically_nonzero(node.left)
                    and _statically_nonzero(node.right))
        if isinstance(node.op, ast.Add):
            for side in (node.left, node.right):
                if (isinstance(side, ast.Constant)
                        and isinstance(side.value, (int, float))
                        and side.value > 0):
                    return True
        if isinstance(node.op, ast.Pow):
            return _statically_nonzero(node.left)
    return False


def _is_path_join(node: ast.BinOp) -> bool:
    """``/`` chains with a string operand are pathlib joins, not division."""
    def string_operand(operand: ast.AST) -> bool:
        return (isinstance(operand, ast.JoinedStr)
                or (isinstance(operand, ast.Constant)
                    and isinstance(operand.value, str)))

    current: ast.AST = node
    while isinstance(current, ast.BinOp) and isinstance(current.op, ast.Div):
        if string_operand(current.right) or string_operand(current.left):
            return True
        current = current.left
    return string_operand(current)


@register
class UnguardedDivision(Rule):
    """Divisions whose denominator could be zero without a visible guard."""

    id = "SMT302"
    family = "numeric"
    severity = Severity.ERROR
    summary = ("division by an expression with no zero-guard in the "
               "enclosing scope")

    def __init__(self) -> None:
        # One guard index per (scope, mode) per module (rules per-module).
        self._indexes: dict[tuple[int, bool], _GuardIndex] = {}

    def _index_for(self, scope: ast.AST, *,
                   include_validation: bool = False) -> _GuardIndex:
        key = (id(scope), include_validation)
        index = self._indexes.get(key)
        if index is None:
            index = self._indexes[key] = _GuardIndex(
                scope, include_validation=include_validation)
        return index

    def visit_BinOp(self, node: ast.BinOp, ctx) -> None:
        if not isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            return
        if isinstance(node.op, ast.Div) and _is_path_join(node):
            return  # pathlib's `/` operator, not arithmetic
        denominator = node.right
        if _statically_nonzero(denominator):
            return
        if _is_zero_constant(denominator):
            ctx.report(self, "division by the constant zero", node=node)
            return
        scope = ctx.enclosing_function(node) or ctx.tree
        if self._index_for(scope).covers(denominator):
            return
        # Fields of `self` may be validated once, in the class's
        # __post_init__/__init__ invariants, rather than per method.
        if "self." in ast.unparse(denominator):
            class_scope = self._enclosing_class(node, ctx)
            if class_scope is not None and self._index_for(
                    class_scope, include_validation=True
                    ).covers(denominator):
                return
        ctx.report(self, f"denominator `{ast.unparse(denominator)}` has no "
                         "zero-guard in the enclosing scope; add an early "
                         "return/raise or a max(..., eps) floor", node=node)

    @staticmethod
    def _enclosing_class(node: ast.AST, ctx) -> ast.ClassDef | None:
        current = ctx.parent_map.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = ctx.parent_map.get(current)
        return None
