"""Process/thread-safety rules (SMT7xx).

The shard fan-out (``repro.serve.shard``, ``run_api_shards``) forks
worker processes whose memory is invisible to the parent: metric
increments, module-global updates, and half-closed pipes don't crash —
they silently drop data. These rules check the three contracts the
sharded runtime depends on:

- **SMT701** uses the phase-1 worker taint: any function reachable from
  a ``ProcessPoolExecutor.submit`` / ``multiprocessing.Process`` target
  that records obs metrics or mutates a module global is flagged unless
  that worker entrypoint folds its state back (calls
  ``obs.snapshot``/``obs.merge``/``obs.reset`` somewhere in its
  reachable set — the snapshot/merge protocol PR 2 shipped).
- **SMT702** flags executor submit targets that cannot cross the pickle
  boundary: lambdas, and nested functions (closures capture their
  enclosing frame, which does not pickle).
- **SMT703** flags process/socket resources created without a lifecycle
  guarantee: not in a ``with`` block, not stored on ``self`` of a class
  that defines a closer (``close``/``shutdown``/``__exit__``/...), and
  not closed inside a ``finally`` block in the creating function. Bare
  ``Pipe()`` ends and executors leak file descriptors per request — at
  serving QPS that is an outage, not a leak.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.graph import _CLOSER_NAMES
from repro.lint.registry import Rule, register

__all__ = ["WorkerStateLoss", "UnpicklableSubmit", "ResourceLifecycle"]


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _local_name(graph, qualname: str) -> str:
    fn = graph.functions.get(qualname)
    return fn.local if fn is not None else qualname


@register
class WorkerStateLoss(Rule):
    """Flag worker-side state mutation that never reaches the parent."""

    id = "SMT701"
    family = "procsafety"
    severity = Severity.ERROR
    summary = ("obs-metric or module-global mutation inside a shard "
               "worker without snapshot/merge foldback to the parent")

    def check_module(self, ctx) -> None:
        if ctx.project is None:
            return
        graph = ctx.project.graph
        mod = graph.module_for(ctx.relpath)
        if mod is None:
            return
        for fn in mod.functions.values():
            roots = graph.worker_taint.get(fn.qualname)
            if not roots:
                continue
            bad = sorted(r for r in roots
                         if not graph.root_folds_back(r))
            if not bad:
                continue
            worker = _local_name(graph, bad[0])
            for lineno, col, leaf in fn.obs_mutations:
                ctx.report(
                    self,
                    f"obs recorder `{leaf}` runs inside worker "
                    f"`{worker}`, whose metrics die with the process; "
                    "return `obs.snapshot()` from the worker and "
                    "`obs.merge(...)` it in the parent",
                    line=lineno, col=col,
                )
            for lineno, col, name, how in fn.global_mutations:
                ctx.report(
                    self,
                    f"module-global `{name}` mutated ({how}) inside "
                    f"worker `{worker}`; the write is invisible to the "
                    "parent process — return the data and fold it back",
                    line=lineno, col=col,
                )


@register
class UnpicklableSubmit(Rule):
    """Flag submit targets that cannot cross the pickle boundary."""

    id = "SMT702"
    family = "procsafety"
    severity = Severity.ERROR
    summary = ("lambda or closure (nested function) passed to a process "
               "executor submit/map — it cannot pickle")

    def check_module(self, ctx) -> None:
        if ctx.project is None:
            return
        graph = ctx.project.graph
        mod = graph.module_for(ctx.relpath)
        if mod is None:
            return
        for fn in mod.functions.values():
            for lineno, col, api, kind, name in fn.submits:
                if kind == "lambda":
                    ctx.report(
                        self,
                        f"lambda passed to `{api}` cannot pickle into "
                        "the worker process; move the body to a "
                        "module-level function",
                        line=lineno, col=col,
                    )
                    continue
                if kind != "name":
                    continue
                for target in graph.resolve_call(fn, name):
                    callee = graph.functions.get(target)
                    if callee is not None and callee.is_nested:
                        ctx.report(
                            self,
                            f"`{name}` is a nested function; its "
                            "closure does not pickle into the "
                            f"`{api}` worker — hoist it to module "
                            "level and pass captured state as "
                            "arguments",
                            line=lineno, col=col,
                        )
                        break


#: Constructors whose return value owns an OS resource the creator must
#: release. Matched on the import-expanded dotted name (or bare
#: executor class name, however it was imported).
_RESOURCE_CTORS = frozenset({
    "socket.socket", "socket.create_connection",
    "multiprocessing.Pipe",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
})
_RESOURCE_TAILS = frozenset({
    "ProcessPoolExecutor", "ThreadPoolExecutor",
})


@register
class ResourceLifecycle(Rule):
    """Flag resources with no close guarantee on every path."""

    id = "SMT703"
    family = "procsafety"
    severity = Severity.ERROR
    summary = ("executor/socket/pipe created without `with`, a closing "
               "`finally`, or a self-attribute on a class with a closer")

    def check_module(self, ctx) -> None:
        mod = None
        if ctx.project is not None:
            mod = ctx.project.graph.module_for(ctx.relpath)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            raw = _dotted(node.func)
            if not raw:
                continue
            expanded = mod.expand(raw) if mod is not None else raw
            if expanded not in _RESOURCE_CTORS \
                    and expanded.rpartition(".")[2] not in _RESOURCE_TAILS:
                continue
            self._check_site(ctx, node, expanded)

    def _check_site(self, ctx, node: ast.Call, ctor: str) -> None:
        parent = ctx.parent_map.get(node)
        if isinstance(parent, (ast.withitem, ast.Return, ast.Call,
                               ast.Await)):
            # `with` manages it; returning or passing it hands
            # ownership to the caller.
            return
        if not isinstance(parent, (ast.Assign, ast.AnnAssign)):
            ctx.report(
                self,
                f"`{ctor}(...)` result is dropped without being closed; "
                "bind it in a `with` block",
                node=node,
            )
            return
        targets = parent.targets if isinstance(parent, ast.Assign) \
            else [parent.target]
        names: list[str] = []
        for target in targets:
            elements = target.elts if isinstance(target, ast.Tuple) \
                else [target]
            for element in elements:
                if isinstance(element, ast.Name):
                    names.append(element.id)
                elif isinstance(element, ast.Attribute) \
                        and isinstance(element.value, ast.Name) \
                        and element.value.id == "self":
                    if not self._class_has_closer(ctx, node):
                        ctx.report(
                            self,
                            f"`self.{element.attr}` holds a `{ctor}` "
                            "but the class defines no closer "
                            "(`close`/`shutdown`/`__exit__`/...)",
                            node=node,
                        )
        if not names:
            return
        scope = ctx.enclosing_function(node) or ctx.tree
        for name in names:
            if not self._closed_in_finally(scope, name):
                ctx.report(
                    self,
                    f"`{name}` (a `{ctor}`) is not closed in a "
                    "`finally` block; an exception on any path leaks "
                    "the descriptor — use `with` or try/finally",
                    node=node,
                )

    def _class_has_closer(self, ctx, node: ast.AST) -> bool:
        current = ctx.parent_map.get(node)
        while current is not None and not isinstance(current, ast.ClassDef):
            current = ctx.parent_map.get(current)
        if current is None:
            return False
        return any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in _CLOSER_NAMES
            for stmt in current.body
        )

    @staticmethod
    def _closed_in_finally(scope: ast.AST, name: str) -> bool:
        for candidate in ast.walk(scope):
            if not isinstance(candidate, ast.Try) \
                    or not candidate.finalbody:
                continue
            for stmt in candidate.finalbody:
                for sub in ast.walk(stmt):
                    if (isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in _CLOSER_NAMES
                            and isinstance(sub.func.value, ast.Name)
                            and sub.func.value.id == name):
                        return True
        return False
