"""Ruler port-purity rules (SMT5xx) — the domain-specific family.

SMiTe's functional-unit Rulers are only *precise* if each stressor
saturates exactly one execution port (Figure 1 / Table 1: FP_MUL on
port 0, FP_ADD on port 1, FP_SHF on port 5, INT_ADD spread over
0/1/5). A kernel that leaks even one uop kind onto a second port stops
isolating its sharing dimension, and every sensitivity curve measured
with it becomes a blend.

This rule triggers on any linted module that defines ``FU_LISTINGS``
(a mapping of functional-unit :class:`~repro.rulers.base.Dimension` to
an assembly listing). It loads the module, walks each listing through
the real ISA layer — :func:`repro.isa.asmtext.parse_asm` for the
kernel, :data:`repro.isa.opcodes.PORT_BINDINGS` for the port map — and
verifies:

- **SMT501 (port purity)**: every uop in the kernel body binds only to
  the dimension's allowed port set; and
- **SMT502 (branch purity)**: the loop back-edge stays under the
  paper's 0.01% branch-fraction budget at the module's unroll factor.
"""

from __future__ import annotations

import ast
import importlib.util
import sys
from typing import Any, Mapping

from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

__all__ = ["PortPurity", "BranchPurityBudget", "load_fu_listings",
           "BRANCH_FRACTION_BUDGET"]

#: The paper's loop-branch purity budget: >99.99% of the dynamic stream
#: must be the port-specific instruction (Section III-B1).
BRANCH_FRACTION_BUDGET = 1e-4

_TRIGGER = "FU_LISTINGS"


def _listings_assignment(tree: ast.Module) -> int:
    """Line of the module-level ``FU_LISTINGS`` assignment, or 0."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == _TRIGGER:
                return node.lineno
    return 0


def load_fu_listings(path) -> Mapping[Any, str]:
    """Import the module at ``path`` and return its ``FU_LISTINGS``.

    The module is imported under a synthetic name so linting a fixture
    copy never shadows the real :mod:`repro.rulers.functional_unit`.
    """
    module_name = f"_smite_lint_fu_{abs(hash(str(path)))}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
        return getattr(module, _TRIGGER)
    finally:
        sys.modules.pop(module_name, None)


def _allowed_ports(dimension: Any) -> tuple[int, ...] | None:
    """The port set a functional-unit dimension may occupy, else None."""
    from repro.isa.opcodes import FUNCTIONAL_UNIT_PORTS

    target = getattr(dimension, "target_port", None)
    if target is not None:
        return (target,)
    if getattr(dimension, "is_functional_unit", False):
        return FUNCTIONAL_UNIT_PORTS  # INT_ADD: any of ports 0/1/5
    return None


class _ListingRule(Rule):
    """Shared FU_LISTINGS discovery/loading for the two purity rules."""

    def _kernels(self, ctx):
        """Yield (dimension, allowed ports, kernel) per FU listing."""
        line = _listings_assignment(ctx.tree)
        if line == 0:
            return
        from repro.isa.asmtext import parse_asm

        try:
            listings = load_fu_listings(ctx.path)
        except Exception as exc:  # noqa: BLE001 - any import failure is one
            ctx.report(self, f"module defines {_TRIGGER} but could not be "
                             f"loaded for kernel verification: {exc}",
                       line=line)
            return
        self._line = line
        for dimension, listing in listings.items():
            allowed = _allowed_ports(dimension)
            if allowed is None:
                ctx.report(self, f"{_TRIGGER} key {dimension!r} is not a "
                                 "functional-unit dimension", line=line)
                continue
            name = getattr(dimension, "value", str(dimension))
            try:
                kernel = parse_asm(listing, name=f"lint-{name}")
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                ctx.report(self, f"listing for {name} does not parse: "
                                 f"{exc}", line=line)
                continue
            yield dimension, allowed, kernel


@register
class PortPurity(_ListingRule):
    """Each FU Ruler's uop mix must stay on its one allowed port (set)."""

    id = "SMT501"
    family = "ports"
    severity = Severity.ERROR
    summary = ("functional-unit Ruler kernel leaks uops onto a port "
               "outside its dimension's Table-1 binding")

    def check_module(self, ctx) -> None:
        from repro.isa.opcodes import PORT_BINDINGS, UopKind

        for dimension, allowed, kernel in self._kernels(ctx):
            name = getattr(dimension, "value", str(dimension))
            occupied: set[int] = set()
            for instruction in kernel.body:
                kind = instruction.kind
                if kind is UopKind.NOP:
                    continue  # a NOP occupies no execution port
                ports = set(PORT_BINDINGS[kind])
                occupied |= ports
                leaked = ports - set(allowed)
                if leaked:
                    ctx.report(
                        self,
                        f"Ruler for {name} leaks onto port(s) "
                        f"{sorted(leaked)}: {kind.name} binds to "
                        f"{sorted(ports)} but the dimension allows only "
                        f"{sorted(allowed)}", line=self._line)
            if not occupied:
                ctx.report(self, f"Ruler for {name} occupies no execution "
                                 "port; the kernel stresses nothing",
                           line=self._line)


@register
class BranchPurityBudget(_ListingRule):
    """The loop branch must stay under the 0.01% dynamic-stream budget."""

    id = "SMT502"
    family = "ports"
    severity = Severity.ERROR
    summary = ("FU Ruler's loop-branch fraction exceeds the paper's "
               "0.01% purity budget at the module's unroll factor")

    def check_module(self, ctx) -> None:
        for dimension, _, kernel in self._kernels(ctx):
            name = getattr(dimension, "value", str(dimension))
            module_unroll = self._module_unroll(ctx)
            sized = kernel.with_unroll(module_unroll) \
                if module_unroll else kernel
            fraction = 1.0 / sized.instructions_per_iteration
            if fraction > BRANCH_FRACTION_BUDGET:
                ctx.report(
                    self,
                    f"Ruler for {name}: loop-branch fraction "
                    f"{fraction:.2%} exceeds the "
                    f"{BRANCH_FRACTION_BUDGET:.2%} purity budget "
                    f"(body {len(kernel.body)} x unroll {sized.unroll}); "
                    "raise UNROLL", line=self._line)

    @staticmethod
    def _module_unroll(ctx) -> int:
        """The module's UNROLL constant, read statically (0 if absent)."""
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id == "UNROLL"
                            and isinstance(node.value, ast.Constant)
                            and isinstance(node.value.value, int)):
                        return node.value.value
        return 0
