"""Public-API hygiene rules (SMT4xx).

Every package in the tree exports through ``__all__``; these rules keep
that contract real: an exported def/class must carry a docstring
(SMT401), ``__all__`` must not name things the module does not define
(SMT402), and a public top-level def/class must not silently bypass a
declared ``__all__`` (SMT403, advisory).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.registry import Rule, register

__all__ = ["ExportedDocstrings", "DunderAllDrift", "UndeclaredPublicName"]


def _declared_all(tree: ast.Module) -> tuple[list[str] | None, int]:
    """(names in ``__all__``, its line); (None, 0) when absent/dynamic."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)) and all(
                        isinstance(el, ast.Constant)
                        and isinstance(el.value, str)
                        for el in value.elts):
                    names = [el.value for el in value.elts]
                    return names, node.lineno
                return None, node.lineno
    return None, 0


def _module_bindings(tree: ast.Module) -> set[str]:
    """Names bound at module top level: defs, classes, assigns, imports."""
    bound: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                bound.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign):
            bound.update(_target_names(node.target))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name.split(".")[0]
                bound.add(name)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING / try-import blocks still bind names.
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    bound.add(child.name)
                elif isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        if alias.name != "*":
                            bound.add(alias.asname
                                      or alias.name.split(".")[0])
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        bound.update(_target_names(target))
    return bound


def _target_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for el in target.elts:
            names.update(_target_names(el))
        return names
    return set()


@register
class ExportedDocstrings(Rule):
    """Defs and classes listed in ``__all__`` must have docstrings."""

    id = "SMT401"
    family = "api"
    severity = Severity.ERROR
    summary = "exported def/class (listed in __all__) has no docstring"

    def check_module(self, ctx) -> None:
        exported, _ = _declared_all(ctx.tree)
        if not exported:
            return
        names = set(exported)
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if node.name in names and ast.get_docstring(node) is None:
                kind = "class" if isinstance(node, ast.ClassDef) \
                    else "function"
                ctx.report(self, f"exported {kind} `{node.name}` has no "
                                 "docstring", node=node)


@register
class DunderAllDrift(Rule):
    """``__all__`` must only name things the module actually binds."""

    id = "SMT402"
    family = "api"
    severity = Severity.ERROR
    summary = "__all__ names an undefined symbol (or is not a static list)"

    def check_module(self, ctx) -> None:
        exported, line = _declared_all(ctx.tree)
        if line == 0:
            return
        if exported is None:
            ctx.report(self, "__all__ is not a static list of string "
                             "literals; the export surface cannot be "
                             "verified", line=line)
            return
        bound = _module_bindings(ctx.tree)
        for name in exported:
            if name not in bound:
                ctx.report(self, f"__all__ exports `{name}`, which the "
                                 "module never defines or imports",
                           line=line)
        seen: set[str] = set()
        for name in exported:
            if name in seen:
                ctx.report(self, f"__all__ lists `{name}` twice", line=line)
            seen.add(name)


@register
class UndeclaredPublicName(Rule):
    """Public top-level defs should appear in a declared ``__all__``."""

    id = "SMT403"
    family = "api"
    severity = Severity.INFO  # advisory: private-by-convention is legal
    summary = "public top-level def/class missing from the module's __all__"

    def check_module(self, ctx) -> None:
        exported, line = _declared_all(ctx.tree)
        if exported is None:
            return
        names = set(exported)
        for node in ctx.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                continue
            if not node.name.startswith("_") and node.name not in names:
                ctx.report(self, f"public `{node.name}` is not in __all__; "
                                 "export it or rename with a leading "
                                 "underscore", node=node)
