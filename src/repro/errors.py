"""Exception hierarchy for the SMiTe reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
type at API boundaries while still distinguishing failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A machine, workload, or model parameter is invalid."""


class ConvergenceError(ReproError):
    """The fixed-point co-run solver failed to converge."""


class AsmSyntaxError(ReproError):
    """An assembly-text ruler listing could not be parsed."""


class UnknownWorkloadError(ReproError, KeyError):
    """A workload name was not found in the registry."""


class CharacterizationError(ReproError):
    """Sensitivity/contentiousness characterization failed."""


class ModelNotFittedError(ReproError):
    """A prediction model was used before ``fit`` was called."""


class ValidationError(ReproError):
    """A Ruler failed its purity/linearity validation criteria."""


class QueueingError(ReproError):
    """A queueing model was configured with an unstable or invalid load."""


class SchedulingError(ReproError):
    """The cluster scheduler was driven into an invalid state."""
