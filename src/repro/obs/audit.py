"""Per-decision prediction-accuracy audit: predicted vs realized QoS.

SMiTe's claim is *precise* degradation prediction; this module keeps the
books on how precise a live run actually was. The serving engine feeds
one comparison per colocated server per fleet refresh — the degradation
the :class:`~repro.serve.service.PredictionService` predicted for that
(latency app, batch profile, instance count) against the
``OnlineServer.actual_degradation`` the simulator just measured — and
:class:`PredictionAudit` rolls the residuals up three ways:

- **registry metrics** (``serve.audit.samples``,
  ``serve.audit.abs_residual``) so residual distributions merge across
  workers like any other metric;
- **attribution tables**: signed/absolute residual statistics per
  service pool and per (pool, batch profile) pair, exported in the run
  report's ``audit`` section;
- a **windowed drift signal**: :meth:`PredictionAudit.close_window`
  drains the residuals accrued since the last SLO-window close, which
  :class:`~repro.serve.slo.WindowedSlo` folds into its accounting and
  publishes as the ``serve.audit.drift`` gauge.

Residuals are signed as ``predicted - actual``: a positive bias means
the predictor is conservative (over-predicts degradation), a negative
bias means it admits placements it should not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs.registry import counter, histogram

__all__ = ["PredictionAudit", "ResidualStats"]

#: Separator joining (pool, batch profile) into one JSON-able pair key.
PAIR_SEP = "|"


@dataclass
class ResidualStats:
    """A mergeable accumulator of signed prediction residuals."""

    count: int = 0
    sum_signed: float = 0.0
    sum_abs: float = 0.0
    max_abs: float = 0.0

    def add(self, residual: float, count: int = 1) -> None:
        """Fold in ``count`` identical residual observations at once."""
        self.count += count
        self.sum_signed += residual * count
        self.sum_abs += abs(residual) * count
        self.max_abs = max(self.max_abs, abs(residual))

    @property
    def mean_abs(self) -> float:
        """Mean absolute residual (0 when empty)."""
        return self.sum_abs / self.count if self.count else 0.0

    @property
    def mean_signed(self) -> float:
        """Mean signed residual — the calibration bias (0 when empty)."""
        return self.sum_signed / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, JSON-able copy."""
        return {
            "count": self.count,
            "sum_signed": self.sum_signed,
            "sum_abs": self.sum_abs,
            "max_abs": self.max_abs,
            "mean_abs": self.mean_abs,
            "mean_signed": self.mean_signed,
        }

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold another accumulator's snapshot into this one."""
        self.count += int(snap["count"])
        self.sum_signed += float(snap["sum_signed"])
        self.sum_abs += float(snap["sum_abs"])
        self.max_abs = max(self.max_abs, float(snap["max_abs"]))


class PredictionAudit:
    """Rolls per-decision residuals into pool/pair attribution tables."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.overall = ResidualStats()
        self.pools: dict[str, ResidualStats] = {}
        self.pairs: dict[str, ResidualStats] = {}
        self._window = ResidualStats()

    @property
    def samples(self) -> int:
        """Comparisons recorded so far."""
        return self.overall.count

    def record(
        self,
        pool: str,
        batch_profile: str,
        *,
        predicted: float,
        actual: float,
        count: int = 1,
    ) -> None:
        """Record a predicted-vs-realized comparison.

        ``count`` records the comparison for that many identical
        placements in one update — the engine audits per group of
        same-(pool, profile, instances) servers, not per server.
        """
        if count < 1:
            return
        residual = float(predicted) - float(actual)
        counter("serve.audit.samples").inc(count)
        histogram("serve.audit.abs_residual").record(abs(residual), count)
        pair = f"{pool}{PAIR_SEP}{batch_profile}"
        with self._lock:
            self.overall.add(residual, count)
            self.pools.setdefault(pool, ResidualStats()).add(residual, count)
            self.pairs.setdefault(pair, ResidualStats()).add(residual, count)
            self._window.add(residual, count)

    def close_window(self) -> float:
        """Drain the window accumulator; returns its mean absolute residual.

        Called by :class:`~repro.serve.slo.WindowedSlo` at each window
        close; the returned value is that window's calibration drift.
        """
        with self._lock:
            drift = self._window.mean_abs
            self._window = ResidualStats()
            return drift

    # -- aggregation ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The audit section of a run report: JSON-able and mergeable.

        The ``window`` entry carries the still-open drift window so a
        worker snapshot folded back mid-window contributes to the
        parent's next :meth:`close_window` — without it, shard residuals
        would count toward attribution but vanish from the drift signal.
        """
        with self._lock:
            return {
                "samples": self.overall.count,
                "overall": self.overall.snapshot(),
                "window": self._window.snapshot(),
                "pools": {name: stats.snapshot()
                          for name, stats in sorted(self.pools.items())},
                "pairs": {name: stats.snapshot()
                          for name, stats in sorted(self.pairs.items())},
            }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this audit.

        Tolerates partial snapshots: any absent table (including
        ``overall`` and the pre-PR-9 snapshots without a ``window``
        entry) merges as empty rather than raising.
        """
        with self._lock:
            if "overall" in snap:
                self.overall.merge_snapshot(snap["overall"])
            if "window" in snap:
                self._window.merge_snapshot(snap["window"])
            for table, own in (("pools", self.pools), ("pairs", self.pairs)):
                for name, stats_snap in snap.get(table, {}).items():
                    own.setdefault(name, ResidualStats()).merge_snapshot(
                        stats_snap
                    )
