"""Opt-in structured tracing: a bounded event ring, exported as Chrome JSON.

Metrics (:mod:`repro.obs.registry`) answer *how much*; a trace answers
*when*. When tracing is installed, :func:`~repro.obs.spans.span` and
:func:`~repro.obs.spans.time_histogram` emit begin/end events, the
serving engine drops decision markers and counter instants on the
*simulated* event clock, and the whole stream lands in one bounded ring
buffer (:class:`Tracer`). The buffer is exported in the Chrome
trace-event format — ``chrome://tracing`` and Perfetto load the file
directly — with two tracks: ``wall-clock`` (``perf_counter`` time) and
``simulated-clock`` (the serve runtime's event time).

Tracing is off by default and must cost ~nothing when off: every
emission site performs one module-global read and a ``None`` check
before doing any work. The ring is bounded (``SMITE_TRACE_LIMIT``,
default 200k events); once full, the oldest events are dropped and the
drop count is recorded in the export's ``otherData`` so a truncated
trace is never mistaken for a complete one.

Enable it with ``--trace-out PATH`` on ``repro.cli serve`` or the
experiment runner, or by setting ``SMITE_TRACE_OUT=PATH`` for any entry
point that calls :func:`maybe_install_env_tracer` /
:func:`maybe_write_env_trace` (the CLI, the runner, and the benchmark
harness all do).

Every event name must resolve against :mod:`repro.obs.catalog` — span
events use span leaves, counter instants use counter names, and marker
names are cataloged under the dedicated ``trace`` kind — so the lint
catalog-parity family (SMT201/SMT202) covers trace emission sites too.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

__all__ = [
    "DEFAULT_CAPACITY",
    "ENV_TRACE_LIMIT",
    "ENV_TRACE_OUT",
    "TraceEvent",
    "Tracer",
    "active",
    "counter_value",
    "env_trace_capacity",
    "env_trace_path",
    "install",
    "instant",
    "is_active",
    "maybe_install_env_tracer",
    "maybe_write_env_trace",
    "render_trace_summary",
    "top_events",
    "tracing",
    "uninstall",
    "write_chrome_trace",
]

ENV_TRACE_OUT = "SMITE_TRACE_OUT"
ENV_TRACE_LIMIT = "SMITE_TRACE_LIMIT"

#: Ring capacity when neither the caller nor ``SMITE_TRACE_LIMIT`` says
#: otherwise. 200k events is ~2 simulated days of serve markers and a
#: few tens of MB of JSON — big enough to be useful, small enough that
#: an always-on tracer cannot exhaust memory.
DEFAULT_CAPACITY = 200_000

#: Chrome trace ``pid`` values; each pid renders as one named track.
WALL_TRACK = 1
SIM_TRACK = 2

_TRACK_NAMES = {WALL_TRACK: "wall-clock", SIM_TRACK: "simulated-clock"}


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace event in Chrome trace-event terms.

    ``ph`` is the Chrome phase: ``B``/``E`` bracket a span, ``i`` is an
    instant marker, ``C`` a counter sample. ``ts_us`` is microseconds on
    the event's track clock (wall time since tracer install for
    :data:`WALL_TRACK`, simulated seconds for :data:`SIM_TRACK`).
    """

    name: str
    ph: str
    ts_us: float
    tid: int
    pid: int = WALL_TRACK
    args: Mapping[str, Any] = field(default_factory=dict)

    def as_chrome(self) -> dict[str, Any]:
        """Render as one Chrome trace-event dict."""
        event: dict[str, Any] = {
            "name": self.name,
            "ph": self.ph,
            "ts": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
            "cat": "smite",
        }
        if self.ph == "i":
            event["s"] = "t"  # thread-scoped instant
        if self.args:
            event["args"] = dict(self.args)
        return event


class Tracer:
    """A bounded, thread-safe ring buffer of trace events.

    The hot emission path stores bare ``(name, ph, ts_us, pid, tid,
    args)`` tuples — building a :class:`TraceEvent` per emission costs
    more than the ring append itself, so objects are only materialized
    when :meth:`events` is read.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.emitted = 0
        self._ring: deque[tuple] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()

    # -- emission ------------------------------------------------------

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _push(self, record: tuple) -> None:
        with self._lock:
            self.emitted += 1
            self._ring.append(record)

    def begin(self, name: str, args: Mapping[str, Any] | None = None) -> None:
        """Open a wall-clock span (Chrome ``B`` phase)."""
        self._push((name, "B", self._now_us(), WALL_TRACK,
                    threading.get_ident(), args))

    def end(self, name: str, args: Mapping[str, Any] | None = None) -> None:
        """Close the innermost wall-clock span of ``name`` (``E`` phase)."""
        self._push((name, "E", self._now_us(), WALL_TRACK,
                    threading.get_ident(), args))

    def instant(
        self,
        name: str,
        args: Mapping[str, Any] | None = None,
        *,
        sim_time_s: float | None = None,
    ) -> None:
        """Drop one marker; on the simulated track when a time is given."""
        if sim_time_s is None:
            ts_us, pid = self._now_us(), WALL_TRACK
        else:
            ts_us, pid = sim_time_s * 1e6, SIM_TRACK
        self._push((name, "i", ts_us, pid, threading.get_ident(), args))

    def counter_value(
        self,
        name: str,
        value: float,
        *,
        sim_time_s: float | None = None,
    ) -> None:
        """Sample one counter/gauge value (Chrome ``C`` phase)."""
        if sim_time_s is None:
            ts_us, pid = self._now_us(), WALL_TRACK
        else:
            ts_us, pid = sim_time_s * 1e6, SIM_TRACK
        self._push((name, "C", ts_us, pid, threading.get_ident(),
                    {"value": float(value)}))

    # -- inspection ----------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound (oldest-first)."""
        with self._lock:
            return self.emitted - len(self._ring)

    def events(self) -> tuple[TraceEvent, ...]:
        """A point-in-time copy of the buffered events, oldest first."""
        with self._lock:
            records = tuple(self._ring)
        return tuple(
            TraceEvent(name=name, ph=ph, ts_us=ts_us, pid=pid, tid=tid,
                       args=args or {})
            for name, ph, ts_us, pid, tid, args in records
        )

    def chrome_trace(self) -> dict[str, Any]:
        """The full buffer as a Chrome trace-event JSON object."""
        events = self.events()
        trace_events: list[dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": label}}
            for pid, label in sorted(_TRACK_NAMES.items())
        ]
        trace_events.extend(event.as_chrome() for event in events)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro.obs.trace",
                "capacity": self.capacity,
                "emitted": self.emitted,
                "dropped": self.emitted - len(events),
            },
        }


# ----------------------------------------------------------------------
# The process-wide active tracer. Emission sites read the global once;
# when it is None (the default) they return immediately.

_ACTIVE: Tracer | None = None
_STATE_LOCK = threading.Lock()


def active() -> Tracer | None:
    """The installed tracer, or None when tracing is off."""
    return _ACTIVE


def is_active() -> bool:
    """Whether a tracer is currently installed."""
    return _ACTIVE is not None


def install(capacity: int | None = None) -> Tracer:
    """Install (and return) a fresh process-wide tracer."""
    global _ACTIVE
    with _STATE_LOCK:
        _ACTIVE = Tracer(capacity if capacity is not None
                         else env_trace_capacity())
        return _ACTIVE


def uninstall() -> Tracer | None:
    """Remove the active tracer, returning it for export."""
    global _ACTIVE
    with _STATE_LOCK:
        tracer, _ACTIVE = _ACTIVE, None
        return tracer


def instant(
    name: str,
    args: Mapping[str, Any] | None = None,
    *,
    sim_time_s: float | None = None,
) -> None:
    """Emit a marker on the active tracer; a no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, args, sim_time_s=sim_time_s)


def counter_value(
    name: str,
    value: float,
    *,
    sim_time_s: float | None = None,
) -> None:
    """Sample a counter on the active tracer; a no-op when tracing is off."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.counter_value(name, value, sim_time_s=sim_time_s)


# ----------------------------------------------------------------------
# Export and environment plumbing

def write_chrome_trace(path: str | Path, tracer: Tracer) -> Path:
    """Serialize one tracer's buffer to ``path`` as Chrome trace JSON."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(tracer.chrome_trace(), indent=1) + "\n",
                    encoding="utf-8")
    return path


def env_trace_path() -> str | None:
    """The ``SMITE_TRACE_OUT`` destination, or None when unset/empty."""
    return os.environ.get(ENV_TRACE_OUT) or None


def env_trace_capacity() -> int:
    """The ``SMITE_TRACE_LIMIT`` ring bound (falls back to the default)."""
    raw = os.environ.get(ENV_TRACE_LIMIT, "").strip()
    if not raw:
        return DEFAULT_CAPACITY
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_CAPACITY


def maybe_install_env_tracer() -> Tracer | None:
    """Install a tracer if ``SMITE_TRACE_OUT`` asks for one.

    Idempotent: an already-active tracer is kept (so an explicit
    ``--trace-out`` and the environment variable do not fight).
    """
    if env_trace_path() is None:
        return _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    return install()


def maybe_write_env_trace() -> Path | None:
    """Export and uninstall the active tracer to ``SMITE_TRACE_OUT``."""
    path = env_trace_path()
    if path is None or _ACTIVE is None:
        return None
    tracer = uninstall()
    assert tracer is not None
    return write_chrome_trace(path, tracer)


# ----------------------------------------------------------------------
# Reading traces back (repro.cli obs trace)

def top_events(
    trace_doc: Mapping[str, Any], limit: int = 10,
) -> list[tuple[str, str, float, float]]:
    """(name, track, start_ms, duration_ms) of the longest events.

    Durations come from matching ``B``/``E`` pairs per thread (spans) and
    from explicit ``X`` complete events; markers and counter samples have
    no duration and are skipped.
    """
    stacks: dict[tuple[int, int], list[tuple[str, float]]] = {}
    durations: list[tuple[str, str, float, float]] = []
    for event in trace_doc.get("traceEvents", []):
        ph = event.get("ph")
        key = (event.get("pid", 0), event.get("tid", 0))
        track = _TRACK_NAMES.get(event.get("pid", 0), str(event.get("pid")))
        if ph == "B":
            stacks.setdefault(key, []).append(
                (event["name"], float(event["ts"]))
            )
        elif ph == "E":
            stack = stacks.get(key)
            if stack:
                name, started = stack.pop()
                durations.append(
                    (name, track, started / 1e3,
                     (float(event["ts"]) - started) / 1e3)
                )
        elif ph == "X":
            durations.append(
                (event["name"], track, float(event["ts"]) / 1e3,
                 float(event.get("dur", 0.0)) / 1e3)
            )
    durations.sort(key=lambda row: -row[3])
    return durations[:limit]


def render_trace_summary(
    trace_doc: Mapping[str, Any], *, limit: int = 10,
) -> str:
    """The ``repro.cli obs trace`` text view: longest events first."""
    rows = top_events(trace_doc, limit)
    other = trace_doc.get("otherData", {})
    events = trace_doc.get("traceEvents", [])
    spans = [f"{len(events)} events"
             f" ({other.get('dropped', 0)} dropped by the ring bound)"]
    if not rows:
        spans.append("no span events to rank (markers/samples only)")
        return "\n".join(spans)
    width = max(len(name) for name, _, _, _ in rows)
    spans.append(f"top {len(rows)} longest events:")
    spans.extend(
        f"  {name:<{width}}  {duration_ms:>12.3f} ms  "
        f"at {start_ms:.3f} ms  [{track}]"
        for name, track, start_ms, duration_ms in rows
    )
    return "\n".join(spans)


@contextmanager
def tracing(
    path: str | Path | None = None,
    capacity: int | None = None,
) -> Iterator[Tracer]:
    """Trace one block; write the Chrome JSON to ``path`` on the way out."""
    tracer = install(capacity)
    try:
        yield tracer
    finally:
        uninstall()
        if path is not None:
            write_chrome_trace(path, tracer)
