"""Phase-attributed deltas between two run reports.

``repro.cli obs diff A B`` answers "what changed between these runs, and
where" without eyeballing two JSON files: wall time, per-span time
attribution, counter movements, audit accuracy, and — via the schema-2
``provenance`` block — whether the *environment* changed out from under
the comparison (different interpreter, different ``SMITE_*`` knobs), in
which case a throughput delta may not be a code regression at all.

``scripts/bench_regress.py`` renders its regression message through the
same :func:`format_phase_deltas` helper, so the gate's attribution lines
and the CLI's read identically.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.analysis.tables import format_table

__all__ = [
    "diff_reports",
    "format_phase_deltas",
    "provenance_changes",
    "render_diff",
]


def _span_totals(report: Mapping[str, Any]) -> dict[str, float]:
    metrics = report.get("metrics", report)
    return {
        path: float(hist.get("sum", 0.0))
        for path, hist in metrics.get("spans", {}).items()
    }


def _counters(report: Mapping[str, Any]) -> dict[str, float]:
    metrics = report.get("metrics", report)
    return {name: float(value)
            for name, value in metrics.get("counters", {}).items()}


def provenance_changes(
    a: Mapping[str, Any], b: Mapping[str, Any],
) -> list[str]:
    """Human-readable environment differences between two reports.

    An empty list means the runs are environment-comparable as far as
    the provenance block can tell.
    """
    prov_a = a.get("provenance") or {}
    prov_b = b.get("provenance") or {}
    changes: list[str] = []
    for key in ("python", "implementation", "platform"):
        if prov_a.get(key) != prov_b.get(key):
            changes.append(
                f"{key}: {prov_a.get(key, '?')} -> {prov_b.get(key, '?')}"
            )
    env_a = prov_a.get("env", {})
    env_b = prov_b.get("env", {})
    for knob in sorted(set(env_a) | set(env_b)):
        if env_a.get(knob) != env_b.get(knob):
            changes.append(
                f"{knob}: {env_a.get(knob, '<unset>')} -> "
                f"{env_b.get(knob, '<unset>')}"
            )
    return changes


def diff_reports(
    a: Mapping[str, Any], b: Mapping[str, Any], *, limit: int = 12,
) -> dict[str, Any]:
    """The structured A-to-B delta: spans, counters, audit, provenance.

    Span and counter rows are ``(name, a_value, b_value)`` sorted by
    absolute movement, largest first, truncated to ``limit`` rows each.
    """
    spans_a, spans_b = _span_totals(a), _span_totals(b)
    span_rows = sorted(
        (
            (path, spans_a.get(path, 0.0), spans_b.get(path, 0.0))
            for path in set(spans_a) | set(spans_b)
        ),
        key=lambda row: -abs(row[2] - row[1]),
    )
    counters_a, counters_b = _counters(a), _counters(b)
    counter_rows = sorted(
        (
            (name, counters_a.get(name, 0.0), counters_b.get(name, 0.0))
            for name in set(counters_a) | set(counters_b)
            if counters_a.get(name, 0.0) != counters_b.get(name, 0.0)
        ),
        key=lambda row: -abs(row[2] - row[1]),
    )
    # Optional sections are read with .get() throughout: a report
    # written before a section existed (schema 1/2, or a raw dict that
    # never passed through load_report) must diff cleanly, rendering
    # "n/a" on that side instead of raising.
    audit_a = (a.get("audit") or {}).get("overall", {})
    audit_b = (b.get("audit") or {}).get("overall", {})
    adapt_a, adapt_b = a.get("adapt") or {}, b.get("adapt") or {}
    alerts_a, alerts_b = a.get("alerts") or {}, b.get("alerts") or {}
    return {
        "wall_seconds": (a.get("wall_seconds"), b.get("wall_seconds")),
        "spans": span_rows[:limit],
        "counters": counter_rows[:limit],
        "audit_mean_abs": (audit_a.get("mean_abs"), audit_b.get("mean_abs")),
        "adapt_swaps": (adapt_a.get("swaps"), adapt_b.get("swaps")),
        "adapt_model_version": (adapt_a.get("model_version"),
                                adapt_b.get("model_version")),
        "alert_firings": (alerts_a.get("firings"), alerts_b.get("firings")),
        "alert_resolves": (alerts_a.get("resolves"),
                           alerts_b.get("resolves")),
        "provenance_changes": provenance_changes(a, b),
    }


def format_phase_deltas(
    fresh: Mapping[str, float],
    baseline: Mapping[str, float],
) -> list[str]:
    """Attribution lines: one per phase, with the baseline ratio.

    Shared between ``obs diff`` and the bench-regression gate so a
    regression message always names the phase that moved.
    """
    if not fresh:
        return []
    width = max(len(name) for name in fresh)
    lines = []
    for name, value in sorted(fresh.items()):
        line = f"  {name:<{width}}  {value:.6g}"
        reference = baseline.get(name)
        if reference:
            line += f"  (baseline {reference:.6g}, x{value / reference:.2f})"
        lines.append(line)
    return lines


def _ratio(before: float, after: float) -> str:
    return f"x{after / before:.2f}" if before else "new"


def _na(value: Any) -> str:
    """Render a possibly-absent section value ("n/a" when missing)."""
    return "n/a" if value is None else str(value)


def render_diff(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    a_label: str = "A",
    b_label: str = "B",
    limit: int = 12,
) -> str:
    """The ``repro.cli obs diff`` rendering of :func:`diff_reports`."""
    delta = diff_reports(a, b, limit=limit)
    parts: list[str] = []

    changes = delta["provenance_changes"]
    if changes:
        parts.append("environment changed between the runs — deltas below "
                     "may not be code-caused:\n" +
                     "\n".join(f"  {change}" for change in changes))

    wall_a, wall_b = delta["wall_seconds"]
    if wall_a is not None and wall_b is not None:
        parts.append(f"wall time: {wall_a:.2f}s -> {wall_b:.2f}s "
                     f"({_ratio(wall_a, wall_b)})")

    if delta["spans"]:
        parts.append(format_table(
            ("span", f"{a_label} s", f"{b_label} s", "ratio"),
            [(path, f"{va:.4f}", f"{vb:.4f}", _ratio(va, vb))
             for path, va, vb in delta["spans"]],
            title="span time deltas (largest movement first)",
        ))
    if delta["counters"]:
        parts.append(format_table(
            ("counter", a_label, b_label, "ratio"),
            [(name, int(va), int(vb), _ratio(va, vb))
             for name, va, vb in delta["counters"]],
            title="counter deltas",
        ))

    mae_a, mae_b = delta["audit_mean_abs"]
    if mae_a is not None or mae_b is not None:
        parts.append(
            "prediction audit mean |residual|: "
            f"{'-' if mae_a is None else format(mae_a, '.4f')} -> "
            f"{'-' if mae_b is None else format(mae_b, '.4f')}"
        )

    swaps_a, swaps_b = delta["adapt_swaps"]
    version_a, version_b = delta["adapt_model_version"]
    if swaps_a is not None or swaps_b is not None:
        parts.append(
            f"adaptation: swaps {_na(swaps_a)} -> {_na(swaps_b)}, "
            f"serving model v{_na(version_a)} -> v{_na(version_b)}"
        )

    firings_a, firings_b = delta["alert_firings"]
    resolves_a, resolves_b = delta["alert_resolves"]
    if firings_a is not None or firings_b is not None:
        parts.append(
            f"alerts: firings {_na(firings_a)} -> {_na(firings_b)}, "
            f"resolves {_na(resolves_a)} -> {_na(resolves_b)}"
        )
    if not parts:
        return "reports are metric-identical"
    return "\n\n".join(parts)
