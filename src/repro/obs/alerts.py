"""Declarative alerting over the serving SLO window stream.

Rules are evaluated deterministically at window close — the only place
the serving stack produces new aggregate signals — so alert firing and
resolution are byte-reproducible properties of a replay, not of wall
time. Each rule watches one window-level signal through a fast/slow
window pair (the SRE burn-rate idiom): it fires when both the mean over
the last ``fast_windows`` closed windows *and* the mean over the last
``slow_windows`` exceed the threshold, and resolves once the fast mean
drops back under. The slow window keeps one noisy sample from paging;
the fast window makes resolution quick once the condition clears.

Built-in rule factories (each name is declared in
:mod:`repro.obs.catalog` under the ``alert`` kind, and smite-lint checks
call sites the same way it checks metric recorders):

- :func:`burn_rate_rule` — SLO burn: window violation rate against a
  multiple of the allowed violation budget;
- :func:`drift_rule` — mean absolute calibration residual per window
  against the adaptation drift bound;
- :func:`shed_rate_rule` — fraction of the window's placement requests
  shed to baseline;
- :func:`queue_saturation_rule` — API queue depth against its bound
  (fed by the API server's wall-clock sampler).

State transitions increment ``serve.alert.firings`` /
``serve.alert.resolves``, set the ``serve.alert.active`` gauge, emit
``serve.alert.fired`` / ``serve.alert.resolved`` trace instants, and
append :class:`AlertEvent` rows to the engine's own event log (rendered
into the run report's ``alerts`` section).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Mapping

from repro.obs import trace
from repro.obs.registry import counter, gauge

__all__ = [
    "AlertEngine",
    "AlertEvent",
    "AlertRule",
    "burn_rate_rule",
    "default_rules",
    "drift_rule",
    "queue_saturation_rule",
    "render_alerts",
    "shed_rate_rule",
]


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert: a signal, a threshold, a window pair."""

    name: str        #: cataloged ``serve.alert.*`` rule name
    signal: str      #: key into the per-window signal mapping
    threshold: float
    fast_windows: int = 1
    slow_windows: int = 1

    def __post_init__(self) -> None:
        if self.fast_windows < 1 or self.slow_windows < self.fast_windows:
            raise ValueError(
                "alert windows must satisfy 1 <= fast <= slow, got "
                f"fast={self.fast_windows} slow={self.slow_windows}"
            )


@dataclass(frozen=True)
class AlertEvent:
    """One firing or resolve transition, on the simulated clock."""

    time_s: float
    name: str
    state: str  # "firing" | "resolved"
    value: float
    threshold: float

    def as_line(self) -> str:
        """Render as one stable, byte-comparable event-log line."""
        return (
            f"alert {self.state} {self.name} t={self.time_s:.1f} "
            f"value={self.value:.6f} threshold={self.threshold:.6f}"
        )


def burn_rate_rule(
    name: str = "serve.alert.slo_burn_rate",
    *,
    budget: float = 0.05,
    factor: float = 2.0,
    fast_windows: int = 1,
    slow_windows: int = 3,
) -> AlertRule:
    """SLO burn-rate: fires when the violation rate burns the allowed
    violation ``budget`` at more than ``factor``x over both windows."""
    return AlertRule(
        name=name,
        signal="violation_rate",
        threshold=budget * factor,
        fast_windows=fast_windows,
        slow_windows=slow_windows,
    )


def drift_rule(
    name: str = "serve.alert.calibration_drift",
    *,
    bound: float = 0.05,
    fast_windows: int = 1,
    slow_windows: int = 1,
) -> AlertRule:
    """Calibration drift: the window's mean absolute prediction residual
    exceeds the (adaptation) drift bound."""
    return AlertRule(
        name=name,
        signal="calibration_drift",
        threshold=bound,
        fast_windows=fast_windows,
        slow_windows=slow_windows,
    )


def shed_rate_rule(
    name: str = "serve.alert.shed_rate",
    *,
    threshold: float = 0.10,
    fast_windows: int = 1,
    slow_windows: int = 3,
) -> AlertRule:
    """Shed rate: the fraction of the window's placement requests shed
    to baseline exceeds ``threshold``."""
    return AlertRule(
        name=name,
        signal="shed_rate",
        threshold=threshold,
        fast_windows=fast_windows,
        slow_windows=slow_windows,
    )


def queue_saturation_rule(
    name: str = "serve.alert.queue_saturation",
    *,
    threshold: float = 0.90,
    fast_windows: int = 1,
    slow_windows: int = 1,
) -> AlertRule:
    """Queue saturation: API queue depth over its bound (wall clock)."""
    return AlertRule(
        name=name,
        signal="queue_saturation",
        threshold=threshold,
        fast_windows=fast_windows,
        slow_windows=slow_windows,
    )


def default_rules(
    *,
    budget: float = 0.05,
    burn_factor: float = 2.0,
    drift_bound: float = 0.05,
    shed_threshold: float = 0.10,
    queue_threshold: float = 0.90,
) -> tuple[AlertRule, ...]:
    """The standard serving rule set, one of each built-in kind."""
    return (
        burn_rate_rule(budget=budget, factor=burn_factor),
        drift_rule(bound=drift_bound),
        shed_rate_rule(threshold=shed_threshold),
        queue_saturation_rule(threshold=queue_threshold),
    )


class AlertEngine:
    """Evaluates a rule set against the closing-window signal stream."""

    def __init__(self, rules: tuple[AlertRule, ...] | None = None) -> None:
        self.rules: tuple[AlertRule, ...] = (
            tuple(rules) if rules is not None else default_rules()
        )
        names = [rule.name for rule in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names in {names}")
        self._history: dict[str, deque[float]] = {
            rule.name: deque(maxlen=rule.slow_windows)
            for rule in self.rules
        }
        self._firing: dict[str, bool] = {
            rule.name: False for rule in self.rules
        }
        self.events: list[AlertEvent] = []
        self.firings = 0
        self.resolves = 0

    # ------------------------------------------------------------------

    def observe_window(
        self, time_s: float, signals: Mapping[str, float],
    ) -> list[AlertEvent]:
        """Feed one closed window's signals; returns new transitions.

        Rules whose signal is absent from ``signals`` (e.g. no
        calibration audit is attached) skip the window entirely — their
        history neither grows nor decays.
        """
        transitions: list[AlertEvent] = []
        for rule in self.rules:
            value = signals.get(rule.signal)
            if value is None:
                continue
            history = self._history[rule.name]
            history.append(float(value))
            fast = list(history)[-rule.fast_windows:]
            fast_mean = sum(fast) / len(fast)
            slow_mean = sum(history) / len(history)
            if not self._firing[rule.name]:
                if fast_mean > rule.threshold and slow_mean > rule.threshold:
                    self._firing[rule.name] = True
                    self.firings += 1
                    transitions.append(AlertEvent(
                        time_s=time_s, name=rule.name, state="firing",
                        value=fast_mean, threshold=rule.threshold,
                    ))
            elif fast_mean <= rule.threshold:
                self._firing[rule.name] = False
                self.resolves += 1
                transitions.append(AlertEvent(
                    time_s=time_s, name=rule.name, state="resolved",
                    value=fast_mean, threshold=rule.threshold,
                ))
        if transitions:
            self.events.extend(transitions)
            for event in transitions:
                if event.state == "firing":
                    counter("serve.alert.firings").inc()
                    trace.instant(
                        "serve.alert.fired",
                        {"rule": event.name, "value": event.value,
                         "threshold": event.threshold},
                        sim_time_s=time_s,
                    )
                else:
                    counter("serve.alert.resolves").inc()
                    trace.instant(
                        "serve.alert.resolved",
                        {"rule": event.name, "value": event.value,
                         "threshold": event.threshold},
                        sim_time_s=time_s,
                    )
        gauge("serve.alert.active").set(float(self.active_count))
        return transitions

    # ------------------------------------------------------------------

    @property
    def active_count(self) -> int:
        return sum(1 for firing in self._firing.values() if firing)

    @property
    def firing_rules(self) -> tuple[str, ...]:
        return tuple(sorted(
            name for name, firing in self._firing.items() if firing
        ))

    def states(self) -> dict[str, float]:
        """Per-rule firing state (1.0/0.0) for telemetry frames."""
        return {
            name: 1.0 if firing else 0.0
            for name, firing in sorted(self._firing.items())
        }

    def event_log(self) -> str:
        """All transitions as one stable multi-line log."""
        return "\n".join(event.as_line() for event in self.events)

    def snapshot(self) -> dict[str, Any]:
        """The run report's ``alerts`` section."""
        return {
            "rules": [
                {
                    "name": rule.name,
                    "signal": rule.signal,
                    "threshold": rule.threshold,
                    "fast_windows": rule.fast_windows,
                    "slow_windows": rule.slow_windows,
                }
                for rule in self.rules
            ],
            "firing": list(self.firing_rules),
            "firings": self.firings,
            "resolves": self.resolves,
            "events": [
                {
                    "time_s": event.time_s,
                    "name": event.name,
                    "state": event.state,
                    "value": event.value,
                    "threshold": event.threshold,
                }
                for event in self.events
            ],
        }


def render_alerts(alerts: Mapping[str, Any], *, limit: int = 8) -> str:
    """Human summary of a report ``alerts`` section (``obs view``)."""
    events = alerts.get("events", [])
    firing = alerts.get("firing", [])
    lines = [
        f"alerts: {alerts.get('firings', 0)} firing / "
        f"{alerts.get('resolves', 0)} resolve transition(s); "
        + (f"active: {', '.join(firing)}" if firing else "none active")
    ]
    for event in events[-limit:]:
        lines.append(
            f"  {event['state']:<8} {event['name']} "
            f"t={event['time_s']:.1f} value={event['value']:.6f} "
            f"threshold={event['threshold']:.6f}"
        )
    if len(events) > limit:
        lines.append(f"  ... ({len(events) - limit} earlier transition(s))")
    return "\n".join(lines)
