"""Context-manager timing spans.

A span measures the wall time of one phase and records it into the
registry's span namespace. Spans nest: entering a span pushes its name
onto a thread-local stack, and the recorded path is the slash-joined
stack, so a characterization sweep timed inside an experiment appears
as ``experiment.fig2/characterize_many`` while the same sweep invoked
directly records plain ``characterize_many``.

Each path is backed by a mergeable histogram, so worker-process span
timings fold into the parent exactly like every other metric.

Two orthogonal refinements:

- **Failure marking** — a span whose block exits via exception still
  records its duration, but additionally increments a companion counter
  named ``<path>.errors``, so a phase that died fast is distinguishable
  from a phase that succeeded fast in any report.
- **Tracing** — when a :mod:`repro.obs.trace` tracer is installed, every
  span emits begin/end trace events (and ``time_histogram`` a complete
  event) into the bounded ring buffer. When tracing is off — the
  default — the only added cost is one global read and a ``None`` check.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import trace as _trace
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["span", "time_histogram", "current_span_path"]

_stack = threading.local()


def _current_stack() -> list[str]:
    try:
        return _stack.names
    except AttributeError:
        _stack.names = []
        return _stack.names


def current_span_path() -> str:
    """The slash-joined path of the spans this thread is inside ('' if none)."""
    return "/".join(_current_stack())


@contextmanager
def span(name: str,
         registry: MetricsRegistry | None = None) -> Iterator[None]:
    """Time a block and record the duration under the nested span path.

    On an exception the duration is still recorded, and the companion
    counter ``<path>.errors`` is incremented before the exception
    propagates.
    """
    if "/" in name:
        raise ValueError(f"span names must not contain '/', got {name!r}")
    registry = registry if registry is not None else get_registry()
    stack = _current_stack()
    stack.append(name)
    path = "/".join(stack)
    tracer = _trace.active()
    if tracer is not None:
        tracer.begin(path)
    started = time.perf_counter()
    failed = False
    try:
        yield
    except BaseException:
        failed = True
        raise
    finally:
        elapsed = time.perf_counter() - started
        stack.pop()
        registry.span_histogram(path).record(elapsed)
        if failed:
            registry.counter(f"{path}.errors").inc()
        if tracer is not None:
            tracer.end(path, {"error": True} if failed else None)


@contextmanager
def time_histogram(name: str,
                   registry: MetricsRegistry | None = None) -> Iterator[None]:
    """Time a block into a *flat* histogram (no nesting path).

    For hot operations (a solve, a batch call) where the distribution
    matters but a per-call span path would explode the namespace.
    """
    registry = registry if registry is not None else get_registry()
    tracer = _trace.active()
    if tracer is not None:
        tracer.begin(name)
    started = time.perf_counter()
    try:
        yield
    finally:
        registry.histogram(name).record(time.perf_counter() - started)
        if tracer is not None:
            tracer.end(name)
