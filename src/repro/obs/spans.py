"""Context-manager timing spans.

A span measures the wall time of one phase and records it into the
registry's span namespace. Spans nest: entering a span pushes its name
onto a thread-local stack, and the recorded path is the slash-joined
stack, so a characterization sweep timed inside an experiment appears
as ``experiment.fig2/characterize_many`` while the same sweep invoked
directly records plain ``characterize_many``.

Each path is backed by a mergeable histogram, so worker-process span
timings fold into the parent exactly like every other metric.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["span", "time_histogram", "current_span_path"]

_stack = threading.local()


def _current_stack() -> list[str]:
    try:
        return _stack.names
    except AttributeError:
        _stack.names = []
        return _stack.names


def current_span_path() -> str:
    """The slash-joined path of the spans this thread is inside ('' if none)."""
    return "/".join(_current_stack())


@contextmanager
def span(name: str,
         registry: MetricsRegistry | None = None) -> Iterator[None]:
    """Time a block and record the duration under the nested span path."""
    if "/" in name:
        raise ValueError(f"span names must not contain '/', got {name!r}")
    registry = registry if registry is not None else get_registry()
    stack = _current_stack()
    stack.append(name)
    started = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - started
        path = "/".join(stack)
        stack.pop()
        registry.span_histogram(path).record(elapsed)


@contextmanager
def time_histogram(name: str,
                   registry: MetricsRegistry | None = None) -> Iterator[None]:
    """Time a block into a *flat* histogram (no nesting path).

    For hot operations (a solve, a batch call) where the distribution
    matters but a per-call span path would explode the namespace.
    """
    registry = registry if registry is not None else get_registry()
    started = time.perf_counter()
    try:
        yield
    finally:
        registry.histogram(name).record(time.perf_counter() - started)
