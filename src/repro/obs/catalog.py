"""The catalog of every metric and span the codebase emits.

Instrumentation sites must use names declared here; the catalog is the
single source of truth that ``docs/OBSERVABILITY.md`` documents and that
``tests/obs/test_catalog.py`` verifies in both directions:

- every name in the docs table exists in this catalog (and vice versa);
- every metric a live pipeline run emits matches a catalog entry.

Dynamic name parts are written as ``{placeholder}`` patterns
(``experiment.{id}`` matches ``experiment.fig10``). Span entries name
span *leaves*: recorded span paths are slash-joined nesting stacks
(``experiment.fig14/cluster.apply_policy``), and each segment of a path
must match a span leaf in the catalog. The ``{span_path}`` placeholder
is special: it additionally matches ``/``, so names derived from full
span paths (the ``<path>.errors`` failure counters) stay cataloged.

Besides the four metric kinds there are two more: ``trace``, the names
of structured trace markers and counter samples (:mod:`repro.obs.trace`)
that are not themselves registry metrics, and ``alert``, the declarative
alert rule names (:mod:`repro.obs.alerts`) whose firing state the
telemetry pipeline exports.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache

__all__ = ["CATALOG", "MetricSpec", "find_spec", "match_span_path",
           "specs_of_kind"]


@dataclass(frozen=True)
class MetricSpec:
    """One documented metric: its kind, name pattern, unit, and meaning."""

    kind: str  # "counter"|"gauge"|"histogram"|"span"|"trace"|"alert"
    name: str  # exact name, or a pattern with {placeholder} segments
    unit: str
    description: str

    @property
    def pattern(self) -> "re.Pattern[str]":
        return _compile(self.name)


@lru_cache(maxsize=None)
def _compile(name: str) -> "re.Pattern[str]":
    def _wildcard(match: "re.Match[str]") -> str:
        # {span_path} spans nesting separators; other placeholders are
        # single path segments.
        if match.group(0) == "{span_path}":
            return "[A-Za-z0-9_./-]+"
        return "[A-Za-z0-9_.-]+"

    out: list[str] = []
    last = 0
    for match in re.finditer(r"\{[a-z_]+\}", name):
        out.append(re.escape(name[last:match.start()]))
        out.append(_wildcard(match))
        last = match.end()
    out.append(re.escape(name[last:]))
    return re.compile("^" + "".join(out) + "$")


CATALOG: tuple[MetricSpec, ...] = (
    # -- persistent solve cache (smt/diskcache.py) ----------------------
    MetricSpec("counter", "smt.diskcache.requests", "probes",
               "disk-cache lookups; equals hits + misses by construction"),
    MetricSpec("counter", "smt.diskcache.hits", "probes",
               "lookups served from a cached pickle"),
    MetricSpec("counter", "smt.diskcache.misses", "probes",
               "lookups that found no (usable) entry"),
    MetricSpec("counter", "smt.diskcache.invalidations", "entries",
               "corrupt or stale-format entries dropped during a lookup"),
    MetricSpec("counter", "smt.diskcache.writes", "entries",
               "solve results persisted to disk"),
    MetricSpec("counter", "smt.diskcache.bytes_read", "bytes",
               "pickle bytes read on cache hits"),
    MetricSpec("counter", "smt.diskcache.bytes_written", "bytes",
               "pickle bytes written on cache stores"),
    # -- simulator facade (smt/simulator.py) ----------------------------
    MetricSpec("counter", "smt.simulator.requests", "placements",
               "placement solve requests (run / run_many / prefetch)"),
    MetricSpec("counter", "smt.simulator.memo_hits", "placements",
               "requests served from the in-memory memo cache"),
    MetricSpec("counter", "smt.simulator.canonicalizations", "placements",
               "symmetry canonicalizations performed"),
    # -- fixed-point solvers (smt/solver.py, smt/batch.py) --------------
    MetricSpec("counter", "smt.solver.solves", "solves",
               "scalar fixed-point solves executed"),
    MetricSpec("histogram", "smt.solver.iterations", "iterations",
               "fixed-point iterations per scalar solve"),
    MetricSpec("histogram", "smt.solver.solve_seconds", "seconds",
               "wall time per scalar solve"),
    MetricSpec("counter", "smt.batch.calls", "calls",
               "vectorized solve_many invocations"),
    MetricSpec("counter", "smt.batch.problems", "problems",
               "independent problems stacked across all batch calls"),
    MetricSpec("histogram", "smt.batch.batch_size", "problems",
               "problems per solve_many call"),
    MetricSpec("histogram", "smt.batch.solve_seconds", "seconds",
               "wall time per solve_many call"),
    # -- characterization and training (core/) --------------------------
    MetricSpec("counter", "core.characterize.workloads", "workloads",
               "workloads characterized against the Ruler suite"),
    MetricSpec("counter", "core.trainer.pair_samples", "samples",
               "ordered co-location pairs measured for datasets"),
    MetricSpec("counter", "core.trainer.server_samples", "samples",
               "server-topology co-locations measured for datasets"),
    # -- cluster scheduler (scheduler/cluster.py) ------------------------
    MetricSpec("counter", "scheduler.cluster.decisions", "servers",
               "placement decisions evaluated by a policy pass"),
    MetricSpec("counter", "scheduler.cluster.colocations", "servers",
               "decisions that admitted at least one batch instance"),
    MetricSpec("counter", "scheduler.cluster.instances", "instances",
               "batch instances admitted across the cluster"),
    MetricSpec("counter", "scheduler.cluster.qos_violations", "servers",
               "admitted co-locations whose measured outcome broke the "
               "QoS target (mispredicted-safe placements)"),
    # -- tail-model fitting (scheduler/scaleout.py) ----------------------
    MetricSpec("counter", "scheduler.tail.unstable_skips", "points",
               "Ruler sweep points skipped during tail-model fitting "
               "because the degraded queue would be unstable"),
    # -- online serving runtime (serve/) ---------------------------------
    MetricSpec("counter", "serve.traffic.jobs", "jobs",
               "batch jobs emitted by the trace generators"),
    MetricSpec("counter", "serve.engine.arrivals", "jobs",
               "trace arrivals processed by the serving engine"),
    MetricSpec("counter", "serve.engine.departures", "jobs",
               "job departures processed (contexts freed)"),
    MetricSpec("counter", "serve.engine.colocated", "jobs",
               "arrivals placed on a latency server's SMT contexts"),
    MetricSpec("counter", "serve.engine.baseline_placed", "jobs",
               "arrivals sent to the no-co-location baseline pool "
               "(shed, predicted-unsafe, or no free contexts)"),
    MetricSpec("counter", "serve.engine.epochs", "epochs",
               "event epochs replayed (one micro-batched decider pass each)"),
    MetricSpec("counter", "serve.engine.events", "events",
               "discrete events processed (arrivals + departures)"),
    MetricSpec("counter", "serve.engine.sheds", "jobs",
               "arrivals answered with a shed decision (telemetry frame "
               "channel; cumulative per epoch boundary)"),
    MetricSpec("gauge", "serve.engine.running", "jobs",
               "jobs resident in the fleet at the last epoch boundary"),
    MetricSpec("counter", "serve.service.requests", "decisions",
               "placement questions put to the decider; equals "
               "sheds + decisions by construction"),
    MetricSpec("counter", "serve.service.decisions", "decisions",
               "arrivals the admission controller let through to a "
               "placement decision"),
    MetricSpec("counter", "serve.service.sheds", "decisions",
               "arrivals shed to the baseline when the per-epoch "
               "decision-latency budget ran out"),
    MetricSpec("counter", "serve.service.cache_hits", "decisions",
               "decisions served from the in-memory prediction LRU"),
    MetricSpec("counter", "serve.service.cache_misses", "decisions",
               "decisions that had to consult the SMiTe predictor"),
    MetricSpec("counter", "serve.shard.workers", "processes",
               "worker processes the sharded placement phase fanned "
               "pools out to"),
    MetricSpec("counter", "serve.shard.events", "events",
               "pool-local placement events replayed inside shard "
               "workers (interesting events only)"),
    MetricSpec("counter", "serve.slo.windows", "windows",
               "SLO accounting windows closed over the event clock"),
    MetricSpec("gauge", "serve.slo.violation_rate", "fraction",
               "QoS-violation rate of the most recently closed window"),
    # -- network-facing prediction API (serve/api/) ----------------------
    MetricSpec("counter", "serve.api.connections", "connections",
               "client connections accepted by the API server"),
    MetricSpec("counter", "serve.api.requests", "requests",
               "valid protocol requests answered (every op, shed "
               "responses included)"),
    MetricSpec("counter", "serve.api.protocol_errors", "requests",
               "frames or requests rejected with a protocol error "
               "(bad framing, schema violations, version mismatches)"),
    MetricSpec("counter", "serve.api.batches", "batches",
               "decision micro-batches drained from the pending queue"),
    MetricSpec("counter", "serve.api.sheds", "requests",
               "requests answered with the 429-style overloaded "
               "shed-to-baseline response because the queue bound was hit"),
    MetricSpec("counter", "serve.api.shard_workers", "processes",
               "worker processes the sharded API service fanned out to"),
    MetricSpec("gauge", "serve.api.queue_depth", "requests",
               "pending decision requests observed at the last "
               "batch-drain boundary"),
    MetricSpec("histogram", "serve.api.batch_occupancy", "requests",
               "requests coalesced into each decision micro-batch"),
    # -- prediction-accuracy audit (obs/audit.py, fed by serve/engine.py)
    MetricSpec("counter", "serve.audit.samples", "comparisons",
               "predicted-vs-realized degradation comparisons recorded "
               "at fleet refreshes"),
    MetricSpec("histogram", "serve.audit.abs_residual", "fraction",
               "absolute prediction residual |predicted - actual| per "
               "audited comparison"),
    MetricSpec("gauge", "serve.audit.drift", "fraction",
               "mean absolute prediction residual of the most recently "
               "closed SLO window (calibration drift)"),
    # -- online model recalibration (adapt/, fed by serve/engine.py) -----
    MetricSpec("counter", "serve.adapt.observations", "comparisons",
               "audited comparisons streamed into the online refitter "
               "(training and holdout together)"),
    MetricSpec("counter", "serve.adapt.refits", "refits",
               "mini-batch full refits run over the observation window"),
    MetricSpec("counter", "serve.adapt.swaps", "swaps",
               "coefficient sets hot-swapped into the prediction "
               "service (reverts to static included)"),
    MetricSpec("counter", "serve.adapt.reverts", "swaps",
               "swaps that shed back to the static offline-trained "
               "coefficients after candidates failed the holdout check"),
    MetricSpec("counter", "serve.adapt.rejected", "candidates",
               "candidate coefficient sets rejected by the holdout "
               "sanity check"),
    MetricSpec("counter", "serve.adapt.invalidations", "entries",
               "prediction-derived cache entries (decision LRU plus "
               "prediction memo) dropped by coefficient swaps"),
    MetricSpec("gauge", "serve.adapt.model_version", "version",
               "monotone version of the serving coefficients (0 = the "
               "static offline-trained model)"),
    # -- live telemetry pipeline (obs/timeseries.py) ---------------------
    MetricSpec("counter", "serve.telemetry.samples", "frames",
               "telemetry frames recorded by the installed time-series "
               "sampler (epoch cadence for replays, wall cadence for "
               "the API server)"),
    MetricSpec("counter", "serve.telemetry.frames", "frames",
               "in-flight snapshot frames streamed from shard/API "
               "workers and merged incrementally into the parent"),
    # -- alert engine (obs/alerts.py, fed at SLO window close) -----------
    MetricSpec("counter", "serve.alert.firings", "alerts",
               "alert rules that transitioned into the firing state"),
    MetricSpec("counter", "serve.alert.resolves", "alerts",
               "firing alert rules whose fast window dropped back under "
               "the threshold"),
    MetricSpec("gauge", "serve.alert.active", "alerts",
               "alert rules currently in the firing state"),
    MetricSpec("alert", "serve.alert.slo_burn_rate", "fraction",
               "multi-window SLO burn-rate rule: the window violation "
               "rate burns the allowed violation budget too fast over "
               "both the fast and slow window"),
    MetricSpec("alert", "serve.alert.calibration_drift", "fraction",
               "calibration-drift rule: the window's mean absolute "
               "prediction residual exceeds the drift bound"),
    MetricSpec("alert", "serve.alert.shed_rate", "fraction",
               "shed-rate rule: the fraction of the window's placement "
               "requests shed to baseline exceeds the threshold"),
    MetricSpec("alert", "serve.alert.queue_saturation", "fraction",
               "queue-saturation rule: API queue depth over its bound "
               "(evaluated on the wall clock by the API server)"),
    # -- experiment runner (experiments/runner.py) -----------------------
    MetricSpec("gauge", "runner.jobs", "processes",
               "worker processes the runner used"),
    MetricSpec("gauge", "runner.experiments", "experiments",
               "experiments the runner was asked to run"),
    # -- spans (leaf names; paths are slash-joined nestings) -------------
    MetricSpec("span", "experiment.{id}", "seconds",
               "one experiment driver, end to end"),
    MetricSpec("span", "characterize_many", "seconds",
               "Ruler characterization sweep over a population"),
    MetricSpec("span", "trainer.pair_dataset", "seconds",
               "pairwise co-location dataset build"),
    MetricSpec("span", "trainer.server_dataset", "seconds",
               "server-topology dataset build"),
    MetricSpec("span", "cluster.apply_policy", "seconds",
               "one policy pass over the whole cluster"),
    MetricSpec("span", "serve.replay", "seconds",
               "one trace replayed end to end through the serving engine"),
    MetricSpec("span", "serve.epoch", "seconds",
               "one event epoch: micro-batched prefetch plus event loop "
               "(scalar reference engine only)"),
    MetricSpec("span", "serve.decide", "seconds",
               "vectorized phase 1: all epochs' decisions batched "
               "through the decider's columnar interface"),
    MetricSpec("span", "serve.place", "seconds",
               "vectorized phase 2: per-pool O(1) placement kernels "
               "(in-process or sharded)"),
    MetricSpec("span", "serve.score", "seconds",
               "vectorized phase 3: event assembly plus per-epoch "
               "aggregated SLO/audit scoring"),
    MetricSpec("span", "serve.shard.replay", "seconds",
               "one shard worker replaying its pools' placement kernels"),
    MetricSpec("span", "serve.shard.merge", "seconds",
               "folding shard workers' results and metric snapshots "
               "back into the parent"),
    MetricSpec("span", "serve.adapt.refit", "seconds",
               "one candidate coefficient set assembled (RLS readout or "
               "mini-batch full refit over the window)"),
    MetricSpec("span", "serve.adapt.swap", "seconds",
               "one coefficient hot-swap: override install plus cache "
               "invalidation"),
    MetricSpec("span", "serve.api.batch", "seconds",
               "one decision micro-batch: epoch prefetch plus per-request "
               "decisions through the decider"),
    MetricSpec("span", "serve.api.shard_merge", "seconds",
               "folding one API shard worker's metric snapshot back into "
               "the parent registry"),
    # -- span failure marking (obs/spans.py) -----------------------------
    MetricSpec("counter", "{span_path}.errors", "errors",
               "span blocks that exited via exception, keyed by the "
               "recorded span path"),
    # -- structured trace events (obs/trace.py; simulated-clock track) ---
    MetricSpec("trace", "serve.decision", "markers",
               "one placement-decision marker per arrival: app, profile, "
               "placement, predicted degradation"),
    MetricSpec("trace", "serve.engine.running", "jobs",
               "resident-job counter samples at epoch boundaries"),
    MetricSpec("trace", "serve.slo.violation_rate", "fraction",
               "violation-rate counter samples at window closes"),
    MetricSpec("trace", "serve.audit.drift", "fraction",
               "calibration-drift counter samples at window closes"),
    MetricSpec("trace", "serve.alert.fired", "markers",
               "one instant marker per alert rule firing transition"),
    MetricSpec("trace", "serve.alert.resolved", "markers",
               "one instant marker per alert rule resolve transition"),
)


def specs_of_kind(kind: str) -> tuple[MetricSpec, ...]:
    """Every catalog entry of one instrument kind (counter/gauge/...)."""
    return tuple(spec for spec in CATALOG if spec.kind == kind)


def find_spec(kind: str, name: str) -> MetricSpec | None:
    """The catalog entry a concrete metric name falls under, if any."""
    for spec in CATALOG:
        if spec.kind == kind and spec.pattern.match(name):
            return spec
    return None


def match_span_path(path: str) -> bool:
    """Whether every segment of a recorded span path is cataloged."""
    return all(find_spec("span", segment) is not None
               for segment in path.split("/"))
