"""Observability: metrics, timing spans, and run reports.

``repro.obs`` is the dependency-free instrumentation layer the whole
pipeline reports through. It provides

- a :class:`~repro.obs.registry.MetricsRegistry` of named counters,
  gauges, and mergeable log-bucketed histograms;
- context-manager timing :func:`~repro.obs.spans.span`\\ s that nest into
  slash-joined paths (``runner/experiment.fig10``);
- process-safe aggregation: worker processes ship
  :func:`~repro.obs.registry.snapshot` dicts back to the parent, which
  :func:`~repro.obs.registry.merge`\\ s them into one run-wide view;
- machine-readable run reports (:mod:`repro.obs.report`), written by the
  experiment runner's ``--metrics-out`` flag or the ``SMITE_METRICS_OUT``
  environment variable, plus an opt-in human summary table;
- a :mod:`~repro.obs.catalog` naming every metric the codebase emits, so
  ``docs/OBSERVABILITY.md`` can be verified against the live registry;
- opt-in structured tracing (:mod:`repro.obs.trace`): a bounded event
  ring buffer exported as Chrome trace-event JSON (``--trace-out`` /
  ``SMITE_TRACE_OUT``), fed by spans and the serving engine;
- a prediction-accuracy audit (:mod:`repro.obs.audit`): per-decision
  predicted-vs-realized degradation residuals with per-pool/per-pair
  attribution, exported in the run report's ``audit`` section;
- streaming telemetry (:mod:`repro.obs.timeseries`): a bounded,
  mergeable time-series sampler over registry channels, exported as
  JSONL or OpenMetrics text (``--telemetry-out`` /
  ``SMITE_TELEMETRY_OUT``), plus declarative SLO burn-rate alerting
  (:mod:`repro.obs.alerts`);
- report tooling on the CLI: ``repro.cli obs view|diff|trace|top``.

Instrumentation must be cheap enough to leave on: everything here is
incremented per *operation* (a solve, a cache probe, an experiment), never
per solver iteration, and the run-report overhead criterion is <2% wall
time on the benchmark grid.

Typical use::

    from repro import obs

    with obs.span("characterize"):
        obs.counter("core.characterize.workloads").inc()

    snap = obs.snapshot()          # JSON-able dict, mergeable
    obs.merge(worker_snapshot)     # fold a child worker back in
"""

from __future__ import annotations

from repro.obs import trace
from repro.obs.audit import PredictionAudit, ResidualStats
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    diff_snapshots,
    gauge,
    get_registry,
    histogram,
    merge,
    reset,
    snapshot,
)
from repro.obs.spans import current_span_path, span, time_histogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PredictionAudit",
    "ResidualStats",
    "counter",
    "current_span_path",
    "diff_snapshots",
    "gauge",
    "get_registry",
    "histogram",
    "merge",
    "reset",
    "snapshot",
    "span",
    "time_histogram",
    "trace",
]
