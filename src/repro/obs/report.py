"""Machine-readable run reports and the human summary table.

A *run report* is one JSON document describing everything a pipeline
invocation did: the merged metrics snapshot, per-worker sub-snapshots
(so cross-process aggregation stays auditable), per-experiment wall
times, and the command line. The experiment runner writes one with
``--metrics-out PATH``; setting ``SMITE_METRICS_OUT`` does the same for
any entry point that calls :func:`maybe_write_env_report` (the runner
and the benchmark harness both do).

``scripts/bench_regress.py`` consumes these reports to attribute a
throughput regression to a phase: the top spans and the cache ratios
say *where* the time went, not just that it grew.
"""

from __future__ import annotations

import json
import platform
import sys
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.tables import format_table
from repro.obs.alerts import render_alerts
from repro.obs.registry import snapshot

__all__ = [
    "ENV_METRICS_OUT",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "build_report",
    "cache_ratios",
    "env_metrics_path",
    "load_report",
    "maybe_write_env_report",
    "provenance",
    "render_adapt",
    "render_audit",
    "render_report",
    "render_summary",
    "span_errors",
    "top_spans",
    "write_report",
]

#: Schema 2 added the ``provenance`` block and the optional ``audit``
#: section; schema 3 the optional ``alerts`` section.
#: :func:`load_report` upgrades older supported documents in place.
SCHEMA_VERSION = 3
SUPPORTED_SCHEMAS = (1, 2, 3)
ENV_METRICS_OUT = "SMITE_METRICS_OUT"


def provenance() -> dict[str, Any]:
    """The environment a report was produced in.

    Recorded so ``repro.cli obs diff`` can flag a regression that is
    really an environment change (different interpreter, different
    ``SMITE_*`` knobs) rather than a code change.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("SMITE_")
        },
    }


def build_report(
    *,
    command: Sequence[str] | None = None,
    wall_seconds: float | None = None,
    experiments: Mapping[str, float] | None = None,
    workers: Sequence[Mapping[str, Any]] | None = None,
    metrics: Mapping[str, Any] | None = None,
    audit: Mapping[str, Any] | None = None,
    adapt: Mapping[str, Any] | None = None,
    alerts: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a run report around the (already merged) metrics snapshot.

    ``workers`` carries the per-worker sub-snapshots (each a dict with at
    least ``experiments`` and ``metrics`` keys); the top-level
    ``metrics`` must already contain their merged totals. ``audit`` is a
    :meth:`~repro.obs.audit.PredictionAudit.snapshot` when the run kept
    prediction-accuracy books (``repro.cli serve`` does). ``adapt`` is a
    :meth:`~repro.adapt.swap.ModelRegistry.snapshot` when the run served
    with online recalibration enabled. ``alerts`` is an
    :meth:`~repro.obs.alerts.AlertEngine.snapshot` when the run
    evaluated alert rules.
    """
    return {
        "schema": SCHEMA_VERSION,
        "generator": "repro.obs",
        "command": list(command) if command is not None else sys.argv,
        "wall_seconds": wall_seconds,
        "provenance": provenance(),
        "experiments": dict(experiments or {}),
        "workers": [dict(w) for w in (workers or [])],
        "metrics": dict(metrics) if metrics is not None else snapshot(),
        "audit": dict(audit) if audit is not None else None,
        "adapt": dict(adapt) if adapt is not None else None,
        "alerts": dict(alerts) if alerts is not None else None,
    }


def load_report(path: str | Path) -> dict[str, Any]:
    """Read a run report, upgrading older supported schemas in place.

    Schema-1 documents (no ``provenance``, no ``audit``) load with those
    fields defaulted, so every consumer can assume the current shape.
    Unknown (future) schemas raise ``ValueError`` instead of being
    silently misread.
    """
    path = Path(path)
    report = json.loads(path.read_text(encoding="utf-8"))
    schema = report.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        raise ValueError(
            f"{path}: unsupported run-report schema {schema!r}; "
            f"this build reads schemas {SUPPORTED_SCHEMAS}"
        )
    report.setdefault("provenance", {})
    report.setdefault("audit", None)
    report.setdefault("adapt", None)
    report.setdefault("alerts", None)
    report.setdefault("experiments", {})
    report.setdefault("workers", [])
    report.setdefault("metrics", {})
    return report


def write_report(path: str | Path, report: Mapping[str, Any]) -> Path:
    """Serialize a run report to ``path`` as stable, indented JSON."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def env_metrics_path() -> str | None:
    """The ``SMITE_METRICS_OUT`` destination, or None when unset/empty."""
    return os.environ.get(ENV_METRICS_OUT) or None


def maybe_write_env_report(**kwargs: Any) -> Path | None:
    """Write a report to ``SMITE_METRICS_OUT`` if the variable is set."""
    path = env_metrics_path()
    if path is None:
        return None
    return write_report(path, build_report(**kwargs))


# ----------------------------------------------------------------------
# Derived views

def top_spans(metrics: Mapping[str, Any],
              limit: int = 8) -> list[tuple[str, int, float, float]]:
    """(path, count, total_seconds, max_seconds) rows, busiest first."""
    rows = [
        (path, int(h["count"]), float(h["sum"]), float(h["max"]))
        for path, h in metrics.get("spans", {}).items()
    ]
    rows.sort(key=lambda r: -r[2])
    return rows[:limit]


def cache_ratios(metrics: Mapping[str, Any]) -> dict[str, float]:
    """Hit rates of the two solve caches (absent caches are omitted)."""
    counters = metrics.get("counters", {})
    ratios: dict[str, float] = {}
    disk_requests = counters.get("smt.diskcache.requests", 0)
    if disk_requests:
        ratios["smt.diskcache"] = (
            counters.get("smt.diskcache.hits", 0) / disk_requests
        )
    sim_requests = counters.get("smt.simulator.requests", 0)
    if sim_requests:
        ratios["smt.simulator.memo"] = (
            counters.get("smt.simulator.memo_hits", 0) / sim_requests
        )
    return ratios


def render_audit(audit: Mapping[str, Any]) -> str:
    """The audit section as per-pool and per-pair residual tables."""
    if not audit or not audit.get("samples"):
        return "no audit samples recorded"
    overall = audit.get("overall", {})
    parts = [
        f"prediction audit: {audit['samples']} comparisons, "
        f"mean |residual| {overall.get('mean_abs', 0.0):.4f}, "
        f"bias {overall.get('mean_signed', 0.0):+.4f} "
        f"(residual = predicted - actual degradation)"
    ]
    for table, title in (("pools", "per-pool residuals"),
                         ("pairs", "per-pair residuals")):
        rows = [
            (name, stats["count"], f"{stats['mean_abs']:.4f}",
             f"{stats['mean_signed']:+.4f}", f"{stats['max_abs']:.4f}")
            for name, stats in audit.get(table, {}).items()
        ]
        if rows:
            parts.append(format_table(
                ("pool" if table == "pools" else "pool|batch", "n",
                 "mean |resid|", "bias", "max |resid|"),
                rows, title=title,
            ))
    return "\n\n".join(parts)


def render_adapt(adapt: Mapping[str, Any]) -> str:
    """One line: which coefficient set ended up serving, and since when."""
    version = adapt.get("model_version", 0)
    origin = adapt.get("origin", "static")
    model_hash = adapt.get("model_hash", "static")
    swaps = adapt.get("swaps", 0)
    swapped = adapt.get("last_swap_epoch_s")
    when = (f", last swap at t={swapped:.0f}s" if swapped is not None
            else "")
    return (f"adaptation: serving model v{version} ({origin}, "
            f"hash {model_hash}), {swaps} swap(s){when}")


def render_report(report: Mapping[str, Any], *, limit: int = 8) -> str:
    """The ``repro.cli obs view`` rendering of one full run report."""
    parts: list[str] = []
    command = report.get("command")
    if command:
        parts.append("command: " + " ".join(str(c) for c in command))
    wall = report.get("wall_seconds")
    if wall is not None:
        parts.append(f"wall time: {wall:.1f}s")
    prov = report.get("provenance") or {}
    if prov:
        env = prov.get("env", {})
        knobs = (" with " + ", ".join(f"{k}={v}" for k, v in env.items())
                 if env else "")
        parts.append(f"environment: python {prov.get('python', '?')} on "
                     f"{prov.get('platform', '?')}{knobs}")
    experiments = report.get("experiments") or {}
    if experiments:
        parts.append(format_table(
            ("experiment", "seconds"),
            [(name, f"{seconds:.2f}")
             for name, seconds in sorted(experiments.items(),
                                         key=lambda kv: -kv[1])],
            title="experiments",
        ))
    summary = render_summary(report, limit=limit)
    if summary:
        parts.append(summary)
    audit = report.get("audit")
    if audit:
        parts.append(render_audit(audit))
    adapt = report.get("adapt")
    if adapt:
        parts.append(render_adapt(adapt))
    alerts = report.get("alerts")
    if alerts:
        parts.append(render_alerts(alerts, limit=limit))
    workers = report.get("workers") or []
    if len(workers) > 1:
        parts.append(f"({len(workers)} worker snapshots merged)")
    return "\n\n".join(parts)


def span_errors(metrics: Mapping[str, Any]) -> dict[str, int]:
    """Span paths that exited via exception -> error counts."""
    return {
        name[: -len(".errors")]: int(value)
        for name, value in metrics.get("counters", {}).items()
        if name.endswith(".errors")
        and name[: -len(".errors")] in metrics.get("spans", {})
    }


def render_summary(report_or_metrics: Mapping[str, Any],
                   *, limit: int = 8) -> str:
    """The opt-in human summary: top spans, cache ratios, key counters."""
    metrics = report_or_metrics.get("metrics", report_or_metrics)
    parts: list[str] = []

    spans = top_spans(metrics, limit)
    if spans:
        errors = span_errors(metrics)
        parts.append(format_table(
            ("span", "count", "total s", "max s", "errors"),
            [(path, count, total, worst, errors.get(path, 0))
             for path, count, total, worst in spans],
            title="top spans",
        ))

    ratios = cache_ratios(metrics)
    counters = metrics.get("counters", {})
    if ratios:
        rows = []
        if "smt.diskcache" in ratios:
            rows.append((
                "persistent disk cache",
                counters.get("smt.diskcache.hits", 0),
                counters.get("smt.diskcache.misses", 0),
                f"{ratios['smt.diskcache']:.1%}",
            ))
        if "smt.simulator.memo" in ratios:
            rows.append((
                "in-memory memo",
                counters.get("smt.simulator.memo_hits", 0),
                counters.get("smt.simulator.requests", 0)
                - counters.get("smt.simulator.memo_hits", 0),
                f"{ratios['smt.simulator.memo']:.1%}",
            ))
        parts.append(format_table(
            ("cache", "hits", "misses", "hit rate"), rows,
            title="solve caches",
        ))

    interesting = [
        (name, value) for name, value in sorted(counters.items())
        if not name.startswith(("smt.diskcache.", "smt.simulator."))
    ]
    if interesting:
        parts.append(format_table(("counter", "value"), interesting,
                                  title="counters"))
    if not parts:
        return "no metrics recorded"
    return "\n\n".join(parts)
