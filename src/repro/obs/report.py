"""Machine-readable run reports and the human summary table.

A *run report* is one JSON document describing everything a pipeline
invocation did: the merged metrics snapshot, per-worker sub-snapshots
(so cross-process aggregation stays auditable), per-experiment wall
times, and the command line. The experiment runner writes one with
``--metrics-out PATH``; setting ``SMITE_METRICS_OUT`` does the same for
any entry point that calls :func:`maybe_write_env_report` (the runner
and the benchmark harness both do).

``scripts/bench_regress.py`` consumes these reports to attribute a
throughput regression to a phase: the top spans and the cache ratios
say *where* the time went, not just that it grew.
"""

from __future__ import annotations

import json
import sys
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.tables import format_table
from repro.obs.registry import snapshot

__all__ = [
    "ENV_METRICS_OUT",
    "SCHEMA_VERSION",
    "build_report",
    "cache_ratios",
    "env_metrics_path",
    "maybe_write_env_report",
    "render_summary",
    "top_spans",
    "write_report",
]

SCHEMA_VERSION = 1
ENV_METRICS_OUT = "SMITE_METRICS_OUT"


def build_report(
    *,
    command: Sequence[str] | None = None,
    wall_seconds: float | None = None,
    experiments: Mapping[str, float] | None = None,
    workers: Sequence[Mapping[str, Any]] | None = None,
    metrics: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble a run report around the (already merged) metrics snapshot.

    ``workers`` carries the per-worker sub-snapshots (each a dict with at
    least ``experiments`` and ``metrics`` keys); the top-level
    ``metrics`` must already contain their merged totals.
    """
    return {
        "schema": SCHEMA_VERSION,
        "generator": "repro.obs",
        "command": list(command) if command is not None else sys.argv,
        "wall_seconds": wall_seconds,
        "experiments": dict(experiments or {}),
        "workers": [dict(w) for w in (workers or [])],
        "metrics": dict(metrics) if metrics is not None else snapshot(),
    }


def write_report(path: str | Path, report: Mapping[str, Any]) -> Path:
    """Serialize a run report to ``path`` as stable, indented JSON."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def env_metrics_path() -> str | None:
    """The ``SMITE_METRICS_OUT`` destination, or None when unset/empty."""
    return os.environ.get(ENV_METRICS_OUT) or None


def maybe_write_env_report(**kwargs: Any) -> Path | None:
    """Write a report to ``SMITE_METRICS_OUT`` if the variable is set."""
    path = env_metrics_path()
    if path is None:
        return None
    return write_report(path, build_report(**kwargs))


# ----------------------------------------------------------------------
# Derived views

def top_spans(metrics: Mapping[str, Any],
              limit: int = 8) -> list[tuple[str, int, float, float]]:
    """(path, count, total_seconds, max_seconds) rows, busiest first."""
    rows = [
        (path, int(h["count"]), float(h["sum"]), float(h["max"]))
        for path, h in metrics.get("spans", {}).items()
    ]
    rows.sort(key=lambda r: -r[2])
    return rows[:limit]


def cache_ratios(metrics: Mapping[str, Any]) -> dict[str, float]:
    """Hit rates of the two solve caches (absent caches are omitted)."""
    counters = metrics.get("counters", {})
    ratios: dict[str, float] = {}
    disk_requests = counters.get("smt.diskcache.requests", 0)
    if disk_requests:
        ratios["smt.diskcache"] = (
            counters.get("smt.diskcache.hits", 0) / disk_requests
        )
    sim_requests = counters.get("smt.simulator.requests", 0)
    if sim_requests:
        ratios["smt.simulator.memo"] = (
            counters.get("smt.simulator.memo_hits", 0) / sim_requests
        )
    return ratios


def render_summary(report_or_metrics: Mapping[str, Any],
                   *, limit: int = 8) -> str:
    """The opt-in human summary: top spans, cache ratios, key counters."""
    metrics = report_or_metrics.get("metrics", report_or_metrics)
    parts: list[str] = []

    spans = top_spans(metrics, limit)
    if spans:
        parts.append(format_table(
            ("span", "count", "total s", "max s"),
            [(path, count, total, worst)
             for path, count, total, worst in spans],
            title="top spans",
        ))

    ratios = cache_ratios(metrics)
    counters = metrics.get("counters", {})
    if ratios:
        rows = []
        if "smt.diskcache" in ratios:
            rows.append((
                "persistent disk cache",
                counters.get("smt.diskcache.hits", 0),
                counters.get("smt.diskcache.misses", 0),
                f"{ratios['smt.diskcache']:.1%}",
            ))
        if "smt.simulator.memo" in ratios:
            rows.append((
                "in-memory memo",
                counters.get("smt.simulator.memo_hits", 0),
                counters.get("smt.simulator.requests", 0)
                - counters.get("smt.simulator.memo_hits", 0),
                f"{ratios['smt.simulator.memo']:.1%}",
            ))
        parts.append(format_table(
            ("cache", "hits", "misses", "hit rate"), rows,
            title="solve caches",
        ))

    interesting = [
        (name, value) for name, value in sorted(counters.items())
        if not name.startswith(("smt.diskcache.", "smt.simulator."))
    ]
    if interesting:
        parts.append(format_table(("counter", "value"), interesting,
                                  title="counters"))
    if not parts:
        return "no metrics recorded"
    return "\n\n".join(parts)
