"""Live telemetry: a bounded-ring, mergeable metric time series.

The registry (:mod:`repro.obs.registry`) answers "what happened over the
whole run"; this module answers "what is happening *now*". A
:class:`TelemetrySeries` records frames — point-in-time samples of
selected counters, gauges, histogram percentiles, and alert states — at
a fixed cadence on whatever clock the caller drives it with: the
simulated event clock for replays (the engine ticks it at epoch
boundaries), the wall clock for the network API server.

Frames follow the registry's merge discipline so shard series fold
correctly: counter channels hold *cumulative* totals and add across
processes, gauge channels keep the last value set, and frames from
different workers sampled at the same tick fold into one frame. Two
replays of the same trace therefore produce byte-identical merged
series regardless of replay strategy or sharding — the parity tests
compare the JSON dumps directly.

Like the tracer, sampling is opt-in through a module-global series
(:func:`install` / ``--telemetry-out`` / ``SMITE_TELEMETRY_OUT``); when
no series is installed the per-epoch hook is a single ``None`` check.

Exports: :func:`write_jsonl` (one frame per line, tailed by
``repro.cli obs top``) and :func:`write_openmetrics`
(OpenMetrics/Prometheus text, picked for ``.prom``/``.om`` paths).
"""

from __future__ import annotations

import json
import math
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.obs.registry import MetricsRegistry, counter, get_registry

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_INTERVAL_S",
    "ENV_TELEMETRY_INTERVAL",
    "ENV_TELEMETRY_LIMIT",
    "ENV_TELEMETRY_OUT",
    "TelemetrySeries",
    "active",
    "env_telemetry_path",
    "install",
    "is_active",
    "load_jsonl",
    "maybe_install_env_sampler",
    "maybe_sample",
    "maybe_write_env_telemetry",
    "render_top",
    "sampling",
    "sparkline",
    "uninstall",
    "write_jsonl",
    "write_openmetrics",
    "write_telemetry",
]

#: Environment variable naming the telemetry export path; when set,
#: ``repro.cli`` (and the pytest benchmark harness) install a sampler at
#: startup and write the series on exit, exactly like ``SMITE_TRACE_OUT``.
ENV_TELEMETRY_OUT = "SMITE_TELEMETRY_OUT"
#: Optional override of the sampling cadence in (sim or wall) seconds.
ENV_TELEMETRY_INTERVAL = "SMITE_TELEMETRY_INTERVAL"
#: Optional override of the frame ring capacity.
ENV_TELEMETRY_LIMIT = "SMITE_TELEMETRY_LIMIT"

#: Default cadence: one frame per serving epoch at the default epoch
#: width, and a sane wall-clock default for the API server.
DEFAULT_INTERVAL_S = 300.0
#: Frames kept in the bounded ring; a day-long replay at the default
#: cadence emits 288, so the default never drops in practice.
DEFAULT_CAPACITY = 10_000

#: File suffixes exported as OpenMetrics/Prometheus text instead of JSONL.
_OPENMETRICS_SUFFIXES = (".prom", ".om", ".openmetrics")


class TelemetrySeries:
    """A bounded, mergeable ring of telemetry frames.

    A frame is ``{"t": sample time, "counters": {...}, "gauges": {...},
    "alerts": {...}}``. Counter channels are cumulative (deltas are a
    view, :meth:`deltas`), gauge and alert channels are point-in-time.
    Tracked registry instruments (:meth:`track_counter` and friends) are
    read at every sample; callers layer run-specific channels on top
    through the ``counters=``/``gauges=`` arguments of :meth:`sample`.
    """

    def __init__(
        self,
        interval_s: float = DEFAULT_INTERVAL_S,
        capacity: int = DEFAULT_CAPACITY,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if interval_s <= 0.0:
            raise ValueError(
                f"telemetry interval must be positive, got {interval_s}"
            )
        if capacity < 1:
            raise ValueError(
                f"telemetry capacity must be >= 1, got {capacity}"
            )
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self._registry = registry
        self._frames: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self._counter_tracks: list[str] = []
        self._gauge_tracks: list[str] = []
        self._pct_tracks: list[tuple[str, float]] = []
        self._next_due = self.interval_s
        self._drained = 0
        self.emitted = 0
        self.dropped = 0

    # -- channel selection ---------------------------------------------

    def track_counter(self, name: str) -> None:
        """Read registry counter ``name`` into every frame (cumulative)."""
        if name not in self._counter_tracks:
            self._counter_tracks.append(name)

    def track_gauge(self, name: str) -> None:
        """Read registry gauge ``name`` into every frame (skipped while
        unset)."""
        if name not in self._gauge_tracks:
            self._gauge_tracks.append(name)

    def track_percentile(self, name: str, p: float) -> None:
        """Read the ``p``-th percentile of registry histogram ``name``
        into every frame as the gauge channel ``{name}.p{p}``."""
        key = (name, float(p))
        if key not in self._pct_tracks:
            self._pct_tracks.append(key)

    # -- sampling -------------------------------------------------------

    def peek(
        self,
        time_s: float,
        *,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        alerts: Mapping[str, float] | None = None,
    ) -> dict[str, Any]:
        """Build (but do not record) the frame :meth:`sample` would add."""
        registry = self._registry or get_registry()
        frame_counters: dict[str, float] = {}
        frame_gauges: dict[str, float] = {}
        for name in self._counter_tracks:
            frame_counters[name] = float(registry.counter(name).value)
        for name in self._gauge_tracks:
            value = registry.gauge(name).value
            if value is not None:
                frame_gauges[name] = float(value)
        for name, p in self._pct_tracks:
            hist = registry.histogram(name)
            if hist.count:
                frame_gauges[f"{name}.p{p:g}"] = float(hist.percentile(p))
        if counters:
            frame_counters.update(
                (name, float(value)) for name, value in counters.items()
            )
        if gauges:
            frame_gauges.update(
                (name, float(value)) for name, value in gauges.items()
            )
        return {
            "t": float(time_s),
            "counters": frame_counters,
            "gauges": frame_gauges,
            "alerts": (
                {name: float(state) for name, state in alerts.items()}
                if alerts else {}
            ),
        }

    def sample(
        self,
        time_s: float,
        *,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        alerts: Mapping[str, float] | None = None,
    ) -> dict[str, Any]:
        """Record one frame at ``time_s`` and return it."""
        frame = self.peek(
            time_s, counters=counters, gauges=gauges, alerts=alerts,
        )
        with self._lock:
            self._append(frame)
            self.emitted += 1
        counter("serve.telemetry.samples").inc()
        return frame

    def maybe_sample(
        self,
        time_s: float,
        *,
        counters: Mapping[str, float] | None = None,
        gauges: Mapping[str, float] | None = None,
        alerts: Mapping[str, float] | None = None,
    ) -> dict[str, Any] | None:
        """Record a frame when ``time_s`` crosses the cadence grid.

        The caller ticks this at every natural boundary of its clock
        (epoch ends on the simulated clock); a frame is recorded when
        the tick reaches the next multiple of :attr:`interval_s`, so
        every replay strategy samples at identical times.
        """
        if time_s + 1e-9 < self._next_due:
            return None
        self._next_due = self.interval_s * (
            math.floor(time_s / self.interval_s + 1e-9) + 1
        )
        return self.sample(
            time_s, counters=counters, gauges=gauges, alerts=alerts,
        )

    def _append(self, frame: dict[str, Any]) -> None:
        # Frames arrive in nondecreasing time order from any one
        # process; an equal-time frame folds instead of appending.
        if self._frames and self._frames[-1]["t"] == frame["t"]:
            _fold_frame(self._frames[-1], frame)
            return
        self._frames.append(frame)
        while len(self._frames) > self.capacity:
            self._frames.pop(0)
            self.dropped += 1
            self._drained = max(0, self._drained - 1)

    # -- views ----------------------------------------------------------

    @property
    def frames(self) -> tuple[dict[str, Any], ...]:
        with self._lock:
            return tuple(self._frames)

    def tail(self, n: int) -> list[dict[str, Any]]:
        """The most recent ``n`` frames (the `metrics` API op's view)."""
        with self._lock:
            return [dict(f) for f in self._frames[-n:]]

    def drain_new(self) -> list[dict[str, Any]]:
        """Frames recorded since the last drain (for pipe streaming).

        Frames stay in the ring for local export; the drain cursor only
        marks what has already been shipped to a parent process.
        """
        with self._lock:
            fresh = self._frames[self._drained:]
            self._drained = len(self._frames)
            return [dict(f) for f in fresh]

    def deltas(self) -> list[dict[str, Any]]:
        """Per-frame view with counter channels as successive deltas."""
        out: list[dict[str, Any]] = []
        previous: dict[str, float] = {}
        for frame in self.frames:
            row = dict(frame)
            row["counters"] = {
                name: value - previous.get(name, 0.0)
                for name, value in frame["counters"].items()
            }
            previous = frame["counters"]
            out.append(row)
        return out

    # -- merge discipline ----------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able dict another series (or file) can merge/load."""
        with self._lock:
            return {
                "interval_s": self.interval_s,
                "emitted": self.emitted,
                "dropped": self.dropped,
                "frames": [dict(f) for f in self._frames],
            }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a snapshot in: frames sharing a sample time combine
        (counters add, gauges and alert states last-set wins), others
        interleave by time. Mirrors the registry's merge semantics so a
        shard's series folds into the parent's without double counting.
        """
        incoming = snap.get("frames", [])
        if not incoming:
            return
        with self._lock:
            by_time = {frame["t"]: frame for frame in self._frames}
            for frame in incoming:
                mine = by_time.get(frame["t"])
                if mine is not None:
                    _fold_frame(mine, frame)
                    continue
                copy = {
                    "t": float(frame["t"]),
                    "counters": dict(frame.get("counters", {})),
                    "gauges": dict(frame.get("gauges", {})),
                    "alerts": dict(frame.get("alerts", {})),
                }
                by_time[copy["t"]] = copy
                self._frames.append(copy)
                self.emitted += 1
            self._frames.sort(key=lambda f: f["t"])
            while len(self._frames) > self.capacity:
                self._frames.pop(0)
                self.dropped += 1
                self._drained = max(0, self._drained - 1)


def _fold_frame(mine: dict[str, Any], theirs: Mapping[str, Any]) -> None:
    for name, value in theirs.get("counters", {}).items():
        mine["counters"][name] = (
            mine["counters"].get(name, 0.0) + float(value)
        )
    mine["gauges"].update(theirs.get("gauges", {}))
    mine["alerts"].update(theirs.get("alerts", {}))


# -- the module-global sampler -----------------------------------------

_ACTIVE: TelemetrySeries | None = None
_STATE_LOCK = threading.Lock()


def _track_default(series: TelemetrySeries) -> None:
    """The standard serving selection: every channel here is updated at
    the same clock points by every replay strategy, so sampled series
    stay byte-identical across scalar/vector/sharded runs."""
    series.track_counter("serve.slo.windows")
    series.track_counter("serve.alert.firings")
    series.track_counter("serve.alert.resolves")
    series.track_gauge("serve.engine.running")
    series.track_gauge("serve.slo.violation_rate")
    series.track_gauge("serve.audit.drift")
    series.track_gauge("serve.adapt.model_version")
    series.track_gauge("serve.alert.active")
    series.track_gauge("serve.api.queue_depth")
    series.track_percentile("serve.api.batch_occupancy", 95.0)


def install(
    interval_s: float = DEFAULT_INTERVAL_S,
    capacity: int = DEFAULT_CAPACITY,
    *,
    track_default: bool = True,
) -> TelemetrySeries:
    """Install the process-wide telemetry series and return it."""
    global _ACTIVE
    series = TelemetrySeries(interval_s, capacity)
    if track_default:
        _track_default(series)
    with _STATE_LOCK:
        _ACTIVE = series
    return series


def uninstall() -> TelemetrySeries | None:
    """Remove and return the installed series (None when absent)."""
    global _ACTIVE
    with _STATE_LOCK:
        series, _ACTIVE = _ACTIVE, None
    return series


def active() -> TelemetrySeries | None:
    """The installed process-wide series, or None when sampling is off."""
    return _ACTIVE


def is_active() -> bool:
    """Whether a process-wide telemetry series is installed."""
    return _ACTIVE is not None


def maybe_sample(
    time_s: float,
    *,
    counters: Mapping[str, float] | None = None,
    gauges: Mapping[str, float] | None = None,
    alerts: Mapping[str, float] | None = None,
) -> dict[str, Any] | None:
    """Cadence-gated sample on the installed series; no-op when off."""
    series = _ACTIVE
    if series is None:
        return None
    return series.maybe_sample(
        time_s, counters=counters, gauges=gauges, alerts=alerts,
    )


@contextmanager
def sampling(
    interval_s: float = DEFAULT_INTERVAL_S,
    capacity: int = DEFAULT_CAPACITY,
) -> Iterator[TelemetrySeries]:
    """Scoped installation, for tests and library callers."""
    series = install(interval_s, capacity)
    try:
        yield series
    finally:
        uninstall()


# -- environment plumbing ----------------------------------------------

def env_telemetry_path() -> Path | None:
    """The SMITE_TELEMETRY_OUT destination, or None when unset."""
    raw = os.environ.get(ENV_TELEMETRY_OUT, "").strip()
    return Path(raw) if raw else None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def maybe_install_env_sampler() -> bool:
    """Install a sampler when ``SMITE_TELEMETRY_OUT`` is set; idempotent."""
    if env_telemetry_path() is None or is_active():
        return False
    install(
        _env_float(ENV_TELEMETRY_INTERVAL, DEFAULT_INTERVAL_S),
        int(_env_float(ENV_TELEMETRY_LIMIT, DEFAULT_CAPACITY)),
    )
    return True


def maybe_write_env_telemetry() -> Path | None:
    """Uninstall the env-installed sampler and export it, if any."""
    path = env_telemetry_path()
    if path is None:
        return None
    series = uninstall()
    if series is None:
        return None
    write_telemetry(path, series)
    return path


# -- export -------------------------------------------------------------

def write_telemetry(path: str | Path, series: TelemetrySeries) -> Path:
    """Export by suffix: ``.prom``/``.om`` get OpenMetrics text, anything
    else the JSONL stream ``obs top`` tails."""
    path = Path(path)
    if path.suffix.lower() in _OPENMETRICS_SUFFIXES:
        return write_openmetrics(path, series)
    return write_jsonl(path, series)


def write_jsonl(path: str | Path, series: TelemetrySeries) -> Path:
    """One meta line, then one JSON frame per line (tailable)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snap = series.snapshot()
    with path.open("w", encoding="utf-8") as fh:
        meta = {
            "meta": {
                "version": 1,
                "interval_s": snap["interval_s"],
                "emitted": snap["emitted"],
                "dropped": snap["dropped"],
            }
        }
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        for frame in snap["frames"]:
            fh.write(json.dumps(frame, sort_keys=True) + "\n")
    return path


def load_jsonl(path: str | Path) -> dict[str, Any]:
    """Read a JSONL export (or tail-in-progress) back to a snapshot."""
    frames: list[dict[str, Any]] = []
    meta: dict[str, Any] = {}
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # a partially written tail line
            if "meta" in row:
                meta = row["meta"]
            elif "t" in row:
                frames.append(row)
    return {
        "interval_s": meta.get("interval_s", DEFAULT_INTERVAL_S),
        "emitted": meta.get("emitted", len(frames)),
        "dropped": meta.get("dropped", 0),
        "frames": frames,
    }


def _metric_name(name: str) -> str:
    out = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return "smite_" + out.strip("_")


def write_openmetrics(path: str | Path, series: TelemetrySeries) -> Path:
    """OpenMetrics / Prometheus text exposition of the whole series.

    Counter channels render as ``<name>_total`` with per-frame
    timestamps; gauge channels as gauges; alert states as the labelled
    ``smite_alert_firing`` gauge family (1 while firing).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    frames = series.snapshot()["frames"]
    counters: dict[str, list[tuple[float, float]]] = {}
    gauges: dict[str, list[tuple[float, float]]] = {}
    alerts: dict[str, list[tuple[float, float]]] = {}
    for frame in frames:
        t = frame["t"]
        for name, value in frame.get("counters", {}).items():
            counters.setdefault(name, []).append((t, value))
        for name, value in frame.get("gauges", {}).items():
            gauges.setdefault(name, []).append((t, value))
        for name, state in frame.get("alerts", {}).items():
            alerts.setdefault(name, []).append((t, state))
    lines: list[str] = []
    for name in sorted(counters):
        family = _metric_name(name)
        lines.append(f"# TYPE {family} counter")
        lines.append(f"# HELP {family} cumulative total of {name}")
        for t, value in counters[name]:
            lines.append(f"{family}_total {value:g} {t:.3f}")
    for name in sorted(gauges):
        family = _metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"# HELP {family} point-in-time value of {name}")
        for t, value in gauges[name]:
            lines.append(f"{family} {value:g} {t:.3f}")
    if alerts:
        lines.append("# TYPE smite_alert_firing gauge")
        lines.append(
            "# HELP smite_alert_firing 1 while the alert rule is firing"
        )
        for name in sorted(alerts):
            for t, state in alerts[name]:
                lines.append(
                    f'smite_alert_firing{{rule="{name}"}} '
                    f"{state:g} {t:.3f}"
                )
    lines.append("# EOF")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


# -- terminal rendering (repro.cli obs top) -----------------------------

_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 24) -> str:
    """Render the last ``width`` values as a unicode sparkline."""
    if not values:
        return ""
    tail_values = values[-width:]
    lo, hi = min(tail_values), max(tail_values)
    if hi <= lo:
        return _SPARK[0] * len(tail_values)
    top = len(_SPARK) - 1
    return "".join(
        _SPARK[int((v - lo) / (hi - lo) * top)] for v in tail_values
    )


def render_top(snap: Mapping[str, Any], *, width: int = 24) -> str:
    """The ``obs top`` view of a telemetry snapshot: one sparkline row
    per counter rate and gauge, one state row per alert rule."""
    frames = list(snap.get("frames", []))
    interval = float(snap.get("interval_s", DEFAULT_INTERVAL_S))
    lines = [
        f"telemetry: {len(frames)} frame(s) @ {interval:g}s cadence"
        + (
            f", t in [{frames[0]['t']:g}, {frames[-1]['t']:g}]"
            if frames else ""
        )
    ]
    if not frames:
        lines.append("  (no frames yet)")
        return "\n".join(lines)
    counter_names = sorted(
        {name for f in frames for name in f.get("counters", {})}
    )
    gauge_names = sorted(
        {name for f in frames for name in f.get("gauges", {})}
    )
    alert_names = sorted(
        {name for f in frames for name in f.get("alerts", {})}
    )
    label_w = max(
        (len(n) for n in counter_names + gauge_names + alert_names),
        default=0,
    )
    for name in counter_names:
        series: list[float] = []
        previous = 0.0
        for frame in frames:
            value = float(frame.get("counters", {}).get(name, previous))
            series.append(max(0.0, value - previous))
            previous = value
        lines.append(
            f"  rate  {name:<{label_w}} {sparkline(series, width):<{width}}"
            f" last {series[-1]:g}/frame total {previous:g}"
        )
    for name in gauge_names:
        series = []
        last = 0.0
        for frame in frames:
            last = float(frame.get("gauges", {}).get(name, last))
            series.append(last)
        lines.append(
            f"  gauge {name:<{label_w}} {sparkline(series, width):<{width}}"
            f" last {series[-1]:g}"
        )
    for name in alert_names:
        fired = resolved = 0
        state = 0.0
        for frame in frames:
            value = frame.get("alerts", {}).get(name)
            if value is None:
                continue
            value = float(value)
            if value > 0.0 and state <= 0.0:
                fired += 1
            if value <= 0.0 and state > 0.0:
                resolved += 1
            state = value
        status = "FIRING" if state > 0.0 else "ok"
        lines.append(
            f"  alert {name:<{label_w}} {status:<{width}}"
            f" fired {fired}x resolved {resolved}x"
        )
    return "\n".join(lines)
