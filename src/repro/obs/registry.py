"""The metrics registry: counters, gauges, mergeable histograms.

One :class:`MetricsRegistry` holds every metric a process emits. All
mutation goes through a single registry lock — instrumentation sites
fire per *operation* (a solve, a cache probe), never per solver
iteration, so the lock is uncontended in practice and the overhead is a
dict lookup plus an integer add.

Aggregation across processes works by value, not by reference: a worker
calls :meth:`MetricsRegistry.snapshot` (a plain, JSON-able dict), ships
it back with its results, and the parent :meth:`MetricsRegistry.merge`\\ s
it in. Every metric kind is a commutative monoid under merge — counters
add, gauges keep the latest non-None value, histograms add bucket counts
— so merge order cannot change the totals.

Histograms are log-bucketed (≈19% wide buckets): exact ``count``,
``sum``, ``min``, ``max``, approximate percentiles, O(1) memory, and
loss-free merging. That trades percentile resolution (~±10%) for the
ability to merge worker snapshots without shipping raw samples.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "diff_snapshots",
    "gauge",
    "get_registry",
    "histogram",
    "merge",
    "reset",
    "snapshot",
]

#: Log-bucket base: each bucket spans a ~19% value range, bounding the
#: percentile interpolation error at ~±10%.
_BUCKET_BASE = 1.1892071150027210667  # 2 ** 0.25
_LOG_BASE = math.log(_BUCKET_BASE)

#: Bucket index for values <= 0 (durations and counts are non-negative;
#: zeros are legal and must not hit ``log``).
_UNDERFLOW = "u"


def _bucket_index(value: float) -> str:
    if value <= 0.0:
        return _UNDERFLOW
    return str(math.floor(math.log(value) / _LOG_BASE))


def _bucket_bounds(index: str) -> tuple[float, float]:
    if index == _UNDERFLOW:
        return (0.0, 0.0)
    i = int(index)
    return (_BUCKET_BASE ** i, _BUCKET_BASE ** (i + 1))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value; merge keeps the last one set."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value: float | None = None

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """A log-bucketed distribution with exact count/sum/min/max."""

    __slots__ = ("_lock", "count", "sum", "min", "max", "buckets")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[str, int] = {}

    def record(self, value: float, count: int = 1) -> None:
        """Record ``value``; ``count`` folds in that many identical samples
        in one locked update (the serving engine records one observation
        per *group* of identical servers, not one per server)."""
        if count < 1:
            return
        value = float(value)
        index = _bucket_index(value)
        with self._lock:
            self.count += count
            self.sum += value * count
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.buckets[index] = self.buckets.get(index, 0) + count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100]), exact at the ends.

        The answer is the geometric midpoint of the bucket holding the
        requested rank, clamped to the exact observed [min, max]; with
        ~19%-wide buckets the approximation error is ~±10%.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self.count == 0:
                return 0.0
            if p == 0.0:
                return self.min
            if p == 100.0:
                return self.max
            rank = p / 100.0 * (self.count - 1)
            ordered = sorted(
                self.buckets.items(),
                key=lambda kv: -math.inf if kv[0] == _UNDERFLOW else int(kv[0]),
            )
            seen = 0
            for index, count in ordered:
                seen += count
                if seen > rank:
                    low, high = _bucket_bounds(index)
                    mid = math.sqrt(low * high) if low > 0.0 else 0.0
                    return min(max(mid, self.min), self.max)
            return self.max

    def _merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        with self._lock:
            self.count += int(snap["count"])
            self.sum += float(snap["sum"])
            if snap["count"]:
                self.min = min(self.min, float(snap["min"]))
                self.max = max(self.max, float(snap["max"]))
            for index, count in snap["buckets"].items():
                self.buckets[index] = self.buckets.get(index, 0) + int(count)

    def _snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": dict(self.buckets),
        }


class MetricsRegistry:
    """All metrics of one process, by kind and name.

    ``spans`` is a separate histogram namespace so a span and a
    histogram may share a name without colliding and so reports can
    render them differently (spans in seconds, histograms unitless).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, Histogram] = {}

    # -- access-or-create ----------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(self._histograms, name, Histogram)

    def span_histogram(self, path: str) -> Histogram:
        return self._get(self._spans, path, Histogram)

    def _get(self, table: dict, name: str, factory):
        try:
            return table[name]
        except KeyError:
            pass
        with self._lock:
            return table.setdefault(name, factory(self._lock))

    # -- aggregation ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, JSON-able copy of every metric."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()
                           if g.value is not None},
                "histograms": {n: h._snapshot()
                               for n, h in self._histograms.items()},
                "spans": {n: h._snapshot() for n, h in self._spans.items()},
            }

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, hist_snap in snap.get("histograms", {}).items():
            self.histogram(name)._merge_snapshot(hist_snap)
        for name, hist_snap in snap.get("spans", {}).items():
            self.span_histogram(name)._merge_snapshot(hist_snap)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()


#: The process-default registry every instrumentation site writes to.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _DEFAULT


def counter(name: str) -> Counter:
    """A counter from the default registry."""
    return _DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    """A gauge from the default registry."""
    return _DEFAULT.gauge(name)


def histogram(name: str) -> Histogram:
    """A histogram from the default registry."""
    return _DEFAULT.histogram(name)


def snapshot() -> dict[str, Any]:
    """A JSON-ready snapshot of the default registry."""
    return _DEFAULT.snapshot()


def merge(snap: Mapping[str, Any]) -> None:
    """Merge a snapshot into the default registry."""
    _DEFAULT.merge(snap)


def reset() -> None:
    """Clear every instrument in the default registry."""
    _DEFAULT.reset()


def _diff_hist(old: Mapping[str, Any], new: Mapping[str, Any]) -> dict:
    buckets = {
        index: count - int(old.get("buckets", {}).get(index, 0))
        for index, count in new["buckets"].items()
        if count - int(old.get("buckets", {}).get(index, 0))
    }
    return {
        "count": int(new["count"]) - int(old.get("count", 0)),
        "sum": float(new["sum"]) - float(old.get("sum", 0.0)),
        # Cumulative extrema, not deltas: min only ever decreases and
        # max only increases, so re-merging them is idempotent and the
        # sum of shipped deltas folds to the same state as one final
        # whole-run snapshot.
        "min": new["min"],
        "max": new["max"],
        "buckets": buckets,
    }


def diff_snapshots(
    old: Mapping[str, Any], new: Mapping[str, Any],
) -> dict[str, Any]:
    """The mergeable delta between two snapshots of one registry.

    ``merge``-ing every delta a worker ships, in order, reproduces the
    exact registry state of merging only its final snapshot — this is
    what lets shard workers stream progress frames mid-run without
    changing the byte-stable end-of-run totals. ``old`` must be an
    earlier snapshot of the *same* registry as ``new``: counters and
    histogram/span tallies subtract (zero deltas are dropped), gauges
    pass through at their latest value (last-write-wins under merge).
    """
    counters = {
        name: value - int(old.get("counters", {}).get(name, 0))
        for name, value in new.get("counters", {}).items()
        if value - int(old.get("counters", {}).get(name, 0))
    }
    histograms = {}
    for name, hist_snap in new.get("histograms", {}).items():
        delta = _diff_hist(
            old.get("histograms", {}).get(name, {}), hist_snap
        )
        if delta["count"]:
            histograms[name] = delta
    spans = {}
    for name, hist_snap in new.get("spans", {}).items():
        delta = _diff_hist(old.get("spans", {}).get(name, {}), hist_snap)
        if delta["count"]:
            spans[name] = delta
    return {
        "counters": counters,
        "gauges": dict(new.get("gauges", {})),
        "histograms": histograms,
        "spans": spans,
    }
