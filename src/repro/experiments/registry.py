"""The experiment registry: paper identifier -> driver."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    fig02_fu_sencon,
    fig03_fu_utilization,
    fig04_mem_sencon,
    fig05_memport_utilization,
    fig06_summary,
    fig07_correlation,
    fig09_rulers,
    fig10_spec_smt,
    fig11_spec_cmp,
    fig12_cloudsuite,
    fig13_tail_latency,
    fig18_tco,
    figs_adaptive,
    figS_online_scaleout,
    table1,
)
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.fig14_17_scaleout import (
    run_fig14,
    run_fig15,
    run_fig16,
    run_fig17,
)

__all__ = ["EXPERIMENTS", "EXPERIMENT_FAMILIES", "all_experiment_ids",
           "get_experiment", "group_by_family", "run_experiment"]

ExperimentFn = Callable[[ExperimentConfig], ExperimentResult]

EXPERIMENTS: dict[str, ExperimentFn] = {
    "table1": table1.run,
    "fig2": fig02_fu_sencon.run,
    "fig3": fig03_fu_utilization.run,
    "fig4": fig04_mem_sencon.run,
    "fig5": fig05_memport_utilization.run,
    "fig6": fig06_summary.run,
    "fig7": fig07_correlation.run,
    "fig9": fig09_rulers.run,
    "fig10": fig10_spec_smt.run,
    "fig11": fig11_spec_cmp.run,
    "fig12": fig12_cloudsuite.run,
    "fig13": fig13_tail_latency.run,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "fig17": run_fig17,
    "fig18": fig18_tco.run,
    "figs_online": figS_online_scaleout.run,
    "figs_adaptive": figs_adaptive.run,
}


#: Experiments that share expensive in-process fixtures (the memoized
#: characterizations, predictors, and scale-out studies in
#: :mod:`repro.experiments.context` and the figure modules). A parallel
#: runner should keep each family in one worker: splitting a family
#: across processes recomputes its shared fixture once per process.
#: Ordered roughly most-expensive-first so a longest-job-first scheduler
#: can simply submit in declaration order.
EXPERIMENT_FAMILIES: tuple[tuple[str, ...], ...] = (
    ("fig14", "fig15", "fig18"),   # average-performance scale-out study
    ("fig16", "fig17"),            # tail-latency scale-out study
    ("figs_online",),              # online serving replay (own predictor)
    ("figs_adaptive",),            # drift/recalibration replay (own predictor)
    ("fig12", "fig13"),            # CloudSuite predictor + tail models
    ("fig10", "fig11"),            # SPEC accuracy predictors
    ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig9"),
    ("table1",),
)


def group_by_family(ids: list[str]) -> list[list[str]]:
    """Partition requested ids into fixture-sharing work units.

    Family-internal order follows the request; unknown ids become
    singleton groups (get_experiment will report them properly later).
    """
    groups: dict[int, list[str]] = {}
    family_of = {eid: i for i, family in enumerate(EXPERIMENT_FAMILIES)
                 for eid in family}
    extras: list[list[str]] = []
    for eid in ids:
        index = family_of.get(eid)
        if index is None:
            extras.append([eid])
        else:
            groups.setdefault(index, []).append(eid)
    return [groups[i] for i in sorted(groups)] + extras


def all_experiment_ids() -> list[str]:
    """Every registered experiment, in paper order."""
    return list(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentFn:
    """Look up an experiment's run function by its id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}"
        ) from exc


def run_experiment(experiment_id: str,
                   config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run one experiment by its paper identifier."""
    return get_experiment(experiment_id)(config or ExperimentConfig())
