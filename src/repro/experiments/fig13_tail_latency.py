"""Figure 13: 90th-percentile latency prediction accuracy.

The tail model (Equation 6) is trained from Ruler co-runs — profiled
degradation plus the percentile latency the discrete-event queue shows at
the degraded service rate — and evaluated on co-locations with the SPEC
testing set: given the measured degradation, predict t90 and compare to
the queue's measured t90. Web-Search and Data-Caching are evaluated
(Data-Serving and Graph-Analytics do not report percentile latency).
Paper: 4.61% and 6.17% average error.
"""

from __future__ import annotations

import zlib

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import smite_cloud, snb_simulator
from repro.queueing.des import simulate_fcfs_mm1
from repro.scheduler.scaleout import fit_tail_model
from repro.workloads.cloudsuite import cloudsuite_apps
from repro.workloads.spec import spec_even

__all__ = ["run"]

_PERCENTILE = 0.90


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 13: predicted vs measured tail latency under co-location."""
    simulator = snb_simulator()
    predictor = smite_cloud("smt")
    rows = []
    metrics: dict[str, float] = {}
    apps = [w for w in cloudsuite_apps() if w.reports_percentile_latency]
    batch_apps = spec_even()[:6] if config.fast else spec_even()
    threads = simulator.machine.cores

    for app in apps:
        tail_model = fit_tail_model(
            simulator, predictor, app,
            percentile=_PERCENTILE, des_jobs=config.des_jobs,
            seed=config.seed,
        )
        errors = []
        for batch in batch_apps:
            for instances in range(1, threads + 1):
                degradation = simulator.measure_server_degradation(
                    app.profile, batch, instances=instances, mode="smt",
                )
                degradation = min(max(degradation, 0.0), 0.95)
                degraded_mu = (1.0 - degradation) * app.service_rate_hz
                if degraded_mu <= app.arrival_rate_hz * 1.02:
                    continue  # queue (near-)unstable: latency unbounded
                seed = (config.seed
                        + zlib.crc32(f"{app.name}|{batch.name}|{instances}"
                                     .encode()) % 100_000)
                measured = simulate_fcfs_mm1(
                    app.arrival_rate_hz, degraded_mu,
                    jobs=config.des_jobs, seed=seed,
                ).percentile(_PERCENTILE)
                predicted = tail_model.predict_latency(degradation)
                errors.append(abs(predicted - measured) / measured)
        mean_error = sum(errors) / len(errors)
        rows.append((app.name, tail_model.baseline_latency(),
                     len(errors), mean_error))
        metrics[f"{app.name}_tail_error"] = mean_error
        metrics[f"{app.name}_fit_r2"] = tail_model.fit_r_squared
    metrics["paper_web_search_error"] = 0.0461
    metrics["paper_data_caching_error"] = 0.0617
    return ExperimentResult(
        experiment_id="fig13",
        title="90th-percentile latency prediction accuracy",
        paper_claim="the queueing model captures the degradation-to-tail "
                    "relationship: 4.61% (Web-Search) and 6.17% "
                    "(Data-Caching) average error",
        headers=("application", "baseline t90 (s)", "co-locations",
                 "mean relative error"),
        rows=tuple(rows),
        metrics=metrics,
    )
