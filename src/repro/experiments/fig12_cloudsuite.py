"""Figure 12: prediction accuracy on CloudSuite (SMT and CMP server runs).

The Sandy Bridge-EN server is half-loaded with a latency-sensitive
CloudSuite app (6 threads for SMT, 3 for CMP), and 1..6 (SMT) or 1..3
(CMP) instances of a batch application fill the remaining contexts or
cores. Models are trained on odd-numbered SPEC and tested against
even-numbered SPEC batch apps. Paper: SMiTe 1.79% (SMT) / 1.36% (CMP)
vs PMU 17.45% / 27.01%.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.evaluation import EvaluationReport, PairPrediction
from repro.core.pmu_model import PmuModel
from repro.core.predictor import SMiTe
from repro.core.trainer import build_pair_dataset, build_server_dataset
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import cloud_profiles, smite_cloud, snb_simulator
from repro.workloads.spec import spec_even, spec_odd

__all__ = ["run", "cloudsuite_reports"]


@lru_cache(maxsize=None)
def _smite_cloud_cmp() -> SMiTe:
    predictor = SMiTe(snb_simulator()).fit(spec_odd(), mode="cmp")
    predictor.fit_server(spec_odd())
    return predictor


@lru_cache(maxsize=None)
def _pmu_cloud(mode: str) -> PmuModel:
    simulator = snb_simulator()
    train = build_pair_dataset(simulator, spec_odd(), mode=mode)  # type: ignore[arg-type]
    model = PmuModel()
    model.fit([
        (simulator.read_solo_pmu(s.victim),
         simulator.read_solo_pmu(s.aggressor),
         s.degradation)
        for s in train
    ])
    return model


@lru_cache(maxsize=None)
def cloudsuite_reports(mode: str) -> tuple[EvaluationReport, EvaluationReport]:
    """(SMiTe report, PMU report) for one co-location mode."""
    simulator = snb_simulator()
    smite = smite_cloud(mode) if mode == "smt" else _smite_cloud_cmp()  # type: ignore[arg-type]
    pmu = _pmu_cloud(mode)
    total = simulator.machine.cores if mode == "smt" else simulator.machine.cores // 2
    dataset = build_server_dataset(
        simulator, cloud_profiles(), spec_even(), mode=mode,  # type: ignore[arg-type]
    )
    smite_preds = []
    pmu_preds = []
    for sample in dataset:
        label = f"{sample.batch_app.name} x{sample.instances}"
        smite_preds.append(PairPrediction(
            victim=sample.latency_app.name,
            aggressor=label,
            measured_degradation=sample.degradation,
            predicted_degradation=smite.predict_server(
                sample.latency_app, sample.batch_app,
                instances=sample.instances,
            ),
        ))
        pmu_full = pmu.predict(
            simulator.read_solo_pmu(sample.latency_app),
            simulator.read_solo_pmu(sample.batch_app),
        )
        pmu_preds.append(PairPrediction(
            victim=sample.latency_app.name,
            aggressor=label,
            measured_degradation=sample.degradation,
            predicted_degradation=pmu_full * sample.instances / total,
        ))
    return (
        EvaluationReport("smite", tuple(smite_preds)),
        EvaluationReport("pmu", tuple(pmu_preds)),
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 12: degradation prediction on the CloudSuite server mix."""
    rows = []
    metrics: dict[str, float] = {}
    for mode in ("smt", "cmp"):
        smite_report, pmu_report = cloudsuite_reports(mode)
        for victim in smite_report.victims:
            s_bench = smite_report.for_victim(victim)
            p_bench = pmu_report.for_victim(victim)
            rows.append((
                mode, victim,
                s_bench.min_measured_degradation,
                s_bench.mean_measured_degradation,
                s_bench.max_measured_degradation,
                p_bench.mean_error,
                s_bench.mean_error,
            ))
        metrics[f"smite_{mode}_error"] = smite_report.mean_error
        metrics[f"pmu_{mode}_error"] = pmu_report.mean_error
    metrics["paper_smite_smt_error"] = 0.0179
    metrics["paper_pmu_smt_error"] = 0.1745
    metrics["paper_smite_cmp_error"] = 0.0136
    metrics["paper_pmu_cmp_error"] = 0.2701
    return ExperimentResult(
        experiment_id="fig12",
        title="CloudSuite prediction accuracy (Sandy Bridge-EN servers)",
        paper_claim="SMiTe 1.79% (SMT) / 1.36% (CMP) average error vs "
                    "PMU 17.45% / 27.01%",
        headers=("mode", "application", "measured min", "measured mean",
                 "measured max", "PMU error", "SMiTe error"),
        rows=tuple(rows),
        metrics=metrics,
    )
