"""Figure 18: 3-year TCO improvement from SMiTe co-location.

The utilization improvements of the scale-out studies (average-performance
and tail-latency QoS) feed the Barroso–Hölzle TCO model: absorbed batch
instances decommission dedicated batch servers. Paper: up to 21.05%
TCO saving under average-performance QoS and up to 10.70% under the
90th-percentile-latency QoS.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.fig14_17_scaleout import _study_results
from repro.tco.analysis import ColocationTcoAnalysis
from repro.tco.model import TcoModel
from repro.tco.params import TcoParams

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 18: TCO savings implied by the scale-out utilization gains."""
    analysis = ColocationTcoAnalysis(model=TcoModel(params=TcoParams()))
    rows = []
    metrics: dict[str, float] = {}
    best: dict[str, float] = {"average": 0.0, "tail": 0.0}
    for metric_name in ("average", "tail"):
        results = _study_results(metric_name, config.fast, config.seed)
        for r in results:
            if r.policy != "smite":
                continue
            savings = analysis.savings_for(r.target.level,
                                           r.utilization_improvement)
            rows.append((
                metric_name,
                f"{r.target.level:.0%}",
                r.utilization_improvement,
                savings.servers_removed,
                savings.saving_fraction,
            ))
            key = f"tco_saving_{metric_name}_{int(r.target.level * 100)}"
            metrics[key] = savings.saving_fraction
            best[metric_name] = max(best[metric_name],
                                    savings.saving_fraction)
    metrics["max_saving_average_qos"] = best["average"]
    metrics["max_saving_tail_qos"] = best["tail"]
    metrics["paper_max_saving_average_qos"] = 0.2105
    metrics["paper_max_saving_tail_qos"] = 0.1070
    return ExperimentResult(
        experiment_id="fig18",
        title="3-year TCO improvement from SMiTe co-location",
        paper_claim="up to 21.05% TCO saving under average-performance QoS "
                    "and up to 10.70% under 90th-percentile-latency QoS",
        headers=("QoS metric", "QoS target", "utilization improvement",
                 "batch servers removed", "TCO saving"),
        rows=tuple(rows),
        metrics=metrics,
    )
