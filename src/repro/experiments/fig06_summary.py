"""Figure 6: the full sensitivity/contentiousness summary.

All applications x all seven dimensions, both Sen and Con — the heatmap
the paper condenses its characterization into. The headline check is the
large variance both within a dimension (across applications) and across
dimensions (for one application).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import characterized_population
from repro.rulers.base import Dimension

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 6: the Sen and Con heatmaps over all seven dimensions."""
    population = characterized_population()
    dims = tuple(Dimension)
    rows = []
    for name, char in sorted(population.items()):
        for dim in dims:
            rows.append((name, dim.name,
                         char.sensitivity[dim], char.contentiousness[dim]))

    names = sorted(population)
    sen_matrix = np.array([
        [population[n].sensitivity[d] for d in dims] for n in names
    ])
    # Variance across applications within each dimension, and across
    # dimensions within each application.
    across_apps = float(sen_matrix.std(axis=0).mean())
    across_dims = float(sen_matrix.std(axis=1).mean())
    return ExperimentResult(
        experiment_id="fig6",
        title="Sensitivity/contentiousness summary (all apps x 7 dimensions)",
        paper_claim="contention characteristics have a large variance both "
                    "for the same resource across applications and across "
                    "different resources",
        headers=("workload", "dimension", "sensitivity", "contentiousness"),
        rows=tuple(rows),
        metrics={
            "mean_std_across_apps": across_apps,
            "mean_std_across_dims": across_dims,
            "max_sensitivity": float(sen_matrix.max()),
            "min_sensitivity": float(sen_matrix.min()),
        },
    )
