"""Figure 10: prediction accuracy for SMT co-location on SPEC CPU2006.

Train on even-numbered benchmarks, test on odd-numbered pairs, on the
Ivy Bridge machine. Paper: SMiTe 2.80% mean absolute error vs. 13.55%
for the best PMU-counter model; measured per-benchmark degradations span
11.74%-53.14%.
"""

from __future__ import annotations

from repro.core.trainer import evaluate_model
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import (
    ivy_simulator,
    pmu_model_spec,
    smite_spec,
    spec_test_dataset,
)

__all__ = ["run", "evaluate_spec"]


def evaluate_spec(mode: str):
    """Shared SMiTe/PMU evaluation for Figures 10 (smt) and 11 (cmp)."""
    simulator = ivy_simulator()
    smite = smite_spec(mode)  # type: ignore[arg-type]
    pmu = pmu_model_spec(mode)  # type: ignore[arg-type]
    dataset = spec_test_dataset(mode)  # type: ignore[arg-type]
    smite_report = evaluate_model("smite", smite.predict, dataset)
    pmu_report = evaluate_model(
        "pmu",
        lambda v, a: pmu.predict(simulator.read_solo_pmu(v),
                                 simulator.read_solo_pmu(a)),
        dataset,
    )
    return smite_report, pmu_report


def _build_result(experiment_id: str, title: str, claim: str, mode: str,
                  paper_smite: float, paper_pmu: float) -> ExperimentResult:
    smite_report, pmu_report = evaluate_spec(mode)
    rows = []
    for victim in smite_report.victims:
        s_bench = smite_report.for_victim(victim)
        p_bench = pmu_report.for_victim(victim)
        rows.append((
            victim,
            s_bench.mean_measured_degradation,
            p_bench.mean_error,
            s_bench.mean_error,
        ))
    rows.append(("AVERAGE", float("nan"), pmu_report.mean_error,
                 smite_report.mean_error))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        paper_claim=claim,
        headers=("benchmark", "measured degradation",
                 "PMU prediction error", "SMiTe prediction error"),
        rows=tuple(rows),
        metrics={
            "smite_mean_error": smite_report.mean_error,
            "pmu_mean_error": pmu_report.mean_error,
            "pmu_to_smite_ratio": (pmu_report.mean_error
                                   / smite_report.mean_error),
            "paper_smite_error": paper_smite,
            "paper_pmu_error": paper_pmu,
        },
    )


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 10: SMT co-run degradation prediction accuracy on SPEC."""
    return _build_result(
        "fig10",
        "SMT co-location prediction accuracy (SPEC CPU2006, Ivy Bridge)",
        "SMiTe predicts with 2.80% average error vs 13.55% for the PMU "
        "model; measured degradations span 11.74%-53.14%",
        "smt",
        paper_smite=0.0280,
        paper_pmu=0.1355,
    )
