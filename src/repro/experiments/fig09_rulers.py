"""Figure 9: Ruler implementations and their design validation.

The Rulers themselves are the artifact here; the measurable claims are
(a) functional-unit Rulers put >99.99% of their FU dispatches on the
target port, and (b) memory-Ruler working-set size correlates linearly
with the degradation it inflicts (the paper reports Pearson 0.92 / 0.89 /
0.95 for L1 / L2 / L3) — the property that lets profiling sample only the
sensitivity curve's end points.
"""

from __future__ import annotations

from repro.analysis.stats import pearson
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import ivy_simulator, ivy_suite
from repro.rulers.suite import intensity_sweep
from repro.rulers.validation import validate_purity
from repro.workloads.spec import spec_even

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 9: the Rulers' port purity and intensity-response checks."""
    simulator = ivy_simulator()
    suite = ivy_suite()
    rows = []
    metrics: dict[str, float] = {}
    victims = spec_even()[:6] if config.fast else spec_even()

    for dimension in suite:
        ruler = suite[dimension]
        if dimension.is_functional_unit:
            purity = validate_purity(ruler, simulator).purity
            rows.append((ruler.name, "port purity", purity))
            metrics[f"purity_{dimension.value}"] = purity
        else:
            sweep = intensity_sweep(ruler, points=4)
            intensities = [r.intensity for r in sweep]
            correlations = []
            for victim in victims:
                degs = [
                    simulator.measure_pair(victim, r.profile, "smt").degradation_a
                    for r in sweep
                ]
                if max(degs) - min(degs) > 0.02:
                    correlations.append(pearson(intensities, degs))
            linearity = (sum(correlations) / len(correlations)
                         if correlations else 1.0)
            rows.append((ruler.name, "intensity linearity (pearson)",
                         linearity))
            metrics[f"linearity_{dimension.value}"] = linearity

    return ExperimentResult(
        experiment_id="fig9",
        title="Ruler design validation",
        paper_claim=">99.99% target-port utilization for FU rulers; "
                    "working-set/degradation Pearson 0.92 (L1), 0.89 (L2), "
                    "0.95 (L3) for memory rulers",
        headers=("ruler", "criterion", "value"),
        rows=tuple(rows),
        metrics=metrics,
    )
