"""Figure 5: CDFs of memory-port utilization over all SPEC pairs.

Ports 2 and 3 serve loads, port 4 serves stores; the paper finds the
store port heavily underutilized relative to the load ports.
"""

from __future__ import annotations

from repro.analysis.stats import empirical_cdf
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.fig03_fu_utilization import aggregate_port_samples

__all__ = ["run"]

_PORTS = (2, 3, 4)
_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 5: load/store port utilization across SPEC co-locations."""
    samples = aggregate_port_samples(ports=_PORTS)
    rows = []
    medians = {}
    for port in _PORTS:
        cdf = empirical_cdf(samples[port])
        medians[port] = cdf.median
        role = "load" if port in (2, 3) else "store"
        rows.append(tuple(
            [f"port {port} ({role})"] + [cdf.quantile(q) for q in _QUANTILES]
        ))
    load_median = (medians[2] + medians[3]) / 2.0
    return ExperimentResult(
        experiment_id="fig5",
        title="Memory-port utilization CDFs (all SPEC pairs)",
        paper_claim="the store port (port 4) is heavily underutilized "
                    "compared to the load ports (ports 2-3)",
        headers=("port",) + tuple(f"p{int(q * 100)}" for q in _QUANTILES),
        rows=tuple(rows),
        metrics={
            "median_load_ports": load_median,
            "median_store_port": medians[4],
            "store_to_load_ratio": (medians[4] / load_median
                                    if load_median else 0.0),
        },
    )
