"""Table I: machine specifications of the experimental setup."""

from __future__ import annotations

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.smt.params import MACHINES

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Table 1: the modeled machines' per-port uop-kind bindings."""
    rows = []
    for machine in MACHINES.values():
        rows.append((
            machine.processor,
            machine.microarchitecture,
            machine.kernel_version,
            machine.cores,
            machine.total_contexts,
            machine.l3.size_bytes // (1024 * 1024),
        ))
    return ExperimentResult(
        experiment_id="table1",
        title="Machine specifications",
        paper_claim="Intel Xeon E5-2420 (Sandy Bridge-EN) and "
                    "Intel i7-3770 (Ivy Bridge), kernel 3.8.0",
        headers=("processor", "microarchitecture", "kernel", "cores",
                 "smt contexts", "L3 (MB)"),
        rows=tuple(rows),
        metrics={"machines": float(len(rows))},
    )
