"""Figure 7: Pearson correlation among the 14 sharing dimensions.

The paper's Finding 9 — the empirical foundation of the decoupled
methodology: 97.96% of dimension pairs correlate below |r| = 0.80 and
the majority below 0.50.
"""

from __future__ import annotations

from repro.core.correlation import correlation_report
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import characterized_population

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 7: Finding 9's Sen-vs-Con correlation per dimension."""
    report = correlation_report(characterized_population())
    rows = [
        (a, b, r) for a, b, r in report.strongest_pairs(count=10)
    ]
    below_080 = report.fraction_below(0.80)
    below_050 = report.fraction_below(0.50)
    return ExperimentResult(
        experiment_id="fig7",
        title="Cross-dimension Pearson correlations (strongest 10 shown)",
        paper_claim="97.96% of dimension pairs have |r| < 0.80 and the "
                    "majority have |r| < 0.50 (Finding 9)",
        headers=("dimension A", "dimension B", "|pearson r|"),
        rows=tuple(rows),
        metrics={
            "fraction_below_080": below_080,
            "fraction_below_050": below_050,
            "dimension_pairs": float(len(report.off_diagonal())),
        },
    )
