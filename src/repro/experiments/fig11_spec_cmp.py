"""Figure 11: prediction accuracy for CMP co-location on SPEC CPU2006.

Same protocol as Figure 10 but with the pair on two different cores
(only L3 and memory bandwidth shared). Paper: SMiTe 2.80% vs PMU 9.43%.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.fig10_spec_smt import _build_result

__all__ = ["run"]


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 11: CMP (separate-core) degradation prediction on SPEC."""
    return _build_result(
        "fig11",
        "CMP co-location prediction accuracy (SPEC CPU2006, Ivy Bridge)",
        "SMiTe predicts CMP co-locations with 2.80% average error vs "
        "9.43% for the PMU model",
        "cmp",
        paper_smite=0.0280,
        paper_pmu=0.0943,
    )
