"""Figure 2: sensitivity and contentiousness on functional-unit resources.

Reports every workload's Sen/Con against the four FU Rulers and checks
the paper's findings: degradations span a wide range (Finding 1-2),
per-application variability across units (Finding 4), and CloudSuite
behaving like SPEC_INT on functional units (Finding 5).
"""

from __future__ import annotations

from repro.analysis.stats import pearson
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import characterized_population
from repro.rulers.base import Dimension
from repro.workloads.registry import get_profile
from repro.workloads.profile import Suite

__all__ = ["run"]

_FU_DIMS = (Dimension.FP_MUL, Dimension.FP_ADD, Dimension.FP_SHF,
            Dimension.INT_ADD)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 2: Sen/Con of every workload against the four FU Rulers."""
    population = characterized_population()
    rows = []
    max_sen = 0.0
    for name, char in sorted(population.items()):
        profile = get_profile(name)
        row = [name, profile.suite.value]
        for dim in _FU_DIMS:
            row.append(char.sensitivity[dim])
            row.append(char.contentiousness[dim])
            max_sen = max(max_sen, char.sensitivity[dim])
        rows.append(tuple(row))

    # Finding 5: CloudSuite FU contentiousness resembles SPEC_INT.
    int_mean = _suite_mean_fu_sen(population, Suite.SPEC_INT)
    fp_mean = _suite_mean_fu_sen(population, Suite.SPEC_FP)
    cloud_mean = _suite_mean_fu_sen(population, Suite.CLOUDSUITE)

    # Finding 3: per-dimension Sen/Con correlation across the population.
    sen_con_corr = max(
        abs(pearson(
            [population[n].sensitivity[d] for n in sorted(population)],
            [population[n].contentiousness[d] for n in sorted(population)],
        ))
        for d in _FU_DIMS
    )

    headers = ["workload", "suite"]
    for dim in _FU_DIMS:
        headers += [f"sen[{dim.name}]", f"con[{dim.name}]"]
    return ExperimentResult(
        experiment_id="fig2",
        title="Functional-unit sensitivity and contentiousness",
        paper_claim="applications suffer 5%-70% degradation from single-FU "
                    "contention, with high per-unit variability; CloudSuite "
                    "behaves like SPEC_INT on functional units",
        headers=tuple(headers),
        rows=tuple(rows),
        metrics={
            "max_fu_sensitivity": max_sen,
            "spec_int_mean_fu_sen": int_mean,
            "spec_fp_mean_fu_sen": fp_mean,
            "cloud_mean_fu_sen": cloud_mean,
            "cloud_vs_int_gap": abs(cloud_mean - int_mean),
            "cloud_vs_fp_gap": abs(cloud_mean - fp_mean),
            "max_sen_con_correlation": sen_con_corr,
        },
    )


def _suite_mean_fu_sen(population, suite: Suite) -> float:
    values = []
    for name, char in population.items():
        if get_profile(name).suite is suite:
            values.extend(char.sensitivity[d] for d in _FU_DIMS)
    return sum(values) / len(values) if values else 0.0
