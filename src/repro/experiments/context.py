"""Shared, memoized experiment fixtures.

Several experiments need the same expensive artifacts — characterized
populations, fitted predictors, the scale-out runs. This module caches
them per (config) so running the whole suite in one process does each
piece of work once. Everything here is deterministic given the config.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.characterize import Characterization, characterize_many
from repro.core.pmu_model import PmuModel
from repro.core.predictor import SMiTe
from repro.core.trainer import PairDataset, build_pair_dataset
from repro.rulers.base import RulerSuite
from repro.rulers.suite import default_suite
from repro.smt.diskcache import default_cache
from repro.smt.params import IVY_BRIDGE, SANDY_BRIDGE_EN
from repro.smt.simulator import PairMode, Simulator
from repro.workloads.cloudsuite import cloudsuite_apps
from repro.workloads.registry import all_profiles
from repro.workloads.spec import spec_even, spec_odd

__all__ = [
    "ivy_simulator",
    "snb_simulator",
    "ivy_suite",
    "snb_suite",
    "characterized_population",
    "smite_spec",
    "smite_cloud",
    "pmu_model_spec",
    "spec_test_dataset",
    "cloud_profiles",
]


@lru_cache(maxsize=None)
def ivy_simulator() -> Simulator:
    """The Ivy Bridge machine of the SPEC accuracy experiments."""
    return Simulator(IVY_BRIDGE, disk_cache=default_cache())


@lru_cache(maxsize=None)
def snb_simulator() -> Simulator:
    """The Sandy Bridge-EN machine of the CloudSuite/scale-out studies."""
    return Simulator(SANDY_BRIDGE_EN, disk_cache=default_cache())


@lru_cache(maxsize=None)
def ivy_suite() -> RulerSuite:
    """The default Ruler suite for the Ivy Bridge machine (cached)."""
    return default_suite(IVY_BRIDGE)


@lru_cache(maxsize=None)
def snb_suite() -> RulerSuite:
    """The default Ruler suite for the Sandy Bridge-EN machine (cached)."""
    return default_suite(SANDY_BRIDGE_EN)


@lru_cache(maxsize=None)
def characterized_population() -> dict[str, Characterization]:
    """Every SPEC + CloudSuite profile characterized on Ivy Bridge (SMT).

    This is the data behind Figures 2, 4, 6, and 7.
    """
    return characterize_many(ivy_simulator(), all_profiles(), ivy_suite(),
                             mode="smt")


@lru_cache(maxsize=None)
def smite_spec(mode: PairMode = "smt") -> SMiTe:
    """SMiTe trained on even-numbered SPEC (Figures 10-11 protocol)."""
    return SMiTe(ivy_simulator()).fit(spec_even(), mode=mode)


@lru_cache(maxsize=None)
def smite_cloud(mode: PairMode = "smt") -> SMiTe:
    """SMiTe trained on odd-numbered SPEC, server-calibrated (Figure 12+)."""
    predictor = SMiTe(snb_simulator()).fit(spec_odd(), mode=mode)
    predictor.fit_server(spec_odd())
    return predictor


@lru_cache(maxsize=None)
def spec_test_dataset(mode: PairMode = "smt") -> PairDataset:
    """All odd-numbered SPEC co-location measurements on Ivy Bridge."""
    return build_pair_dataset(ivy_simulator(), spec_odd(), mode=mode)


@lru_cache(maxsize=None)
def pmu_model_spec(mode: PairMode = "smt") -> PmuModel:
    """The Equation 9 baseline trained on even-numbered SPEC pairs."""
    simulator = ivy_simulator()
    train = build_pair_dataset(simulator, spec_even(), mode=mode)
    model = PmuModel()
    model.fit([
        (simulator.read_solo_pmu(s.victim),
         simulator.read_solo_pmu(s.aggressor),
         s.degradation)
        for s in train
    ])
    return model


def cloud_profiles():
    """The four CloudSuite profiles (latency-sensitive side)."""
    return [w.profile for w in cloudsuite_apps()]
