"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig10 fig11
    python -m repro.experiments.runner --all [--fast] [--json out.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.experiments.base import ExperimentConfig
from repro.experiments.registry import all_experiment_ids, run_experiment

__all__ = ["main"]


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="smite-experiments",
        description="Reproduce the SMiTe paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig10 fig14); "
                             "see --list")
    parser.add_argument("--all", action="store_true",
                        help="run every registered experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--fast", action="store_true",
                        help="shrink the expensive studies (CI mode)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--json", metavar="PATH",
                        help="also dump results (rows + metrics) as JSON")
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.list:
        for experiment_id in all_experiment_ids():
            print(experiment_id)
        return 0
    ids = all_experiment_ids() if args.all else args.experiments
    if not ids:
        print("nothing to run; pass experiment ids or --all (see --list)",
              file=sys.stderr)
        return 2

    config = ExperimentConfig(fast=args.fast, seed=args.seed)
    dumps = {}
    for experiment_id in ids:
        started = time.time()
        result = run_experiment(experiment_id, config)
        elapsed = time.time() - started
        print(result.render())
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
        dumps[experiment_id] = {
            "title": result.title,
            "paper_claim": result.paper_claim,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "metrics": dict(result.metrics),
        }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(dumps, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
