"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig10 fig11
    python -m repro.experiments.runner --all [--fast] [--json out.json]
    python -m repro.experiments.runner --all --jobs 4
    python -m repro.experiments.runner --all --metrics --metrics-out run.json

With ``--jobs N`` (or ``SMITE_JOBS=N``) experiments fan out over a
process pool. Workers share the persistent solve cache (atomic writes,
no locking needed), so the expensive fixed-point solves are computed
once cluster-wide even when several experiments need the same ones; a
warm cache makes re-runs nearly solver-free.

Every run can emit a machine-readable *run report* — per-experiment
span durations, solve-cache hit rates, and per-worker metric snapshots
merged back into one registry (see ``docs/OBSERVABILITY.md``). Write it
with ``--metrics-out PATH`` or by setting ``SMITE_METRICS_OUT``; print
the human summary (top spans, cache ratios) with ``--metrics``.

``--trace-out PATH`` (or ``SMITE_TRACE_OUT``) additionally records a
Chrome trace-event timeline of the run's spans — wall-clock only, and
only for work done in the runner process (``--jobs 1``); worker
processes do not forward trace events.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro import obs
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.registry import (
    all_experiment_ids,
    group_by_family,
    run_experiment,
)
from repro.obs import report as obs_report
from repro.obs import timeseries as obs_timeseries
from repro.obs import trace as obs_trace

__all__ = ["main"]

_EPILOG = (
    "All flags and SMITE_* environment variables are documented in one "
    "table in README.md ('Configuration reference')."
)


def _default_jobs() -> int:
    raw = os.environ.get("SMITE_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        print(f"ignoring invalid SMITE_JOBS={raw!r}", file=sys.stderr)
        return 1


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="smite-experiments",
        description="Reproduce the SMiTe paper's tables and figures.",
        epilog=_EPILOG,
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig10 fig14); "
                             "see --list")
    parser.add_argument("--all", action="store_true",
                        help="run every registered experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--fast", action="store_true",
                        help="shrink the expensive studies (CI mode)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--json", metavar="PATH",
                        help="also dump results (rows + metrics) as JSON")
    parser.add_argument("--jobs", "-j", type=int, default=_default_jobs(),
                        metavar="N",
                        help="worker processes (default: $SMITE_JOBS or 1)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persistent solve-cache directory "
                             "(default: $SMITE_CACHE_DIR or .smite_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent solve cache")
    parser.add_argument("--metrics", action="store_true",
                        help="print the run's metric summary "
                             "(top spans, cache hit rates)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        default=obs_report.env_metrics_path(),
                        help="write the machine-readable run report as JSON "
                             "(default: $SMITE_METRICS_OUT)")
    parser.add_argument("--trace-out", metavar="PATH",
                        default=obs_trace.env_trace_path(),
                        help="write a Chrome trace-event JSON timeline "
                             "(default: $SMITE_TRACE_OUT)")
    return parser.parse_args(argv)


def _run_one(experiment_id: str,
             config: ExperimentConfig) -> tuple[ExperimentResult, float]:
    """Run one experiment; module-level so worker processes can pickle it."""
    started = time.time()
    with obs.span(f"experiment.{experiment_id}"):
        result = run_experiment(experiment_id, config)
    return result, time.time() - started


def _run_group(
    ids: list[str], config: ExperimentConfig,
) -> tuple[list[tuple[ExperimentResult, float]], dict[str, Any]]:
    """Run one fixture-sharing family serially inside a worker.

    The worker's metrics registry is reset first and snapshotted after,
    so the returned snapshot is exactly this group's contribution even
    when the pool reuses a worker process for several groups.
    """
    obs.reset()
    outcomes = [_run_one(experiment_id, config) for experiment_id in ids]
    return outcomes, obs.snapshot()


def _apply_cache_env(args: argparse.Namespace) -> None:
    """Translate cache flags into the env vars the workers inherit."""
    if args.no_cache:
        os.environ["SMITE_NO_CACHE"] = "1"
    elif args.cache_dir is not None:
        os.environ["SMITE_CACHE_DIR"] = args.cache_dir


def main(argv: list[str] | None = None) -> int:
    """Entry point for the experiment runner CLI."""
    args = _parse_args(argv)
    if args.list:
        for experiment_id in all_experiment_ids():
            print(experiment_id)
        return 0
    ids = all_experiment_ids() if args.all else args.experiments
    if not ids:
        print("nothing to run; pass experiment ids or --all (see --list)",
              file=sys.stderr)
        return 2
    _apply_cache_env(args)

    config = ExperimentConfig(fast=args.fast, seed=args.seed)
    tracer = obs_trace.install() if args.trace_out else None
    obs_timeseries.maybe_install_env_sampler()
    jobs = max(1, args.jobs)
    groups = group_by_family(ids)
    obs.get_registry().gauge("runner.jobs").set(jobs)
    obs.get_registry().gauge("runner.experiments").set(len(ids))
    run_started = time.time()
    workers: list[dict[str, Any]] = []
    dumps = {}
    if jobs == 1 or len(groups) == 1:
        baseline = obs.snapshot()
        outcomes = {experiment_id: _run_one(experiment_id, config)
                    for experiment_id in ids}
        workers.append({"worker": 0, "experiments": list(ids),
                        "metrics": _snapshot_delta(baseline, obs.snapshot())})
    else:
        # One task per fixture-sharing family (splitting a family across
        # workers would recompute its shared fixtures per process); the
        # groups come back heaviest-first, keeping workers balanced.
        with ProcessPoolExecutor(max_workers=min(jobs, len(groups))) as pool:
            futures = [pool.submit(_run_group, group, config)
                       for group in groups]
            outcomes = {}
            for index, (group, future) in enumerate(zip(groups, futures)):
                group_outcomes, worker_snapshot = future.result()
                outcomes.update(zip(group, group_outcomes))
                obs.merge(worker_snapshot)
                workers.append({"worker": index, "experiments": list(group),
                                "metrics": worker_snapshot})
    for experiment_id in ids:
        result, elapsed = outcomes[experiment_id]
        print(result.render())
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
        dumps[experiment_id] = {
            "title": result.title,
            "paper_claim": result.paper_claim,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "metrics": dict(result.metrics),
        }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(dumps, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    if args.metrics:
        print(obs_report.render_summary(obs.snapshot()))
    if args.metrics_out:
        report = obs_report.build_report(
            wall_seconds=time.time() - run_started,
            experiments={experiment_id: outcomes[experiment_id][1]
                         for experiment_id in ids},
            workers=workers,
        )
        obs_report.write_report(args.metrics_out, report)
        print(f"wrote {args.metrics_out}")
    if tracer is not None:
        obs_trace.uninstall()
        trace_path = obs_trace.write_chrome_trace(args.trace_out, tracer)
        print(f"wrote {trace_path}")
    telemetry_path = obs_timeseries.maybe_write_env_telemetry()
    if telemetry_path is not None:
        print(f"wrote {telemetry_path}")
    return 0


def _snapshot_delta(baseline: dict[str, Any],
                    current: dict[str, Any]) -> dict[str, Any]:
    """The in-process "worker" view of a serial run: current - baseline.

    Counters subtract; gauges and distributions (whose buckets do not
    subtract meaningfully) are reported as-is — the serial baseline is
    empty in practice, the subtraction only matters when a caller embeds
    the runner after other instrumented work.
    """
    counters = {
        name: value - baseline.get("counters", {}).get(name, 0)
        for name, value in current.get("counters", {}).items()
    }
    return {
        "counters": {n: v for n, v in counters.items() if v},
        "gauges": dict(current.get("gauges", {})),
        "histograms": dict(current.get("histograms", {})),
        "spans": dict(current.get("spans", {})),
    }


if __name__ == "__main__":
    raise SystemExit(main())
