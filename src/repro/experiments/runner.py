"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner fig10 fig11
    python -m repro.experiments.runner --all [--fast] [--json out.json]
    python -m repro.experiments.runner --all --jobs 4

With ``--jobs N`` (or ``SMITE_JOBS=N``) experiments fan out over a
process pool. Workers share the persistent solve cache (atomic writes,
no locking needed), so the expensive fixed-point solves are computed
once cluster-wide even when several experiments need the same ones; a
warm cache makes re-runs nearly solver-free.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.registry import (
    all_experiment_ids,
    group_by_family,
    run_experiment,
)

__all__ = ["main"]


def _default_jobs() -> int:
    raw = os.environ.get("SMITE_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        print(f"ignoring invalid SMITE_JOBS={raw!r}", file=sys.stderr)
        return 1


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="smite-experiments",
        description="Reproduce the SMiTe paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="*",
                        help="experiment ids (e.g. fig10 fig14); "
                             "see --list")
    parser.add_argument("--all", action="store_true",
                        help="run every registered experiment")
    parser.add_argument("--list", action="store_true",
                        help="list experiment ids and exit")
    parser.add_argument("--fast", action="store_true",
                        help="shrink the expensive studies (CI mode)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--json", metavar="PATH",
                        help="also dump results (rows + metrics) as JSON")
    parser.add_argument("--jobs", "-j", type=int, default=_default_jobs(),
                        metavar="N",
                        help="worker processes (default: $SMITE_JOBS or 1)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persistent solve-cache directory "
                             "(default: $SMITE_CACHE_DIR or .smite_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent solve cache")
    return parser.parse_args(argv)


def _run_one(experiment_id: str,
             config: ExperimentConfig) -> tuple[ExperimentResult, float]:
    """Run one experiment; module-level so worker processes can pickle it."""
    started = time.time()
    result = run_experiment(experiment_id, config)
    return result, time.time() - started


def _run_group(
    ids: list[str], config: ExperimentConfig,
) -> list[tuple[ExperimentResult, float]]:
    """Run one fixture-sharing family serially inside a worker."""
    return [_run_one(experiment_id, config) for experiment_id in ids]


def _apply_cache_env(args: argparse.Namespace) -> None:
    """Translate cache flags into the env vars the workers inherit."""
    if args.no_cache:
        os.environ["SMITE_NO_CACHE"] = "1"
    elif args.cache_dir is not None:
        os.environ["SMITE_CACHE_DIR"] = args.cache_dir


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(argv)
    if args.list:
        for experiment_id in all_experiment_ids():
            print(experiment_id)
        return 0
    ids = all_experiment_ids() if args.all else args.experiments
    if not ids:
        print("nothing to run; pass experiment ids or --all (see --list)",
              file=sys.stderr)
        return 2
    _apply_cache_env(args)

    config = ExperimentConfig(fast=args.fast, seed=args.seed)
    jobs = max(1, args.jobs)
    groups = group_by_family(ids)
    dumps = {}
    if jobs == 1 or len(groups) == 1:
        outcomes = {experiment_id: _run_one(experiment_id, config)
                    for experiment_id in ids}
    else:
        # One task per fixture-sharing family (splitting a family across
        # workers would recompute its shared fixtures per process); the
        # groups come back heaviest-first, keeping workers balanced.
        with ProcessPoolExecutor(max_workers=min(jobs, len(groups))) as pool:
            futures = [pool.submit(_run_group, group, config)
                       for group in groups]
            outcomes = {
                experiment_id: outcome
                for group, future in zip(groups, futures)
                for experiment_id, outcome in zip(group, future.result())
            }
    for experiment_id in ids:
        result, elapsed = outcomes[experiment_id]
        print(result.render())
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
        dumps[experiment_id] = {
            "title": result.title,
            "paper_claim": result.paper_claim,
            "headers": list(result.headers),
            "rows": [list(row) for row in result.rows],
            "metrics": dict(result.metrics),
        }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(dumps, fh, indent=2, default=str)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
