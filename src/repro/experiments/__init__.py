"""Experiment drivers: one per table and figure of the paper's evaluation.

Every experiment is a callable registered under its paper identifier
(``table1``, ``fig2`` ... ``fig18``) that returns an
:class:`~repro.experiments.base.ExperimentResult` with the rows the paper
reports plus headline metrics. Run them all with::

    python -m repro.experiments.runner --all

or individually through :func:`repro.experiments.registry.run_experiment`.
"""

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.registry import (
    all_experiment_ids,
    get_experiment,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "all_experiment_ids",
    "get_experiment",
    "run_experiment",
]
