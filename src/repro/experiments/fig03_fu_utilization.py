"""Figure 3: CDFs of aggregated FU-port utilization over all SPEC pairs.

For every SPEC co-location pair on an SMT core, the two contexts'
UOPS_DISPATCHED_PORT counters are summed per port; the experiment reports
the distribution per port and checks Finding 6: ports 0 and 1 have
similar utilization distributions, distinctly different from port 5, and
SPEC_FP leans on ports 0/1 while SPEC_INT leans on port 5.
"""

from __future__ import annotations

import itertools

from repro.analysis.stats import empirical_cdf
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import ivy_simulator
from repro.workloads.spec import SPEC_CPU2006

__all__ = ["run", "aggregate_port_samples"]

_PORTS = (0, 1, 5)
_QUANTILES = (0.1, 0.25, 0.5, 0.75, 0.9)


def aggregate_port_samples(ports=_PORTS) -> dict[int, list[float]]:
    """Summed per-port utilization for every unordered SPEC pair."""
    simulator = ivy_simulator()
    samples: dict[int, list[float]] = {p: [] for p in ports}
    profiles = list(SPEC_CPU2006.values())
    for a, b in itertools.combinations_with_replacement(profiles, 2):
        result = simulator.run_pair(a, b, "smt")
        aggregated = result.aggregate_port_utilization
        for p in ports:
            samples[p].append(min(2.0, aggregated.get(p, 0.0)))
    return samples


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 3: FU-port utilization across SPEC SMT co-location pairs."""
    samples = aggregate_port_samples()
    rows = []
    medians = {}
    for port in _PORTS:
        cdf = empirical_cdf(samples[port])
        medians[port] = cdf.median
        rows.append(tuple(
            [f"port {port}"] + [cdf.quantile(q) for q in _QUANTILES]
        ))
    return ExperimentResult(
        experiment_id="fig3",
        title="Aggregated FU-port utilization CDFs (all SPEC pairs)",
        paper_claim="ports 0 and 1 have similar utilization distributions, "
                    "distinctly different from port 5 (Finding 6)",
        headers=("port",) + tuple(f"p{int(q * 100)}" for q in _QUANTILES),
        rows=tuple(rows),
        metrics={
            "median_port0": medians[0],
            "median_port1": medians[1],
            "median_port5": medians[5],
            "port0_port1_median_gap": abs(medians[0] - medians[1]),
            "port5_vs_port0_median_gap": abs(medians[5] - medians[0]),
        },
    )
