"""Supplementary figure: drift-triggered recalibration on a phase change.

The paper's model is fit once, offline, against a profile database that
is assumed fresh. Warehouse workloads are not so polite: binaries get
redeployed and a job named ``sphinx`` may suddenly behave like a
different program while the profile database still describes the old
build. This experiment manufactures exactly that failure: a third of
the way through the trace, every batch workload in the pool is swapped
for a look-alike (one turns much *more* contentious, two turn much
*less*), while the predictor's characterization cache still holds the
pre-shift profiles
(:meth:`~repro.core.predictor.SMiTe.seed_characterization`).

A static serving run rides the stale model to the end: it keeps placing
the hot impostor at the old generous cap (QoS violations every window)
and keeps the cold impostors at the old conservative cap (forgone
utilization). The adaptive run watches the same audited residual stream
through :mod:`repro.adapt`, detects the drift, refits the Sen x Con
regression online, and hot-swaps coefficients at epoch boundaries -- it
must finish with strictly fewer violated server-windows at
equal-or-better utilization gain.

The scenario is built from the safe-cap structure at the 88% QoS
target, not from raw contentiousness: the *cold* impostors are chosen
so their true curves saturate at the per-server instance limit with
margin below the budget (an aggressively learned model cannot ride them
into the violation edge), while the *hot* impostor is the mildest of
the low-cap profiles (its under-prediction window while the refitter is
still exploring freshly unlocked instance counts stays small).
"""

from __future__ import annotations

from functools import lru_cache

from repro.adapt import (
    AdaptationController,
    DriftPolicy,
    ModelRegistry,
    OnlineRefitter,
)
from repro.core.predictor import SMiTe
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import snb_simulator
from repro.obs import PredictionAudit
from repro.obs.alerts import AlertEngine, burn_rate_rule, drift_rule
from repro.scheduler.qos import QosTarget
from repro.serve import (
    PredictionService,
    ReplayOutcome,
    ServingEngine,
    WindowedSlo,
    phase_shift_trace,
    poisson_trace,
)
from repro.workloads.cloudsuite import cloudsuite_apps
from repro.workloads.spec import spec_even, spec_odd

__all__ = ["run"]

_QOS_LEVEL = 0.88
_EPOCH_S = 300.0
_WINDOW_S = 1_200.0
_DRIFT_BOUND = 0.03
#: SLO error budget on the violated-server-window fraction; the
#: multi-window burn-rate alert fires when both the fast (1-window) and
#: slow (2-window) means burn it at twice the sustainable rate. Sized so
#: the alert trips on the first post-shift window close -- i.e. before
#: the drift-triggered coefficient swap that follows it -- and resolves
#: once recalibration pulls the violation rate back under the line.
_ALERT_BUDGET = 0.03
_BURN_FACTOR = 2.0


def _safe_cap(predictor: SMiTe, apps, profile, budget: float,
              max_instances: int = 6) -> int:
    """Largest batch count every latency app tolerates within budget."""
    cap = 0
    for count in range(1, max_instances + 1):
        worst = max(
            predictor.predict_server(app.profile, profile, instances=count)
            for app in apps
        )
        if worst > budget:
            break
        cap = count
    return cap


def _mean_contentiousness(predictor: SMiTe, profile) -> float:
    char = predictor.characterization(profile)
    values = [char.contentiousness[d] for d in char.dimensions]
    return sum(values) / len(values)


@lru_cache(maxsize=None)
def _study(fast: bool, seed: int) -> dict[str, object]:
    simulator = snb_simulator()
    predictor = SMiTe(simulator).fit(
        spec_odd()[:8] if fast else spec_odd(), mode="smt",
    )
    apps = cloudsuite_apps()[:2] if fast else cloudsuite_apps()
    candidates = spec_even()[:6] if fast else spec_even()

    target = QosTarget.average(_QOS_LEVEL)
    budget = target.degradation_budget()
    ranked = sorted(
        candidates,
        key=lambda p: (_safe_cap(predictor, apps, p, budget),
                       _mean_contentiousness(predictor, p)),
    )
    # Low-cap half: contentious profiles the scheduler places sparingly.
    # High-cap half: mild profiles whose true curves saturate at the
    # instance limit with margin below the budget.
    lows, highs = ranked[:3], ranked[-3:]
    # Hot impostor = the *mildest* of the low-cap profiles, so the
    # learned model's extrapolation error at freshly unlocked counts is
    # bounded; the other lows anchor the cold side of the swap.
    hot_impostor, base_cold1, base_cold2 = lows[0], lows[1], lows[2]
    # Hot base = the high-cap profile closest to the budget edge (its
    # generous stale cap is the one the hot impostor then abuses); the
    # fully saturating highs arrive as cold impostors.
    base_hot, cold_impostor1, cold_impostor2 = highs[0], highs[1], highs[2]
    pool = [base_hot, base_cold1, base_cold2]

    horizon_s = 14_400.0 if fast else 43_200.0
    shift_s = horizon_s / 3
    base = poisson_trace(pool, rate_per_s=0.02, horizon_s=horizon_s,
                         seed=seed)
    trace = phase_shift_trace(
        base,
        {
            base_hot.name: hot_impostor,
            base_cold1.name: cold_impostor1,
            base_cold2.name: cold_impostor2,
        },
        shift_s=shift_s,
    )
    # The stale profile database: the impostors are *scored* by the
    # simulator as themselves, but *predicted* from the characterizations
    # of the workloads they replaced.
    for impostor, replaced in (
        (hot_impostor, base_hot),
        (cold_impostor1, base_cold1),
        (cold_impostor2, base_cold2),
    ):
        predictor.seed_characterization(
            impostor, predictor.characterization(replaced))

    outcomes: dict[str, ReplayOutcome] = {}
    registry_snapshot: dict[str, object] = {}
    alert_snapshots: dict[str, dict[str, object]] = {}
    swap_epochs: list[float] = []
    for policy in ("static", "adaptive"):
        audit = PredictionAudit()
        alerts = AlertEngine((
            burn_rate_rule(budget=_ALERT_BUDGET, factor=_BURN_FACTOR,
                           fast_windows=1, slow_windows=2),
            drift_rule(bound=_DRIFT_BOUND),
        ))
        slo = WindowedSlo(_WINDOW_S, target, audit=audit, alerts=alerts)
        service = PredictionService(predictor, target)
        controller = None
        if policy == "adaptive":
            refitter = OnlineRefitter(predictor, window=64,
                                      holdout_every=4, min_samples=12)
            registry = ModelRegistry(service, predictor)
            controller = AdaptationController(
                refitter, registry, slo,
                policy=DriftPolicy(drift_bound=_DRIFT_BOUND,
                                   hysteresis=1, cooldown=1),
            )
        engine = ServingEngine(
            simulator, apps, service,
            servers_per_app=3, epoch_s=_EPOCH_S, window_s=_WINDOW_S,
            slo=slo, audit=audit, adaptation=controller,
        )
        outcomes[policy] = engine.replay(trace)
        alert_snapshots[policy] = alerts.snapshot()
        if policy == "adaptive":
            registry_snapshot = registry.snapshot()
            swap_epochs = [entry.swapped_epoch_s
                           for entry in registry.history
                           if entry.swapped_epoch_s is not None]
    return {"outcomes": outcomes, "registry": registry_snapshot,
            "alerts": alert_snapshots, "swap_epochs": swap_epochs,
            "shift_s": shift_s, "hot": hot_impostor.name,
            "cold": f"{cold_impostor1.name}, {cold_impostor2.name}"}


def _violated_server_windows(outcome: ReplayOutcome) -> int:
    return sum(w.violations.violated_servers for w in outcome.windows)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Supplementary: adaptive vs static serving across a phase change."""
    study = _study(config.fast, config.seed)
    outcomes = study["outcomes"]
    registry = study["registry"]
    rows = []
    metrics: dict[str, float] = {}
    for policy, outcome in outcomes.items():
        violated = _violated_server_windows(outcome)
        rows.append((
            policy,
            outcome.arrivals,
            outcome.colocated_placed,
            violated,
            outcome.mean_violation_rate,
            outcome.mean_utilization_gain,
        ))
        metrics[f"{policy}_violations"] = float(violated)
        metrics[f"{policy}_violation_rate"] = outcome.mean_violation_rate
        metrics[f"{policy}_gain"] = outcome.mean_utilization_gain
        metrics[f"{policy}_colocated"] = float(outcome.colocated_placed)
    metrics["adaptive_swaps"] = float(registry.get("swaps", 0))
    metrics["adaptive_model_version"] = float(
        registry.get("model_version", 0))
    for policy, alerts in study["alerts"].items():
        metrics[f"{policy}_alert_firings"] = float(alerts["firings"])
        metrics[f"{policy}_alert_resolves"] = float(alerts["resolves"])
    return ExperimentResult(
        experiment_id="figs_adaptive",
        title="Online recalibration: a mid-trace phase change served "
              f"with stale profiles ({_QOS_LEVEL:.0%} QoS)",
        paper_claim="drift-triggered refitting recovers a stale profile "
                    "database online: the adaptive run ends with "
                    "strictly fewer violated server-windows than the "
                    "static run at equal-or-better utilization gain",
        headers=("policy", "arrivals", "colocated",
                 "violated server-windows", "mean violation rate",
                 "mean utilization gain"),
        rows=tuple(rows),
        metrics=metrics,
        notes=f"at t={study['shift_s']:.0f}s the batch pool is silently "
              f"replaced ({study['hot']} arrives hot; {study['cold']} "
              f"arrive cold); the adaptive run swapped coefficients "
              f"{metrics['adaptive_swaps']:.0f} time(s); the SLO "
              f"burn-rate alert fires on the first post-shift window "
              f"and resolves only under the adaptive policy "
              f"({metrics['adaptive_alert_resolves']:.0f} vs "
              f"{metrics['static_alert_resolves']:.0f} resolve "
              f"transition(s))",
    )
