"""Figures 14-17: the 4,000-server scale-out studies.

One shared run per QoS metric:

- Figures 14/15 — QoS defined on *average performance*: utilization
  improvement per policy at 95/90/85% targets (14) and QoS violations of
  SMiTe vs the gain-matched Random policy (15);
- Figures 16/17 — QoS defined on *90th-percentile latency* (Web-Search
  and Data-Caching only): the same two views. Queueing makes the tail
  targets far harder — the paper (and this reproduction) admit no
  co-locations at the 95% tail target.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import smite_cloud, snb_simulator
from repro.scheduler.metrics import ScaleOutResult
from repro.scheduler.qos import QosTarget
from repro.scheduler.scaleout import ScaleOutStudy
from repro.workloads.cloudsuite import cloudsuite_apps
from repro.workloads.spec import spec_even

__all__ = ["run_fig14", "run_fig15", "run_fig16", "run_fig17"]

_LEVELS = (0.95, 0.90, 0.85)


@lru_cache(maxsize=None)
def _study_results(metric: str, fast: bool, seed: int) -> tuple[ScaleOutResult, ...]:
    simulator = snb_simulator()
    predictor = smite_cloud("smt")
    if metric == "average":
        apps = cloudsuite_apps()
        targets = [QosTarget.average(level) for level in _LEVELS]
        use_tail = False
    else:
        apps = [w for w in cloudsuite_apps() if w.reports_percentile_latency]
        targets = [QosTarget.tail(level) for level in _LEVELS]
        use_tail = True
    study = ScaleOutStudy(
        simulator=simulator,
        predictor=predictor,
        latency_apps=apps,
        batch_pool=spec_even(),
        servers_per_app=150 if fast else 1000,
        seed=seed,
    )
    return tuple(study.run(targets, use_tail_models=use_tail))


def _utilization_result(metric: str, experiment_id: str, claim: str,
                        config: ExperimentConfig) -> ExperimentResult:
    results = _study_results(metric, config.fast, config.seed)
    rows = []
    metrics: dict[str, float] = {}
    for r in results:
        if r.policy == "random":
            continue  # Random matches SMiTe's gain by construction
        rows.append((f"{r.target.level:.0%}", r.policy,
                     r.utilization_improvement))
        metrics[f"{r.policy}_{int(r.target.level * 100)}"] = \
            r.utilization_improvement
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Utilization improvement, QoS on {metric} "
              f"({'tail latency' if metric == 'tail' else metric})",
        paper_claim=claim,
        headers=("QoS target", "policy", "utilization improvement"),
        rows=tuple(rows),
        metrics=metrics,
    )


def _violation_result(metric: str, experiment_id: str, claim: str,
                      config: ExperimentConfig) -> ExperimentResult:
    results = _study_results(metric, config.fast, config.seed)
    rows = []
    metrics: dict[str, float] = {}
    reductions = []
    by_target: dict[float, dict[str, ScaleOutResult]] = {}
    for r in results:
        by_target.setdefault(r.target.level, {})[r.policy] = r
    for level, policies in sorted(by_target.items(), reverse=True):
        for name in ("smite", "random"):
            r = policies[name]
            v = r.violations
            rows.append((f"{level:.0%}", name, v.rate, v.worst_magnitude))
            metrics[f"{name}_rate_{int(level * 100)}"] = v.rate
            metrics[f"{name}_worst_{int(level * 100)}"] = v.worst_magnitude
        random_rate = policies["random"].violations.rate
        smite_rate = policies["smite"].violations.rate
        if random_rate > 0:
            reductions.append(1.0 - smite_rate / random_rate)
    metrics["mean_violation_reduction"] = (
        sum(reductions) / len(reductions) if reductions else 1.0
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"QoS violations, SMiTe vs gain-matched Random "
              f"(QoS on {metric})",
        paper_claim=claim,
        headers=("QoS target", "policy", "violation rate",
                 "worst violation magnitude"),
        rows=tuple(rows),
        metrics=metrics,
    )


def run_fig14(config: ExperimentConfig) -> ExperimentResult:
    """Figure 14: cluster utilization gain, average-performance QoS."""
    return _utilization_result(
        "average", "fig14",
        "SMiTe improves utilization by 9.24%/25.90%/42.97% at 95/90/85% "
        "average-performance QoS, close to Oracle's 9.82%/26.78%/43.75%",
        config,
    )


def run_fig15(config: ExperimentConfig) -> ExperimentResult:
    """Figure 15: QoS violation rate, average-performance QoS."""
    return _violation_result(
        "average", "fig15",
        "Random suffers up to 26% QoS violation at matched utilization; "
        "SMiTe's largest violation is 1.67%, a 78.57% average reduction",
        config,
    )


def run_fig16(config: ExperimentConfig) -> ExperimentResult:
    """Figure 16: cluster utilization gain, tail-latency QoS."""
    return _utilization_result(
        "tail", "fig16",
        "with QoS on 90th-percentile latency SMiTe improves utilization "
        "by 0%/10.72%/22.03% at 95/90/85% targets vs Oracle "
        "0.59%/12.50%/24.99%",
        config,
    )


def run_fig17(config: ExperimentConfig) -> ExperimentResult:
    """Figure 17: QoS violation rate, tail-latency QoS."""
    return _violation_result(
        "tail", "fig17",
        "Random suffers up to 110% tail-latency QoS violation; SMiTe's "
        "worst is 0.96%",
        config,
    )
