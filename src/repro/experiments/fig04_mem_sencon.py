"""Figure 4: sensitivity and contentiousness on the memory subsystem.

Reports Sen/Con against the L1/L2/L3 Rulers and checks Findings 7-8:
memory-dimension behaviour is more monolithic than functional units
(higher cross-level correlation), applications like 454.calculix show
near-equal L1/L2 sensitivity (L1 reliance), and CloudSuite is markedly
more L3-contentious than SPEC while similarly sensitive.
"""

from __future__ import annotations

from repro.analysis.stats import pearson
from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import characterized_population
from repro.rulers.base import Dimension
from repro.workloads.profile import Suite
from repro.workloads.registry import get_profile

__all__ = ["run"]

_MEM_DIMS = (Dimension.L1, Dimension.L2, Dimension.L3)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Figure 4: Sen/Con of every workload against the L1/L2/L3 Rulers."""
    population = characterized_population()
    rows = []
    for name, char in sorted(population.items()):
        profile = get_profile(name)
        row = [name, profile.suite.value]
        for dim in _MEM_DIMS:
            row.append(char.sensitivity[dim])
            row.append(char.contentiousness[dim])
        rows.append(tuple(row))

    names = sorted(population)
    sen_l1 = [population[n].sensitivity[Dimension.L1] for n in names]
    sen_l2 = [population[n].sensitivity[Dimension.L2] for n in names]
    l1_l2_corr = abs(pearson(sen_l1, sen_l2))

    calculix = population["454.calculix"]
    calculix_gap = abs(calculix.sensitivity[Dimension.L1]
                       - calculix.sensitivity[Dimension.L2])

    cloud_l3 = _suite_mean_con_l3(population, Suite.CLOUDSUITE)
    spec_l3 = (_suite_mean_con_l3(population, Suite.SPEC_INT)
               + _suite_mean_con_l3(population, Suite.SPEC_FP)) / 2.0

    headers = ["workload", "suite"]
    for dim in _MEM_DIMS:
        headers += [f"sen[{dim.name}]", f"con[{dim.name}]"]
    return ExperimentResult(
        experiment_id="fig4",
        title="Memory-subsystem sensitivity and contentiousness",
        paper_claim="memory contention is more monolithic than FUs; "
                    "454.calculix has near-equal L1/L2 sensitivity; "
                    "CloudSuite is much more L3-contentious than SPEC "
                    "(Findings 7-8)",
        headers=tuple(headers),
        rows=tuple(rows),
        metrics={
            "l1_l2_sensitivity_correlation": l1_l2_corr,
            "calculix_l1_l2_sen_gap": calculix_gap,
            "cloud_mean_l3_contentiousness": cloud_l3,
            "spec_mean_l3_contentiousness": spec_l3,
            "cloud_over_spec_l3_con": cloud_l3 / spec_l3 if spec_l3 else 0.0,
        },
    )


def _suite_mean_con_l3(population, suite: Suite) -> float:
    values = [
        char.contentiousness[Dimension.L3]
        for name, char in population.items()
        if get_profile(name).suite is suite
    ]
    return sum(values) / len(values) if values else 0.0
