"""Supplementary figure: the scale-out comparison, replayed online.

Figures 14-17 score each policy on a one-shot cluster snapshot. This
experiment replays the same comparison as a *timeline*: one diurnal day
of batch-job traffic through the :mod:`repro.serve` runtime, once per
policy (SMiTe behind the :class:`PredictionService`, gain-oblivious
Random, and the no-co-location baseline), with windowed SLO accounting
over the simulated clock. The paper's ordering should survive the move
online: SMiTe extracts most of the utilization the fleet has to give
while violating QoS far less often than Random; the baseline never
violates and never gains.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments.base import ExperimentConfig, ExperimentResult
from repro.experiments.context import snb_simulator
from repro.core.predictor import SMiTe
from repro.scheduler.qos import QosTarget
from repro.serve import (
    BaselineDecider,
    PredictionService,
    RandomDecider,
    ReplayOutcome,
    ServingEngine,
    WindowedSlo,
    diurnal_trace,
)
from repro.workloads.cloudsuite import cloudsuite_apps
from repro.workloads.spec import spec_even, spec_odd

__all__ = ["run"]

_QOS_LEVEL = 0.95


@lru_cache(maxsize=None)
def _predictor(fast: bool) -> SMiTe:
    """A server-calibrated predictor sized to the run (shared per process)."""
    training = spec_odd()[:8] if fast else spec_odd()
    counts = (1, 3, 6) if fast else (1, 2, 4, 6)
    predictor = SMiTe(snb_simulator()).fit(training, mode="smt")
    predictor.fit_server(training, instance_counts=counts)
    return predictor


@lru_cache(maxsize=None)
def _replays(fast: bool, seed: int) -> tuple[tuple[str, ReplayOutcome], ...]:
    simulator = snb_simulator()
    predictor = _predictor(fast)
    target = QosTarget.average(_QOS_LEVEL)
    apps = cloudsuite_apps()[:2] if fast else cloudsuite_apps()
    pool = spec_even()[:6] if fast else spec_even()
    trace = diurnal_trace(pool, mean_rate_per_s=0.05, seed=seed)
    outcomes = []
    for decider in (
        PredictionService(predictor, target),
        RandomDecider(seed=seed + 1),
        BaselineDecider(),
    ):
        engine = ServingEngine(
            simulator, apps, decider,
            servers_per_app=4 if fast else 8,
            epoch_s=300.0, window_s=3_600.0,
            slo=WindowedSlo(3_600.0, target),
        )
        outcomes.append((decider.name, engine.replay(trace)))
    return tuple(outcomes)


def run(config: ExperimentConfig) -> ExperimentResult:
    """Supplementary: SMiTe vs Random vs baseline over a diurnal day."""
    results = _replays(config.fast, config.seed)
    rows = []
    metrics: dict[str, float] = {}
    for name, outcome in results:
        rows.append((
            name,
            outcome.arrivals,
            outcome.colocated_placed,
            outcome.baseline_placed,
            outcome.mean_utilization_gain,
            outcome.mean_violation_rate,
        ))
        metrics[f"{name}_gain"] = outcome.mean_utilization_gain
        metrics[f"{name}_violation_rate"] = outcome.mean_violation_rate
        metrics[f"{name}_colocated"] = float(outcome.colocated_placed)
    return ExperimentResult(
        experiment_id="figs_online",
        title="Online scale-out: one diurnal day through the serving "
              f"runtime ({_QOS_LEVEL:.0%} average-performance QoS)",
        paper_claim="prediction-steered co-location keeps its offline "
                    "ordering online: SMiTe gains utilization with far "
                    "fewer QoS violations than gain-oblivious Random, "
                    "while the baseline never co-locates",
        headers=("policy", "arrivals", "colocated", "baseline",
                 "mean utilization gain", "mean violation rate"),
        rows=tuple(rows),
        metrics=metrics,
    )
