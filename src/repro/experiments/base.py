"""Experiment result/config types shared by all drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError

__all__ = ["ExperimentConfig", "ExperimentResult", "make_rows"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment driver.

    ``fast`` shrinks the expensive studies (cluster size, DES job counts)
    for CI and benchmarking runs; results keep the same shape, with more
    sampling noise. ``seed`` feeds every stochastic component.

    Must stay frozen and picklable: the parallel runner ships one config
    to every worker process, and the figure modules key their memoized
    fixtures on its field values.
    """

    fast: bool = False
    seed: int = 42

    @property
    def servers_per_app(self) -> int:
        return 150 if self.fast else 1000

    @property
    def des_jobs(self) -> int:
        return 20_000 if self.fast else 120_000


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one experiment driver."""

    experiment_id: str
    title: str
    paper_claim: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    metrics: Mapping[str, float] = field(default_factory=dict)
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.rows:
            raise ConfigurationError(
                f"{self.experiment_id}: experiment produced no rows"
            )

    def render(self) -> str:
        """Human-readable report block."""
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            f"paper: {self.paper_claim}",
            "",
            format_table(self.headers, self.rows),
        ]
        if self.metrics:
            parts.append("")
            parts.append("metrics: " + ", ".join(
                f"{k}={v:.4f}" for k, v in self.metrics.items()
            ))
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)

    def metric(self, name: str) -> float:
        try:
            return float(self.metrics[name])
        except KeyError as exc:
            raise ConfigurationError(
                f"{self.experiment_id} has no metric {name!r}; "
                f"available: {sorted(self.metrics)}"
            ) from exc


def make_rows(rows: Sequence[Sequence[object]]) -> tuple[tuple, ...]:
    """Normalize rows into the tuple-of-tuples the result type stores."""
    return tuple(tuple(row) for row in rows)
