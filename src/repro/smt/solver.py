"""The steady-state co-run solver.

Every hardware context's IPC depends on its neighbours' IPCs — port
pressure, cache capacity shares, and DRAM traffic all scale with how fast
the other contexts are actually running. The solver finds the simultaneous
fixed point with damped iteration:

1. from the current IPC estimates, compute each context's arrival rate at
   every cache level and divide shared capacity by pressure;
2. recompute hit fractions, DRAM traffic, and the bandwidth latency factor;
3. rebuild each context's CPI: the *compute bound* (max of front-end,
   per-port — each inflated by sibling utilization — and dependency-chain
   terms), plus memory stalls, plus fixed penalties, plus the static SMT
   overhead for sharing a core at all;
4. damp the IPC update and repeat until the relative change is negligible.

The model is smooth and contractive under damping; ~50-150 iterations
converge to 1e-6 for every workload population we ship.

This module is the *reference implementation*. :mod:`repro.smt.batch`
vectorizes the identical iteration across many independent problems and
must stay in lockstep: any change to the update order, the CPI terms, or
the damping here has a twin in ``batch.py``, and the property tests in
``tests/properties/test_prop_batch.py`` hold the two to 1e-6 agreement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError, ConvergenceError
from repro.obs import counter, histogram
from repro.isa.opcodes import UOP_LATENCY
from repro.smt.cache import (HitFractions, hit_fractions,
                             occupancy_pressures, share_capacity)
from repro.smt.membw import aggregate_traffic, dram_latency_factor
from repro.smt.params import MachineSpec
from repro.smt.ports import balance_port_demand, contention_inflation
from repro.smt.results import ContextResult, CpiBreakdown, RunResult
from repro.workloads.profile import WorkloadProfile

__all__ = ["ContextPlacement", "solve"]

_DAMPING = 0.5
_MAX_ITERATIONS = 500
_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ContextPlacement:
    """A profile assigned to a hardware context of a given core."""

    profile: WorkloadProfile
    core: int

    def __post_init__(self) -> None:
        if self.core < 0:
            raise ConfigurationError(f"core index must be >= 0, got {self.core}")


@dataclass
class _ContextState:
    """Pre-computed static quantities plus the iteration state."""

    placement: ContextPlacement
    port_demand: dict[int, float]
    uops_total: float
    apki: float
    dep_bound: float
    penalty_cpi: float
    throttle_cpi: float
    #: intrinsic per-level occupancy pressure (see cache.occupancy_pressures)
    pressures: tuple[float, float, float] = (0.0, 0.0, 0.0)
    ipc: float = 1.0
    hits: HitFractions = HitFractions(0.0, 0.0, 0.0, 0.0)
    capacities: tuple[float, float, float] = (0.0, 0.0, 0.0)
    breakdown: CpiBreakdown | None = None

    @property
    def profile(self) -> WorkloadProfile:
        return self.placement.profile


def _dependency_bound(profile: WorkloadProfile) -> float:
    """Serialized-chain cycles per instruction."""
    path = sum(rate * UOP_LATENCY[kind] for kind, rate in profile.uops.items())
    return profile.dependency_factor * path


def _penalties(machine: MachineSpec, profile: WorkloadProfile) -> float:
    return (
        profile.branch_misprediction_rate * machine.branch_penalty_cycles
        + (profile.itlb_mpki + profile.dtlb_mpki) / 1000.0 * machine.tlb_walk_cycles
        + profile.icache_mpki / 1000.0 * machine.icache_miss_cycles
    )


def _prepare(machine: MachineSpec,
             placements: Sequence[ContextPlacement]) -> list[_ContextState]:
    if not placements:
        raise ConfigurationError("at least one context placement is required")
    per_core: dict[int, int] = {}
    for pl in placements:
        if pl.core >= machine.cores:
            raise ConfigurationError(
                f"core {pl.core} does not exist on {machine.name} "
                f"({machine.cores} cores)"
            )
        per_core[pl.core] = per_core.get(pl.core, 0) + 1
        if per_core[pl.core] > machine.smt_contexts_per_core:
            raise ConfigurationError(
                f"core {pl.core} given more contexts than its "
                f"{machine.smt_contexts_per_core} SMT slots"
            )
    states = []
    full = (float(machine.l1d.size_bytes), float(machine.l2.size_bytes),
            float(machine.l3.size_bytes))
    for pl in placements:
        profile = pl.profile
        throttle = float(getattr(profile, "throttle_cpi", 0.0) or 0.0)
        state = _ContextState(
            placement=pl,
            port_demand=balance_port_demand(profile.uops),
            uops_total=profile.uops_per_instruction,
            apki=profile.accesses_per_instruction,
            dep_bound=_dependency_bound(profile),
            penalty_cpi=_penalties(machine, profile),
            throttle_cpi=throttle,
        )
        state.capacities = full
        state.hits = hit_fractions(profile.strata, full, machine.capture_exponent)
        state.pressures = occupancy_pressures(
            profile.strata, state.apki, full, machine.capture_exponent,
            reuse_exponent=machine.reuse_exponent,
        )
        states.append(state)
    return states


def _cache_entities(group: list[int],
                    states: list[_ContextState]) -> list[list[int]]:
    """Partition a sharing group into cache-occupancy entities.

    Threads of a ``shares_memory`` profile work on one data set, so they
    hold cache lines collectively rather than competing with each other;
    everything else is its own entity.
    """
    singles: list[list[int]] = []
    shared: dict[str, list[int]] = {}
    for idx in group:
        profile = states[idx].profile
        if profile.shares_memory:
            shared.setdefault(profile.name, []).append(idx)
        else:
            singles.append([idx])
    return singles + list(shared.values())


def _update_capacities(machine: MachineSpec, states: list[_ContextState]) -> None:
    """Divide shared cache capacity by pressure at every level."""
    levels = machine.cache_levels()
    # Grouping: L1/L2 shared per core, L3 shared chip-wide.
    core_groups: dict[int, list[int]] = {}
    for idx, state in enumerate(states):
        core_groups.setdefault(state.placement.core, []).append(idx)
    new_caps = [[0.0, 0.0, 0.0] for _ in states]

    for level_idx, spec in enumerate(levels):
        if level_idx < 2:
            groups = list(core_groups.values())
        else:
            groups = [list(range(len(states)))]
        for group in groups:
            entities = _cache_entities(group, states)
            pressures = []
            for members in entities:
                # Pressure is each context's *intrinsic* per-level
                # occupancy demand (precomputed at full capacity; see
                # cache.occupancy_pressures). Scaling by achieved IPC
                # instead would create winner-take-all feedback — whoever
                # slows down first loses all capacity — which is both
                # unphysical for set-sampled LRU and bistable in the
                # fixed point. An entity's members access one shared data
                # set, so their rates sum over a common footprint.
                pressures.append(sum(
                    states[idx].pressures[level_idx] for idx in members
                ))
            shares = share_capacity(float(spec.size_bytes), pressures,
                                    machine.capacity_share_floor)
            for members, cap in zip(entities, shares):
                for idx in members:
                    new_caps[idx][level_idx] = cap

    for state, caps in zip(states, new_caps):
        state.capacities = (caps[0], caps[1], caps[2])
        state.hits = hit_fractions(state.profile.strata, state.capacities,
                                   machine.capture_exponent)


def _inflight_misses(state: _ContextState, dram_latency: float) -> float:
    """A context's average outstanding DRAM misses (Little's law)."""
    if state.apki == 0.0:
        return 0.0
    miss_rate = state.ipc * state.apki * state.hits.memory
    return min(state.profile.mlp, miss_rate * dram_latency)


def _memory_stall(machine: MachineSpec, state: _ContextState,
                  siblings: list["_ContextState"],
                  dram_latency: float) -> float:
    if state.apki == 0.0:
        return 0.0
    hits = state.hits
    per_access = (hits.l1 * machine.l1d.latency_cycles
                  + hits.l2 * machine.l2.latency_cycles
                  + hits.l3 * machine.l3.latency_cycles
                  + hits.memory * dram_latency)
    # The core's MSHRs are competitively shared: the siblings' in-flight
    # misses reduce the overlap this context can sustain. A compute-only
    # sibling leaves the full complement; a streaming sibling throttles a
    # streaming victim hard — memory-on-memory interference is mutual.
    mlp = state.profile.mlp
    if siblings:
        occupied = sum(_inflight_misses(s, dram_latency) for s in siblings)
        available = max(1.0, machine.mshr_count - occupied)
        mlp = min(mlp, available)
        mlp /= 1.0 + machine.smt_mlp_penalty * len(siblings)
    return state.apki * per_access / max(mlp, 1.0)


def _compute_cpi(machine: MachineSpec, states: list[_ContextState],
                 idx: int, dram_latency: float) -> tuple[float, CpiBreakdown]:
    state = states[idx]
    core = state.placement.core
    siblings = [s for j, s in enumerate(states)
                if j != idx and s.placement.core == core]

    # Re-place flexible uops against the siblings' current port pressure —
    # the OoO scheduler steers INT/loads away from a saturated port. The
    # update is damped: identical siblings would otherwise chase each
    # other's placement and oscillate instead of converging.
    background = {
        port: sum(s.ipc * s.port_demand[port] for s in siblings)
        for port in state.port_demand
    }
    balanced = balance_port_demand(
        state.profile.uops, background=background, own_rate=state.ipc
    )
    state.port_demand = {
        port: _DAMPING * state.port_demand[port]
              + (1.0 - _DAMPING) * balanced[port]
        for port in balanced
    }

    # Per-port occupancy plus additive queueing delay from sibling
    # utilization of the same port. The delay is additive, not folded
    # into the max(): waiting behind a sibling's uops is serialization
    # the out-of-order window cannot hide.
    port_bound = 0.0
    port_delay = 0.0
    for port, demand in state.port_demand.items():
        if demand == 0.0:
            continue
        port_bound = max(port_bound, demand)
        rho = background[port]
        if rho > 0.0:
            factor = contention_inflation(rho, machine.port_contention_kappa,
                                          machine.contention_rho_cap)
            port_delay += demand * (factor - 1.0)

    # Shared front end, same treatment with its own (gentler) kappa.
    # Every instruction occupies at least one issue/retire slot, so the
    # occupancy floor is 1 uop/instruction even for sparse uop mixes.
    width = machine.issue_width
    frontend = max(state.uops_total, 1.0) / width  # smite: noqa[SMT302]: MachineSpec validates issue_width positive
    fe_delay = 0.0
    rho_fe = sum(s.ipc * max(s.uops_total, 1.0) for s in siblings) / width  # smite: noqa[SMT302]: MachineSpec validates issue_width positive
    if rho_fe > 0.0:
        fe_factor = contention_inflation(
            rho_fe, machine.frontend_contention_kappa,
            machine.contention_rho_cap,
        )
        fe_delay = frontend * (fe_factor - 1.0)

    compute = max(frontend, port_bound, state.dep_bound)
    # Out-of-order slack hides part of the queueing delay: a context whose
    # throughput bound is far above its port occupancy can overlap waits
    # with other work, so only the port-bound fraction of the delay is
    # exposed. This is what decouples sensitivity from contentiousness
    # within a dimension (the paper's Finding 3): pressure *emitted* does
    # not depend on slack, pressure *felt* does.
    visibility = min(1.0, max(frontend, port_bound) / compute) \
        if compute > 0.0 else 1.0
    contention = (port_delay + fe_delay) * visibility
    overhead = compute * machine.smt_static_overhead if siblings else 0.0
    memory = _memory_stall(machine, state, siblings, dram_latency)
    breakdown = CpiBreakdown(
        frontend=frontend,
        port=port_bound,
        dependency=state.dep_bound,
        compute=compute,
        contention=contention,
        smt_overhead=overhead,
        memory=memory,
        branch=(state.profile.branch_misprediction_rate
                * machine.branch_penalty_cycles),
        tlb=((state.profile.itlb_mpki + state.profile.dtlb_mpki) / 1000.0
             * machine.tlb_walk_cycles),
        icache=state.profile.icache_mpki / 1000.0 * machine.icache_miss_cycles,
    )
    cpi = breakdown.total + state.throttle_cpi
    return cpi, breakdown


def solve(
    machine: MachineSpec,
    placements: Sequence[ContextPlacement],
    *,
    max_iterations: int = _MAX_ITERATIONS,
    tolerance: float = _TOLERANCE,
) -> RunResult:
    """Solve the steady state for a set of co-located contexts."""
    started = time.perf_counter()
    states = _prepare(machine, placements)
    line = float(machine.l3.line_bytes)
    peak = machine.dram_bytes_per_cycle

    iterations = 0
    dram_rho = 0.0
    factor = 1.0
    for iteration in range(1, max_iterations + 1):
        iterations = iteration
        _update_capacities(machine, states)
        traffic = aggregate_traffic(
            [s.ipc * s.apki * s.hits.memory * line for s in states]
        )
        dram_rho = min(traffic / peak, machine.bandwidth_rho_cap)  # smite: noqa[SMT302]: MachineSpec validates dram_bytes_per_cycle positive
        # The latency factor is damped across iterations: near saturation
        # it swings by multiples, and the IPC damping alone cannot keep
        # the saturated/unsaturated flip-flop from oscillating.
        new_factor = dram_latency_factor(traffic, peak, machine.bandwidth_beta,
                                         machine.bandwidth_rho_cap)
        factor = _DAMPING * factor + (1.0 - _DAMPING) * new_factor
        dram_latency = machine.dram_latency_cycles * factor

        max_delta = 0.0
        for idx, state in enumerate(states):
            cpi, breakdown = _compute_cpi(machine, states, idx, dram_latency)
            new_ipc = 1.0 / cpi  # smite: noqa[SMT302]: cpi includes compute, floored at the 1-uop front-end occupancy
            delta = abs(new_ipc - state.ipc) / max(state.ipc, 1e-12)
            max_delta = max(max_delta, delta)
            state.ipc = _DAMPING * state.ipc + (1.0 - _DAMPING) * new_ipc
            state.breakdown = breakdown
        if max_delta < tolerance:
            break
    else:
        raise ConvergenceError(
            f"co-run solve did not converge in {max_iterations} iterations "
            f"(last delta {max_delta:.3e})"
        )

    counter("smt.solver.solves").inc()
    histogram("smt.solver.iterations").record(iterations)
    histogram("smt.solver.solve_seconds").record(time.perf_counter() - started)

    contexts = []
    for state in states:
        assert state.breakdown is not None
        utilization = {
            port: min(1.0, state.ipc * demand)
            for port, demand in state.port_demand.items()
        }
        contexts.append(
            ContextResult(
                profile=state.profile,
                core=state.placement.core,
                ipc=state.ipc,
                breakdown=state.breakdown,
                hits=state.hits,
                port_utilization=utilization,
                effective_capacities=state.capacities,
            )
        )
    return RunResult(
        machine_name=machine.name,
        contexts=tuple(contexts),
        dram_utilization=dram_rho,
        iterations=iterations,
    )
