"""Execution-port demand and contention.

``balance_port_demand`` statically distributes a profile's uops across the
ports each kind may use (Figure 1's bindings): single-port kinds are pinned
first, then flexible kinds (loads over ports 2/3, INT_ADD over 0/1/5) are
water-filled to minimize the peak port load — what an out-of-order
scheduler achieves in steady state.

``contention_inflation`` is the queueing-delay factor a context pays on a
port when its core sibling keeps that port busy a fraction ``rho`` of
cycles: ``1 + kappa * rho / (1 - rho)``, with ``rho`` capped so a
saturating Ruler produces a large-but-finite slowdown.

:mod:`repro.smt.batch` carries row-vectorized twins of ``water_fill``
and the pinned/flexible placement order below; changes here must be
mirrored there (the batch-vs-scalar property tests will object if not).
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConfigurationError
from repro.isa.opcodes import ALL_PORTS, PORT_BINDINGS, UopKind

__all__ = ["balance_port_demand", "contention_inflation",
           "split_port_demand", "water_fill"]


def water_fill(levels: list[float], amount: float) -> list[float]:
    """Distribute ``amount`` over bins to equalize their fill levels.

    Classic water-filling: pour into the lowest bins first until all
    touched bins reach a common level. Returns the per-bin increments.
    """
    if amount < 0:
        raise ConfigurationError(f"cannot water-fill a negative amount ({amount})")
    n = len(levels)
    if n == 0:
        raise ConfigurationError("cannot water-fill into zero bins")
    if amount == 0:
        return [0.0] * n

    order = sorted(range(n), key=lambda i: levels[i])
    increments = [0.0] * n
    remaining = amount
    # Raise the lowest k bins to the level of bin k+1, step by step.
    for k in range(n):
        current = levels[order[k]] + increments[order[k]]
        if k + 1 < n:
            target = levels[order[k + 1]]
            need = (target - current) * (k + 1)
            if need >= remaining:
                per_bin = remaining / (k + 1)
                for i in order[: k + 1]:
                    increments[i] += per_bin
                return increments
            if need > 0:
                per_bin = need / (k + 1)
                for i in order[: k + 1]:
                    increments[i] += per_bin
                remaining -= need
        else:
            per_bin = remaining / n
            for i in order:
                increments[i] += per_bin
            remaining = 0.0
    return increments


def split_port_demand(
    uops: Mapping[UopKind, float],
) -> tuple[dict[int, float], list[tuple[UopKind, float, tuple[int, ...]]]]:
    """Split a uop mix into pinned per-port demand and flexible kinds.

    Pinned demand comes from single-port kinds; flexible kinds (loads over
    ports 2/3, INT_ADD over 0/1/5) are returned for the caller to place —
    statically or against live contention. Flexible kinds are ordered
    fewest-choices-first so two-port loads settle before three-port INT.
    """
    pinned = {p: 0.0 for p in ALL_PORTS}
    flexible: list[tuple[UopKind, float, tuple[int, ...]]] = []
    for kind, rate in uops.items():
        if rate < 0:
            raise ConfigurationError(f"negative uop rate for {kind.name}")
        if rate == 0.0:
            continue
        ports = PORT_BINDINGS[kind]
        if not ports:  # NOPs occupy no execution port
            continue
        if len(ports) == 1:
            pinned[ports[0]] += rate
        else:
            flexible.append((kind, rate, ports))
    flexible.sort(key=lambda item: len(item[2]))
    return pinned, flexible


def balance_port_demand(
    uops: Mapping[UopKind, float],
    *,
    background: Mapping[int, float] | None = None,
    own_rate: float = 1.0,
) -> dict[int, float]:
    """Per-port uops-per-instruction for a profile's uop mix.

    ``background`` is the utilization (uops/cycle) other contexts impose
    on each port; flexible kinds steer around it, as an out-of-order
    scheduler does when an SMT sibling saturates one of their ports.
    ``own_rate`` converts this context's per-instruction demand into
    utilization units (its current IPC) so the two are commensurable.

    Returns a dict over all six ports (zero entries included) so callers
    can iterate uniformly.
    """
    if own_rate <= 0:
        raise ConfigurationError(f"own_rate must be positive, got {own_rate}")
    demand, flexible = split_port_demand(uops)
    for _kind, rate, ports in flexible:
        levels = [
            demand[p] + (background.get(p, 0.0) / own_rate if background else 0.0)
            for p in ports
        ]
        for port, inc in zip(ports, water_fill(levels, rate)):
            demand[port] += inc
    return demand


def contention_inflation(rho: float, kappa: float, rho_cap: float) -> float:
    """Queueing inflation on a resource whose competitor utilization is rho."""
    if rho < 0:
        raise ConfigurationError(f"utilization cannot be negative ({rho})")
    if kappa < 0:
        raise ConfigurationError(f"contention kappa cannot be negative ({kappa})")
    clipped = min(rho, rho_cap)
    return 1.0 + kappa * clipped / (1.0 - clipped)  # smite: noqa[SMT302]: clipped <= rho_cap, validated < 1 by MachineSpec
