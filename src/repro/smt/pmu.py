"""Simulated performance monitoring units (PMUs).

``read_pmu`` derives the counter set the paper's PMU baseline model uses
(Section IV-B1: 11 per-cycle event rates) plus the per-port dispatch
counters (UOPS_DISPATCHED_PORT:PORT0..5) used to validate Ruler purity and
to build the Figure 3/5 utilization CDFs.

Real PMUs are imperfect in ways the paper calls out explicitly: some
events only count at core granularity rather than per SMT context, some
counters are known-buggy, and the exposed events do not fully cover
resource usage. :class:`PmuDefectModel` reproduces these defects
deterministically — a per-(counter, workload) multiplicative bias, larger
for the counters Intel errata flag — so the PMU baseline inherits the
handicaps it has on real hardware.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.smt.results import ContextResult

__all__ = ["PMU_COUNTERS", "PORT_COUNTERS", "PmuDefectModel", "read_pmu"]

#: The 11 counters of the paper's best PMU model (Section IV-B1), in order.
PMU_COUNTERS: tuple[str, ...] = (
    "instructions_per_cycle",
    "itlb_misses_per_cycle",
    "dtlb_load_misses_per_cycle",
    "dtlb_store_misses_per_cycle",
    "icache_misses_per_cycle",
    "l1d_hits_per_cycle",
    "l2_hits_per_cycle",
    "l2_misses_per_cycle",
    "l3_hits_per_cycle",
    "mem_hits_per_cycle",
    "branch_mispredictions_per_cycle",
)

PORT_COUNTERS: tuple[str, ...] = tuple(
    f"uops_dispatched_port{p}" for p in range(6)
)

#: Counters Intel errata historically flag as unreliable; they get the
#: larger defect amplitude.
_BUGGY_COUNTERS = frozenset(
    {"l1d_hits_per_cycle", "mem_hits_per_cycle", "dtlb_load_misses_per_cycle"}
)


@dataclass(frozen=True)
class PmuDefectModel:
    """Deterministic multiplicative counter bias.

    ``bias(counter, workload)`` returns a factor in
    ``[1 - amplitude, 1 + amplitude]`` derived from a CRC of the names, so
    repeated reads of the same counter for the same workload are stable —
    exactly how a systematic counter bug behaves.
    """

    amplitude: float = 0.10
    buggy_amplitude: float = 0.28
    salt: str = "smite-pmu"

    def bias(self, counter: str, workload: str) -> float:
        amp = self.buggy_amplitude if counter in _BUGGY_COUNTERS else self.amplitude
        if amp == 0.0:
            return 1.0
        digest = zlib.crc32(f"{self.salt}|{counter}|{workload}".encode())
        unit = (digest % 100_000) / 100_000.0  # [0, 1)
        return 1.0 + amp * (2.0 * unit - 1.0)


#: A defect-free PMU, for ablations that isolate the structural limit of
#: the PMU model from the counter-quality limit.
PERFECT_PMU = PmuDefectModel(amplitude=0.0, buggy_amplitude=0.0)


def read_pmu(
    context: ContextResult,
    defects: PmuDefectModel | None = None,
) -> dict[str, float]:
    """Read the full counter set for one solved context.

    Returns both the 11 model counters and the 6 port-dispatch counters.
    """
    profile = context.profile
    ipc = context.ipc
    apki = profile.accesses_per_instruction
    hits = context.hits
    load_share = (profile.load / apki) if apki > 0 else 0.0

    true_values: dict[str, float] = {
        "instructions_per_cycle": ipc,
        "itlb_misses_per_cycle": profile.itlb_mpki / 1000.0 * ipc,
        "dtlb_load_misses_per_cycle":
            profile.dtlb_mpki / 1000.0 * load_share * ipc,
        "dtlb_store_misses_per_cycle":
            profile.dtlb_mpki / 1000.0 * (1.0 - load_share) * ipc,
        "icache_misses_per_cycle": profile.icache_mpki / 1000.0 * ipc,
        "l1d_hits_per_cycle": apki * hits.l1 * ipc,
        "l2_hits_per_cycle": apki * hits.l2 * ipc,
        "l2_misses_per_cycle": apki * hits.beyond_l2 * ipc,
        "l3_hits_per_cycle": apki * hits.l3 * ipc,
        "mem_hits_per_cycle": apki * hits.memory * ipc,
        "branch_mispredictions_per_cycle":
            profile.branch_misprediction_rate * ipc,
    }
    for port, util in context.port_utilization.items():
        true_values[f"uops_dispatched_port{port}"] = util

    if defects is None:
        defects = PmuDefectModel()
    return {
        counter: value * defects.bias(counter, profile.name)
        for counter, value in true_values.items()
    }
