"""Result types produced by the SMT simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError
from repro.smt.cache import HitFractions
from repro.workloads.profile import WorkloadProfile

__all__ = ["CpiBreakdown", "ContextResult", "RunResult"]


@dataclass(frozen=True)
class CpiBreakdown:
    """Where a context's cycles per instruction come from.

    ``compute`` is the binding throughput bound — the max of the front-end,
    per-port, and dependency-chain terms (the individual terms are kept for
    inspection); ``memory`` is stall cycles in the cache/DRAM hierarchy;
    the rest are fixed penalties.
    """

    frontend: float
    port: float
    dependency: float
    compute: float
    contention: float
    smt_overhead: float
    memory: float
    branch: float
    tlb: float
    icache: float

    @property
    def total(self) -> float:
        return (self.compute + self.contention + self.smt_overhead
                + self.memory + self.branch + self.tlb + self.icache)


@dataclass(frozen=True)
class ContextResult:
    """Steady-state outcome for one hardware context."""

    profile: WorkloadProfile
    core: int
    ipc: float
    breakdown: CpiBreakdown
    hits: HitFractions
    port_utilization: Mapping[int, float]
    effective_capacities: tuple[float, float, float]

    def __post_init__(self) -> None:
        if self.ipc <= 0:
            raise ConfigurationError(
                f"{self.profile.name}: non-positive IPC {self.ipc}"
            )

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def cpi(self) -> float:
        return 1.0 / self.ipc


@dataclass(frozen=True)
class RunResult:
    """Outcome of one multi-context steady-state solve."""

    machine_name: str
    contexts: tuple[ContextResult, ...]
    dram_utilization: float
    iterations: int
    extras: Mapping[str, float] = field(default_factory=dict)

    def __getitem__(self, index: int) -> ContextResult:
        return self.contexts[index]

    def by_name(self, name: str) -> ContextResult:
        """First context running the named profile."""
        for ctx in self.contexts:
            if ctx.name == name:
                return ctx
        raise KeyError(name)

    def all_named(self, name: str) -> list[ContextResult]:
        """Every context running the named profile (multi-instance runs)."""
        return [ctx for ctx in self.contexts if ctx.name == name]

    @property
    def aggregate_port_utilization(self) -> dict[int, float]:
        """Chip-wide per-port utilization summed over same-core contexts.

        Used for the Figure 3/5 utilization CDFs, which aggregate the two
        co-located contexts of a core.
        """
        agg: dict[int, float] = {}
        for ctx in self.contexts:
            for port, util in ctx.port_utilization.items():
                agg[port] = agg.get(port, 0.0) + util
        return agg
