"""Cache-hierarchy model: capture curves and capacity sharing.

Each profile's memory behaviour is a set of footprint strata. For a
stratum of footprint ``F`` and an effective capacity ``C`` at some level,
the *resident fraction* — the share of that stratum's accesses that hit at
or before the level — follows a concave capture curve ``(C/F)^e`` (e < 1),
reflecting the non-uniform reuse real stack-distance profiles show.

When several contexts share a level, capacity is divided in proportion to
each context's *pressure*: its access arrival rate at that level times the
portion of its footprint the level could hold. This is how an LRU cache
behaves under interleaved access streams, and it is exactly the mechanism
a Ruler exploits — a high-rate stream over a footprint equal to the cache
size claims roughly half the capacity.

Pressures here are *intrinsic* — built from access rates and footprints,
never from the evolving IPC estimates. The batch solver
(:mod:`repro.smt.batch`) relies on that: it computes capacity shares and
hit fractions once per problem instead of once per iteration. If sharing
ever becomes IPC-dependent, that hoist (and the scalar loop's idempotent
recompute) must both change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.workloads.profile import FootprintStratum

__all__ = [
    "HitFractions",
    "capture_fraction",
    "hit_fractions",
    "occupancy_pressures",
    "share_capacity",
]


@dataclass(frozen=True)
class HitFractions:
    """Fractions of data accesses served at each hierarchy level.

    ``l1 + l2 + l3 + memory == 1`` for any memory-accessing profile.
    """

    l1: float
    l2: float
    l3: float
    memory: float

    def __post_init__(self) -> None:
        for name in ("l1", "l2", "l3", "memory"):
            value = getattr(self, name)
            if not -1e-9 <= value <= 1.0 + 1e-9:
                raise ConfigurationError(f"hit fraction {name}={value} out of range")

    @property
    def beyond_l1(self) -> float:
        """Fraction of accesses that miss the L1 (arrive at L2)."""
        return self.l2 + self.l3 + self.memory

    @property
    def beyond_l2(self) -> float:
        """Fraction of accesses that miss the L2 (arrive at L3)."""
        return self.l3 + self.memory


#: Hit fractions for a profile with no data accesses.
NO_ACCESSES = HitFractions(l1=0.0, l2=0.0, l3=0.0, memory=0.0)


def capture_fraction(footprint_bytes: float, capacity_bytes: float,
                     exponent: float) -> float:
    """Fraction of a stratum's accesses resident within ``capacity_bytes``."""
    if footprint_bytes <= 0:
        raise ConfigurationError("footprint must be positive")
    if capacity_bytes <= 0:
        return 0.0
    if capacity_bytes >= footprint_bytes:
        return 1.0
    return (capacity_bytes / footprint_bytes) ** exponent


def hit_fractions(
    strata: Sequence[FootprintStratum],
    capacities: tuple[float, float, float],
    exponent: float,
) -> HitFractions:
    """Per-level hit fractions given effective capacities (L1, L2, L3).

    Capacities are cumulative-monotone-clamped: a context can never be
    resident at L2 less than at L1 (the hierarchy is inclusive).
    """
    if not strata:
        return NO_ACCESSES
    c1, c2, c3 = capacities
    h1 = h2 = h3 = hm = 0.0
    for stratum in strata:
        r1 = capture_fraction(stratum.footprint_bytes, c1, exponent)
        r2 = max(r1, capture_fraction(stratum.footprint_bytes, c2, exponent))
        r3 = max(r2, capture_fraction(stratum.footprint_bytes, c3, exponent))
        h1 += stratum.access_fraction * r1
        h2 += stratum.access_fraction * (r2 - r1)
        h3 += stratum.access_fraction * (r3 - r2)
        hm += stratum.access_fraction * (1.0 - r3)
    return HitFractions(l1=h1, l2=h2, l3=h3, memory=hm)


def occupancy_pressures(
    strata: Sequence[FootprintStratum],
    accesses_per_instruction: float,
    capacities: tuple[float, float, float],
    exponent: float,
    reuse_exponent: float = 0.0,
) -> tuple[float, float, float]:
    """Per-level occupancy pressure of a profile (per instruction).

    For each stratum and each level, pressure is the stratum's access rate
    *reaching* that level (misses above it, at full capacities) times the
    bytes it can occupy there. A positive ``reuse_exponent`` discounts the
    occupancy of streams whose footprint dwarfs the level (they
    re-reference each line rarely and hold less of it under LRU). This is the quantity shared-capacity allocation is
    proportional to; it is intrinsic to the profile (independent of
    achieved IPC) so the fixed point stays free of winner-take-all
    feedback.
    """
    if not strata or accesses_per_instruction <= 0.0:
        return (0.0, 0.0, 0.0)
    c1, c2, c3 = capacities
    pressures = [0.0, 0.0, 0.0]
    for stratum in strata:
        rate = accesses_per_instruction * stratum.access_fraction
        r1 = capture_fraction(stratum.footprint_bytes, c1, exponent)
        r2 = max(r1, capture_fraction(stratum.footprint_bytes, c2, exponent))
        reach = (1.0, 1.0 - r1, 1.0 - r2)
        for level, capacity in enumerate((c1, c2, c3)):
            held = min(stratum.footprint_bytes, capacity)
            reuse = (min(1.0, capacity / stratum.footprint_bytes)  # smite: noqa[SMT302]: FootprintStratum validates footprint_bytes positive
                     ** reuse_exponent)
            pressures[level] += rate * reach[level] * held * reuse
    return (pressures[0], pressures[1], pressures[2])


def share_capacity(
    total_bytes: float,
    pressures: Sequence[float],
    share_floor: float,
) -> list[float]:
    """Split a shared level's capacity in proportion to context pressures.

    Contexts with zero pressure receive the full capacity nominally (they
    never touch the level, so their allocation is irrelevant and must not
    dilute real competitors). Non-zero contexts receive proportional
    shares, floored at ``share_floor`` of the total so no working stream is
    starved completely.
    """
    if total_bytes <= 0:
        raise ConfigurationError("shared capacity must be positive")
    active = [(i, p) for i, p in enumerate(pressures) if p > 0.0]
    result = [total_bytes] * len(list(pressures))
    if len(active) <= 1:
        return result
    total_pressure = sum(p for _, p in active)
    floor = share_floor
    for i, p in active:
        share = max(floor, p / total_pressure)  # smite: noqa[SMT302]: total_pressure sums the active pressures, each filtered > 0
        result[i] = total_bytes * min(1.0, share)
    return result
