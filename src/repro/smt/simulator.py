"""The user-facing simulator facade.

:class:`Simulator` wraps the fixed-point solver with the co-location
topologies the paper uses, memoizes solves (profiles are immutable), and
applies deterministic *measurement jitter* to everything it reports as a
measurement — real IPC readings vary run to run, and the paper's 2-3%
prediction-error floor partly reflects that.

Topologies:

- ``run_solo`` — one context, whole machine to itself;
- ``run_pair(a, b, mode="smt")`` — both contexts on core 0 (SMT siblings);
- ``run_pair(a, b, mode="cmp")`` — one context on each of two cores
  (shared L3/bandwidth only);
- ``run_server`` — the CloudSuite topology: one latency-sensitive thread
  per core, plus 0..cores batch instances on sibling contexts (SMT) or on
  otherwise-idle cores (CMP).

Degradations follow the paper's Equation 7 on the *measured* (jittered)
IPCs.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Literal, Sequence

from repro.errors import ConfigurationError
from repro.obs import counter
from repro.smt.batch import solve_many
from repro.smt.diskcache import PersistentSolveCache, solve_key
from repro.smt.params import IVY_BRIDGE, MachineSpec
from repro.smt.pmu import PmuDefectModel, read_pmu
from repro.smt.results import ContextResult, RunResult
from repro.smt.solver import ContextPlacement, solve
from repro.workloads.profile import WorkloadProfile

__all__ = ["Simulator", "ContextPlacement", "PairMeasurement", "PairMode"]

PairMode = Literal["smt", "cmp"]


def _profile_sort_key(profile: WorkloadProfile) -> tuple[str, str]:
    """A deterministic (cross-process) total order on profiles.

    Cached on the (immutable) profile: rendering the full value tuple is
    much too slow to redo on every canonicalization of the hot
    measurement paths.
    """
    try:
        return profile.__dict__["_sort_key"]
    except KeyError:
        sort_key = (profile.name, repr(profile.key()))
        object.__setattr__(profile, "_sort_key", sort_key)
        return sort_key


def _canonical_placements(
    placements: Sequence[ContextPlacement],
) -> tuple[list[ContextPlacement], list[int]]:
    """Reduce a placement to its canonical symmetric form.

    Cores are homogeneous and context order is irrelevant to the model's
    fixed point, so ``run_pair(a, b)`` and ``run_pair(b, a)`` — or any
    core relabeling — describe one physical co-location. Members of each
    core are sorted, cores are sorted by their member multisets and
    relabeled densely from zero. Returns the canonical placement plus
    the original indices in canonical order (to map results back).
    """
    n = len(placements)
    if n == 1:
        pl = placements[0]
        if pl.core == 0:
            return [pl], [0]
        return [ContextPlacement(pl.profile, core=0)], [0]
    if n == 2 and placements[0].core == placements[1].core:
        a, b = placements
        if _profile_sort_key(a.profile) <= _profile_sort_key(b.profile):
            pair, order = (a, b), [0, 1]
        else:
            pair, order = (b, a), [1, 0]
        if a.core == 0:
            return list(pair), order
        return [ContextPlacement(pair[0].profile, core=0),
                ContextPlacement(pair[1].profile, core=0)], order
    by_core: dict[int, list[int]] = {}
    for i, pl in enumerate(placements):
        by_core.setdefault(pl.core, []).append(i)
    groups = []
    for members in by_core.values():
        ordered = sorted(members,
                         key=lambda i: _profile_sort_key(placements[i].profile))
        group_key = tuple(_profile_sort_key(placements[i].profile)
                          for i in ordered)
        groups.append((group_key, ordered))
    groups.sort(key=lambda g: g[0])
    canonical: list[ContextPlacement] = []
    order: list[int] = []
    for new_core, (_key, ordered) in enumerate(groups):
        for i in ordered:
            canonical.append(ContextPlacement(placements[i].profile,
                                              core=new_core))
            order.append(i)
    return canonical, order


@dataclass(frozen=True)
class PairMeasurement:
    """Jittered IPC measurements and Eq. 7 degradations for a co-run pair."""

    ipc_a: float
    ipc_b: float
    degradation_a: float
    degradation_b: float


class Simulator:
    """Analytic SMT/CMP interference simulator for one machine.

    ``jitter`` is the half-width of the uniform multiplicative measurement
    noise (0 disables it); it is derived deterministically from the
    workload names and topology so repeated measurements agree, as they
    would for a pinned, steady-state real measurement.
    """

    def __init__(
        self,
        machine: MachineSpec = IVY_BRIDGE,
        *,
        jitter: float = 0.01,
        seed: int = 0,
        pmu_defects: PmuDefectModel | None = None,
        disk_cache: PersistentSolveCache | str | Path | None = None,
    ) -> None:
        if jitter < 0 or jitter >= 0.5:
            raise ConfigurationError(f"jitter must be in [0, 0.5), got {jitter}")
        self.machine = machine
        self.jitter = jitter
        self.seed = seed
        self.pmu_defects = pmu_defects if pmu_defects is not None else PmuDefectModel()
        if isinstance(disk_cache, (str, Path)):
            disk_cache = PersistentSolveCache(disk_cache)
        self.disk_cache = disk_cache
        self._cache: dict[tuple, RunResult] = {}
        # Placement lists already pushed through prefetch, keyed by their
        # *uncanonicalized* (profile, core) tuple: repeat prefetches of
        # the same job list (every serving replay warms the same Ruler
        # grid) then skip canonicalization entirely.
        self._prefetched: set[tuple] = set()
        self._solve_count = 0

    # ------------------------------------------------------------------
    # Raw solves (no measurement jitter)

    def run(self, placements: Sequence[ContextPlacement]) -> RunResult:
        """Solve an arbitrary placement, memoized.

        Memoization is symmetry-aware: placements that differ only by
        context order or core labels share one solve, so the AxB and BxA
        halves of a pair grid cost one fixed point each.
        """
        placements = list(placements)
        counter("smt.simulator.requests").inc()
        counter("smt.simulator.canonicalizations").inc()
        canonical, order = _canonical_placements(placements)
        key = self._memo_key(canonical)
        result = self._cache.get(key)
        if result is None:
            result = self._solve_canonical(canonical, key)
        else:
            counter("smt.simulator.memo_hits").inc()
        return self._reindex(result, order, placements)

    def run_many(
        self, placements_list: Sequence[Sequence[ContextPlacement]],
    ) -> list[RunResult]:
        """Solve many independent placements, batched.

        Cache misses (memory, then disk) are deduplicated by canonical
        key and handed to the vectorized batch solver in one stacked
        iteration; results land in both caches. Output order matches the
        input.
        """
        requests = []
        todo: dict[tuple, list[ContextPlacement]] = {}
        memo_hits = 0
        for placements in placements_list:
            placements = list(placements)
            canonical, order = _canonical_placements(placements)
            key = self._memo_key(canonical)
            requests.append((key, order, placements))
            if key in self._cache:
                memo_hits += 1
            elif key not in todo:
                if self._load_from_disk(canonical, key) is None:
                    todo[key] = canonical
        counter("smt.simulator.requests").inc(len(requests))
        counter("smt.simulator.canonicalizations").inc(len(requests))
        counter("smt.simulator.memo_hits").inc(memo_hits)
        if todo:
            keys = list(todo)
            solved = solve_many(self.machine, [todo[k] for k in keys])
            for key, canonical, result in zip(keys, (todo[k] for k in keys),
                                              solved):
                self._store(canonical, key, result)
        return [self._reindex(self._cache[key], order, placements)
                for key, order, placements in requests]

    def prefetch(
        self, placements_list: Sequence[Sequence[ContextPlacement]],
    ) -> None:
        """Fill the solve caches in bulk without materializing results."""
        todo: dict[tuple, list[ContextPlacement]] = {}
        raw_keys: list[tuple] = []
        n_requests = 0
        memo_hits = 0
        for placements in placements_list:
            n_requests += 1
            raw_key = tuple((pl.profile, pl.core) for pl in placements)
            if raw_key in self._prefetched:
                memo_hits += 1
                continue
            raw_keys.append(raw_key)
            canonical, _order = _canonical_placements(list(placements))
            key = self._memo_key(canonical)
            if key in self._cache:
                memo_hits += 1
            elif key not in todo:
                if self._load_from_disk(canonical, key) is None:
                    todo[key] = canonical
        counter("smt.simulator.requests").inc(n_requests)
        counter("smt.simulator.canonicalizations").inc(n_requests)
        counter("smt.simulator.memo_hits").inc(memo_hits)
        if todo:
            keys = list(todo)
            solved = solve_many(self.machine, [todo[k] for k in keys])
            for key, result in zip(keys, solved):
                self._store(todo[key], key, result)
        self._prefetched.update(raw_keys)

    # -- cache plumbing -------------------------------------------------

    @staticmethod
    def _memo_key(canonical: Sequence[ContextPlacement]) -> tuple:
        return tuple((pl.profile, pl.core) for pl in canonical)

    def _load_from_disk(self, canonical: list[ContextPlacement],
                        key: tuple) -> RunResult | None:
        if self.disk_cache is None:
            return None
        result = self.disk_cache.get(solve_key(self.machine, canonical))
        if result is not None:
            self._cache[key] = result
        return result

    def _store(self, canonical: Sequence[ContextPlacement], key: tuple,
               result: RunResult) -> None:
        self._cache[key] = result
        self._solve_count += 1
        if self.disk_cache is not None:
            self.disk_cache.put(solve_key(self.machine, canonical), result)

    def _solve_canonical(self, canonical: list[ContextPlacement],
                         key: tuple) -> RunResult:
        result = self._load_from_disk(canonical, key)
        if result is None:
            result = solve(self.machine, canonical)
            self._store(canonical, key, result)
        return result

    @staticmethod
    def _reindex(canonical_result: RunResult, order: list[int],
                 placements: list[ContextPlacement]) -> RunResult:
        """Map a canonical solve back to the caller's context order."""
        if order == list(range(len(order))) and all(
            ctx.core == pl.core
            for ctx, pl in zip(canonical_result.contexts, placements)
        ):
            return canonical_result
        inverse = {orig: pos for pos, orig in enumerate(order)}
        contexts = tuple(
            dataclasses.replace(canonical_result.contexts[inverse[i]],
                                core=pl.core)
            for i, pl in enumerate(placements)
        )
        return dataclasses.replace(canonical_result, contexts=contexts)

    def run_solo(self, profile: WorkloadProfile) -> ContextResult:
        """One context alone on the machine."""
        return self.run([ContextPlacement(profile, core=0)])[0]

    def run_pair(self, a: WorkloadProfile, b: WorkloadProfile,
                 mode: PairMode = "smt") -> RunResult:
        """Two contexts: SMT siblings on core 0, or CMP on cores 0 and 1."""
        self._check_mode(mode)
        core_b = 0 if mode == "smt" else 1
        return self.run([ContextPlacement(a, core=0),
                         ContextPlacement(b, core=core_b)])

    def server_placements(
        self,
        latency_profile: WorkloadProfile,
        batch_profile: WorkloadProfile,
        *,
        instances: int,
        mode: PairMode = "smt",
        latency_threads: int | None = None,
    ) -> list[ContextPlacement]:
        """The placement list :meth:`run_server` solves (for prefetching)."""
        self._check_mode(mode)
        cores = self.machine.cores
        if mode == "smt":
            threads = latency_threads if latency_threads is not None else cores
            if not 0 < threads <= cores:
                raise ConfigurationError(
                    f"latency threads must be in 1..{cores}, got {threads}"
                )
            if not 0 <= instances <= threads:
                raise ConfigurationError(
                    f"SMT batch instances must be in 0..{threads}, got {instances}"
                )
            placements = [ContextPlacement(latency_profile, core=i)
                          for i in range(threads)]
            placements += [ContextPlacement(batch_profile, core=i)
                           for i in range(instances)]
        else:
            threads = latency_threads if latency_threads is not None else cores // 2
            if not 0 < threads <= cores:
                raise ConfigurationError(
                    f"latency threads must be in 1..{cores}, got {threads}"
                )
            if not 0 <= instances <= cores - threads:
                raise ConfigurationError(
                    f"CMP batch instances must be in 0..{cores - threads}, "
                    f"got {instances}"
                )
            placements = [ContextPlacement(latency_profile, core=i)
                          for i in range(threads)]
            placements += [ContextPlacement(batch_profile, core=threads + i)
                           for i in range(instances)]
        return placements

    def run_server(
        self,
        latency_profile: WorkloadProfile,
        batch_profile: WorkloadProfile,
        *,
        instances: int,
        mode: PairMode = "smt",
        latency_threads: int | None = None,
    ) -> RunResult:
        """The CloudSuite server topology (Section IV-B2).

        SMT mode: ``latency_threads`` (default: one per core, i.e. a
        half-loaded server) latency contexts on distinct cores, plus
        ``instances`` batch contexts on the sibling SMT slots of the first
        cores. CMP mode: latency threads on the first cores, batch
        instances on the remaining (otherwise idle) cores.
        """
        return self.run(self.server_placements(
            latency_profile, batch_profile, instances=instances, mode=mode,
            latency_threads=latency_threads,
        ))

    # ------------------------------------------------------------------
    # Measurements (with jitter) and Eq. 7 degradations

    def measure_solo_ipc(self, profile: WorkloadProfile) -> float:
        """Solo IPC as a measurement (jittered)."""
        ipc = self.run_solo(profile).ipc
        return ipc * self._jitter_factor("solo", profile.name)

    def measure_pair(self, a: WorkloadProfile, b: WorkloadProfile,
                     mode: PairMode = "smt") -> PairMeasurement:
        """Co-run IPCs and Eq. 7 degradations, as measurements."""
        result = self.run_pair(a, b, mode)
        ipc_a = result[0].ipc * self._jitter_factor(mode, a.name, b.name, "a")
        ipc_b = result[1].ipc * self._jitter_factor(mode, a.name, b.name, "b")
        solo_a = self.measure_solo_ipc(a)
        solo_b = self.measure_solo_ipc(b)
        return PairMeasurement(
            ipc_a=ipc_a,
            ipc_b=ipc_b,
            degradation_a=(solo_a - ipc_a) / solo_a,  # smite: noqa[SMT302]: solver IPCs are 1/cpi of a positive CPI stack
            degradation_b=(solo_b - ipc_b) / solo_b,  # smite: noqa[SMT302]: solver IPCs are 1/cpi of a positive CPI stack
        )

    def measure_server(
        self,
        latency_profile: WorkloadProfile,
        batch_profile: WorkloadProfile,
        *,
        instances: int,
        mode: PairMode = "smt",
        latency_threads: int | None = None,
    ) -> PairMeasurement:
        """Measured server-topology IPCs and Eq. 7 degradations.

        The latency side is averaged over the latency app's threads (they
        are identical copies; some share a core with a batch instance,
        some do not, and all share the L3/bandwidth with everything); the
        batch side is averaged over the batch instances and compared to a
        solo run of one instance.
        """
        if instances <= 0:
            raise ConfigurationError(
                "measure_server needs at least one batch instance"
            )
        solo = self.run_server(latency_profile, batch_profile, instances=0,
                               mode=mode, latency_threads=latency_threads)
        loaded = self.run_server(latency_profile, batch_profile,
                                 instances=instances, mode=mode,
                                 latency_threads=latency_threads)
        solo_threads = solo.all_named(latency_profile.name)
        loaded_threads = loaded.all_named(latency_profile.name)
        solo_ipc = sum(t.ipc for t in solo_threads) / len(solo_threads)  # smite: noqa[SMT302]: run_server always places at least one latency thread
        loaded_ipc = sum(t.ipc for t in loaded_threads) / len(loaded_threads)  # smite: noqa[SMT302]: run_server always places at least one latency thread
        loaded_ipc *= self._jitter_factor(
            mode, latency_profile.name, batch_profile.name, f"server{instances}"
        )
        batch_threads = loaded.all_named(batch_profile.name)
        batch_ipc = sum(t.ipc for t in batch_threads) / len(batch_threads)  # smite: noqa[SMT302]: instances > 0 is validated above, so batch threads exist
        batch_ipc *= self._jitter_factor(
            mode, latency_profile.name, batch_profile.name,
            f"server-batch{instances}"
        )
        batch_solo = self.measure_solo_ipc(batch_profile)
        return PairMeasurement(
            ipc_a=loaded_ipc,
            ipc_b=batch_ipc,
            degradation_a=(solo_ipc - loaded_ipc) / solo_ipc,  # smite: noqa[SMT302]: solver IPCs are 1/cpi of a positive CPI stack
            degradation_b=(batch_solo - batch_ipc) / batch_solo,  # smite: noqa[SMT302]: solver IPCs are 1/cpi of a positive CPI stack
        )

    def measure_server_degradation(
        self,
        latency_profile: WorkloadProfile,
        batch_profile: WorkloadProfile,
        *,
        instances: int,
        mode: PairMode = "smt",
        latency_threads: int | None = None,
    ) -> float:
        """Measured Eq. 7 degradation of the latency app on a server."""
        if instances == 0:
            return 0.0
        return self.measure_server(
            latency_profile, batch_profile, instances=instances, mode=mode,
            latency_threads=latency_threads,
        ).degradation_a

    def read_solo_pmu(self, profile: WorkloadProfile) -> dict[str, float]:
        """Solo-run PMU counters with the configured defect model."""
        return read_pmu(self.run_solo(profile), self.pmu_defects)

    # ------------------------------------------------------------------

    @property
    def solve_count(self) -> int:
        """Number of distinct (uncached) steady-state solves performed."""
        return self._solve_count

    def clear_cache(self) -> None:
        self._cache.clear()

    @staticmethod
    def _check_mode(mode: str) -> None:
        if mode not in ("smt", "cmp"):
            raise ConfigurationError(f"mode must be 'smt' or 'cmp', got {mode!r}")

    def _jitter_factor(self, *key_parts: str) -> float:
        if self.jitter == 0.0:
            return 1.0
        key = "|".join((self.machine.name, str(self.seed), *key_parts))
        digest = zlib.crc32(key.encode())
        unit = (digest % 1_000_003) / 1_000_003.0
        return 1.0 + self.jitter * (2.0 * unit - 1.0)
