"""Human-readable reports over simulator results.

Operators debugging a co-location want the same views the paper's
analysis uses: where a context's cycles go (CPI stack), which shared
resources a placement saturates, and how a pair's interference
decomposes. These helpers turn :class:`~repro.smt.results.RunResult`
objects into text tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.smt.results import ContextResult, RunResult
from repro.smt.simulator import PairMode, Simulator
from repro.workloads.profile import WorkloadProfile

__all__ = ["cpi_stack", "utilization_report", "InterferenceBreakdown",
           "explain_pair"]

_STACK_COMPONENTS = (
    ("compute", "issue/port/dependency bound"),
    ("contention", "SMT port + front-end queueing"),
    ("smt_overhead", "static SMT sharing cost"),
    ("memory", "cache + DRAM stalls"),
    ("branch", "branch mispredictions"),
    ("tlb", "TLB walks"),
    ("icache", "instruction-cache misses"),
)


def cpi_stack(context: ContextResult) -> str:
    """One context's cycles-per-instruction, component by component."""
    breakdown = context.breakdown
    rows = []
    for attr, label in _STACK_COMPONENTS:
        cycles = getattr(breakdown, attr)
        rows.append((label, cycles, cycles / breakdown.total))  # smite: noqa[SMT302]: total includes compute, floored at the 1-uop front-end occupancy
    rows.append(("TOTAL", breakdown.total, 1.0))
    return format_table(
        ("component", "cycles/instruction", "share"),
        rows,
        title=f"CPI stack: {context.name} (IPC {context.ipc:.3f})",
    )


def utilization_report(result: RunResult) -> str:
    """Port and cache utilization of every context in a placement."""
    rows = []
    for ctx in result.contexts:
        caps = ctx.effective_capacities
        rows.append((
            ctx.name,
            ctx.core,
            ctx.ipc,
            max(ctx.port_utilization.values(), default=0.0),
            f"{caps[0] / 1024:.0f}K/{caps[1] / 1024:.0f}K/"
            f"{caps[2] / (1024 * 1024):.1f}M",
            ctx.hits.memory,
        ))
    return format_table(
        ("context", "core", "ipc", "peak port util",
         "L1/L2/L3 allocation", "DRAM access fraction"),
        rows,
        title=f"placement on {result.machine_name} "
              f"(DRAM utilization {result.dram_utilization:.0%})",
    )


@dataclass(frozen=True)
class InterferenceBreakdown:
    """Where one co-location's slowdown comes from, per CPI component."""

    victim: str
    aggressor: str
    mode: PairMode
    solo_cpi: float
    pair_cpi: float
    component_deltas: tuple[tuple[str, float], ...]

    @property
    def degradation(self) -> float:
        return 1.0 - self.solo_cpi / self.pair_cpi  # smite: noqa[SMT302]: solver CPIs are reciprocals of positive IPCs

    def render(self) -> str:
        rows = [
            (label, delta, delta / (self.pair_cpi - self.solo_cpi)  # smite: noqa[SMT302]: the ternary's pair_cpi > solo_cpi test guards this branch
             if self.pair_cpi > self.solo_cpi else 0.0)
            for label, delta in self.component_deltas
        ]
        return format_table(
            ("extra cycles from", "cycles/instruction", "share of slowdown"),
            rows,
            title=(f"{self.victim} degraded {self.degradation:.1%} by "
                   f"{self.aggressor} ({self.mode.upper()})"),
        )


def explain_pair(
    simulator: Simulator,
    victim: WorkloadProfile,
    aggressor: WorkloadProfile,
    mode: PairMode = "smt",
) -> InterferenceBreakdown:
    """Decompose a co-location's slowdown into CPI-stack deltas.

    Compares the victim's solo and co-located CPI stacks component by
    component — the causal view behind a single degradation number.
    """
    solo = simulator.run_solo(victim)
    pair = simulator.run_pair(victim, aggressor, mode).by_name(victim.name)
    if pair.cpi < solo.cpi:
        raise ConfigurationError(
            f"{victim.name} is not degraded by {aggressor.name}; "
            f"nothing to explain"
        )
    deltas = []
    for attr, label in _STACK_COMPONENTS:
        delta = getattr(pair.breakdown, attr) - getattr(solo.breakdown, attr)
        if abs(delta) > 1e-9:
            deltas.append((label, delta))
    deltas.sort(key=lambda item: -item[1])
    return InterferenceBreakdown(
        victim=victim.name,
        aggressor=aggressor.name,
        mode=mode,
        solo_cpi=solo.cpi,
        pair_cpi=pair.cpi,
        component_deltas=tuple(deltas),
    )
