"""NumPy-vectorized batch backend for the co-run solver.

Every paper figure reduces to thousands of *independent* fixed-point
solves — 33x33 pair grids, ruler characterization sweeps, cluster builds.
:func:`solve_many` stacks those problems into flat arrays and runs the
damped fixed-point iteration for all of them at once, with per-problem
convergence masks so finished problems freeze while the rest keep
iterating.

Semantics are kept deliberately identical to the scalar reference in
:mod:`repro.smt.solver`:

- static per-context quantities (port demand, dependency bound, penalty
  CPIs, occupancy pressures) come from the scalar ``_prepare``;
- capacity shares and hit fractions are intrinsic (IPC-independent), so
  they are computed once up front with the scalar ``_update_capacities``
  — exactly what the scalar loop recomputes, idempotently, every
  iteration;
- the iteration is Gauss-Seidel *in placement order*, exactly like the
  scalar loop: the update for context slot ``k`` is vectorized across
  problems, and later slots see earlier slots' freshly damped IPCs and
  port placements.

Because each problem performs the same arithmetic in the same order as a
scalar :func:`repro.smt.solver.solve` call (modulo float summation
association), per-context IPCs agree to ~1e-9, far inside the 1e-6
fixed-point tolerance. A property test in
``tests/properties/test_prop_batch.py`` enforces the agreement across
the full workload population.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.errors import ConvergenceError
from repro.obs import counter, histogram
from repro.isa.opcodes import ALL_PORTS, PORT_BINDINGS, UopKind
from repro.smt.params import MachineSpec
from repro.smt.results import ContextResult, CpiBreakdown, RunResult
from repro.smt.solver import (_DAMPING, _MAX_ITERATIONS, _TOLERANCE,
                              ContextPlacement, _ContextState, _prepare,
                              _update_capacities)

__all__ = ["solve_many"]

_N_PORTS = len(ALL_PORTS)

#: The order ``WorkloadProfile.uops`` enumerates kinds in; ties in the
#: flexible sort below must respect it to mirror ``split_port_demand``.
_UOP_FIELD_ORDER: tuple[UopKind, ...] = (
    UopKind.FP_MUL, UopKind.FP_ADD, UopKind.FP_SHF, UopKind.INT_ALU,
    UopKind.LOAD, UopKind.STORE, UopKind.BRANCH, UopKind.NOP,
)

#: Flexible kinds in the exact order the scalar balancer places them
#: (fewest port choices first, canonical uop order breaking ties).
_FLEX_KINDS: tuple[UopKind, ...] = tuple(sorted(
    (k for k in _UOP_FIELD_ORDER if len(PORT_BINDINGS[k]) >= 2),
    key=lambda k: len(PORT_BINDINGS[k]),
))


def _water_fill_rows(levels: np.ndarray, amount: np.ndarray) -> np.ndarray:
    """Vectorized water-fill: per-row increments equalizing lowest bins.

    ``levels`` is (m, k); ``amount`` is (m,). Closed form of the classic
    pour: the water level ``W`` satisfies ``sum_i max(0, W - l_i) ==
    amount`` with ``W = (amount + sum of the t* lowest levels) / t*``,
    where ``t*`` is the largest bin count whose candidate level stays
    above its highest member (the valid counts form a prefix).
    """
    k = levels.shape[1]
    sorted_levels = np.sort(levels, axis=1)
    csum = np.cumsum(sorted_levels, axis=1)
    counts = np.arange(1, k + 1, dtype=float)
    candidates = (amount[:, None] + csum) / counts  # smite: noqa[SMT302]: counts = arange(1, k+1) >= 1
    valid = candidates >= sorted_levels
    t_star = valid.sum(axis=1) - 1  # index of the last valid count
    water = np.take_along_axis(candidates, t_star[:, None], axis=1)
    return np.maximum(0.0, water - levels)


class _Packed:
    """Flat context arrays for a batch of independent problems."""

    def __init__(self, machine: MachineSpec,
                 problems: list[list[_ContextState]]) -> None:
        counts = [len(states) for states in problems]
        offsets = np.concatenate(([0], np.cumsum(counts)))
        n = int(offsets[-1])
        self.problems = problems
        self.offsets = offsets
        self.n_contexts = n
        self.n_problems = len(problems)
        self.max_slots = max(counts)

        self.prob = np.repeat(np.arange(self.n_problems), counts)
        self.slot = np.concatenate([np.arange(c) for c in counts])
        # Globally unique (problem, core) ids so one bincount aggregates
        # every core of every problem without cross-talk.
        core_keys: dict[tuple[int, int], int] = {}
        core_gid = np.empty(n, dtype=np.intp)
        flat = [state for states in problems for state in states]
        for i, state in enumerate(flat):
            key = (int(self.prob[i]), state.placement.core)
            core_gid[i] = core_keys.setdefault(key, len(core_keys))
        self.core_gid = core_gid
        self.n_cores = len(core_keys)
        core_count = np.bincount(core_gid, minlength=self.n_cores)
        self.n_sib = core_count[core_gid] - 1
        # Fused (core, port) bucket keys: one bincount aggregates all
        # ports' sibling pressure instead of one bincount per port.
        self.core_port_key = (core_gid[:, None] * _N_PORTS
                              + np.arange(_N_PORTS)).ravel()

        self.port_demand = np.array(
            [[s.port_demand[p] for p in ALL_PORTS] for s in flat]
        )
        from repro.smt.ports import split_port_demand

        pinned = np.zeros((n, _N_PORTS))
        flex_rates = np.zeros((n, len(_FLEX_KINDS)))
        for i, state in enumerate(flat):
            base, flexible = split_port_demand(state.profile.uops)
            for p in ALL_PORTS:
                pinned[i, p] = base[p]
            rates = {kind: rate for kind, rate, _ports in flexible}
            for j, kind in enumerate(_FLEX_KINDS):
                flex_rates[i, j] = rates.get(kind, 0.0)
        self.pinned = pinned
        self.flex_rates = flex_rates
        self.flex_ports = [np.array(PORT_BINDINGS[k], dtype=np.intp)
                           for k in _FLEX_KINDS]

        self.uops_eff = np.array([max(s.uops_total, 1.0) for s in flat])
        self.dep_bound = np.array([s.dep_bound for s in flat])
        self.apki = np.array([s.apki for s in flat])
        self.mlp = np.array([s.profile.mlp for s in flat])
        self.throttle = np.array([s.throttle_cpi for s in flat])
        self.branch_cpi = np.array(
            [s.profile.branch_misprediction_rate * machine.branch_penalty_cycles
             for s in flat])
        self.tlb_cpi = np.array(
            [(s.profile.itlb_mpki + s.profile.dtlb_mpki) / 1000.0
             * machine.tlb_walk_cycles for s in flat])
        self.icache_cpi = np.array(
            [s.profile.icache_mpki / 1000.0 * machine.icache_miss_cycles
             for s in flat])
        self.h1 = np.array([s.hits.l1 for s in flat])
        self.h2 = np.array([s.hits.l2 for s in flat])
        self.h3 = np.array([s.hits.l3 for s in flat])
        self.hm = np.array([s.hits.memory for s in flat])

        self.ipc = np.ones(n)
        self.breakdown = {field: np.zeros(n) for field in (
            "frontend", "port", "dependency", "compute", "contention",
            "smt_overhead", "memory")}
        self.breakdown["dependency"] = self.dep_bound

        # slots_idx[s]: flat index of slot s in every problem that has one.
        self.slots_idx = [
            (offsets[:-1] + s)[np.asarray(counts) > s]
            for s in range(self.max_slots)
        ]


def _slot_update(machine: MachineSpec, pk: _Packed, idx: np.ndarray,
                 dram_lat: np.ndarray) -> np.ndarray:
    """One Gauss-Seidel update of context slot ``idx`` (vectorized).

    Mirrors the scalar ``_compute_cpi`` plus the damped IPC update;
    returns each updated context's relative IPC delta.
    """
    width = machine.issue_width
    rho_cap = machine.contention_rho_cap

    # Sibling background per port: per-core totals minus own contribution.
    # One bincount over fused (core, port) keys covers every port; the
    # per-bucket accumulation order matches the per-port version, so the
    # sums are bitwise identical.
    ipd = pk.ipc[:, None] * pk.port_demand
    core_ipd = np.bincount(
        pk.core_port_key, weights=ipd.ravel(),
        minlength=pk.n_cores * _N_PORTS,
    ).reshape(pk.n_cores, _N_PORTS)
    bg = core_ipd[pk.core_gid[idx]] - ipd[idx]

    # Re-place flexible uops against the sibling pressure (water-fill),
    # then damp — same steering-and-damping as the scalar solver.
    demand = pk.pinned[idx].copy()
    own_rate = pk.ipc[idx]
    for j, ports in enumerate(pk.flex_ports):
        levels = demand[:, ports] + bg[:, ports] / own_rate[:, None]  # smite: noqa[SMT302]: pk.ipc starts positive and damped updates keep it positive
        demand[:, ports] += _water_fill_rows(levels, pk.flex_rates[idx, j])
    new_demand = _DAMPING * pk.port_demand[idx] + (1.0 - _DAMPING) * demand
    pk.port_demand[idx] = new_demand

    port_bound = new_demand.max(axis=1)
    clipped = np.minimum(bg, rho_cap)
    inflation = machine.port_contention_kappa * clipped / (1.0 - clipped)  # smite: noqa[SMT302]: clipped <= contention_rho_cap, validated < 1 by MachineSpec
    port_delay = (new_demand * inflation).sum(axis=1)

    fe_occ = pk.uops_eff[idx] / width  # smite: noqa[SMT302]: MachineSpec validates issue_width positive
    core_fe = np.bincount(pk.core_gid, weights=pk.ipc * pk.uops_eff,
                          minlength=pk.n_cores)
    rho_fe = (core_fe[pk.core_gid[idx]]  # smite: noqa[SMT302]: MachineSpec validates issue_width positive
              - pk.ipc[idx] * pk.uops_eff[idx]) / width
    clip_fe = np.minimum(rho_fe, rho_cap)
    fe_delay = fe_occ * (machine.frontend_contention_kappa  # smite: noqa[SMT302]: clip_fe <= contention_rho_cap, validated < 1 by MachineSpec
                         * clip_fe / (1.0 - clip_fe))

    throughput = np.maximum(fe_occ, port_bound)
    compute = np.maximum(throughput, pk.dep_bound[idx])
    visibility = np.minimum(1.0, throughput / compute)  # smite: noqa[SMT302]: compute = maximum(throughput, dep_bound) >= fe_occ > 0
    contention = (port_delay + fe_delay) * visibility
    has_sib = pk.n_sib[idx] > 0
    overhead = np.where(has_sib, compute * machine.smt_static_overhead, 0.0)

    # MSHR-shared memory stalls: siblings' in-flight misses (Little's
    # law) reduce the overlap this context can sustain.
    inflight = np.minimum(pk.mlp, pk.ipc * pk.apki * pk.hm * dram_lat[pk.prob])
    core_infl = np.bincount(pk.core_gid, weights=inflight,
                            minlength=pk.n_cores)
    occupied = core_infl[pk.core_gid[idx]] - inflight[idx]
    available = np.maximum(1.0, machine.mshr_count - occupied)
    mlp_eff = np.where(
        has_sib,
        np.minimum(pk.mlp[idx], available)
        / (1.0 + machine.smt_mlp_penalty * pk.n_sib[idx]),
        pk.mlp[idx],
    )
    dl = dram_lat[pk.prob[idx]]
    per_access = (pk.h1[idx] * machine.l1d.latency_cycles
                  + pk.h2[idx] * machine.l2.latency_cycles
                  + pk.h3[idx] * machine.l3.latency_cycles
                  + pk.hm[idx] * dl)
    memory = np.where(
        pk.apki[idx] > 0.0,
        pk.apki[idx] * per_access / np.maximum(mlp_eff, 1.0),
        0.0,
    )

    cpi = (compute + contention + overhead + memory + pk.branch_cpi[idx]
           + pk.tlb_cpi[idx] + pk.icache_cpi[idx] + pk.throttle[idx])
    new_ipc = 1.0 / cpi  # smite: noqa[SMT302]: cpi includes compute, floored at the 1-uop front-end occupancy
    delta = np.abs(new_ipc - pk.ipc[idx]) / np.maximum(pk.ipc[idx], 1e-12)
    pk.ipc[idx] = _DAMPING * pk.ipc[idx] + (1.0 - _DAMPING) * new_ipc

    bd = pk.breakdown
    bd["frontend"][idx] = fe_occ
    bd["port"][idx] = port_bound
    bd["compute"][idx] = compute
    bd["contention"][idx] = contention
    bd["smt_overhead"][idx] = overhead
    bd["memory"][idx] = memory
    return delta


def solve_many(
    machine: MachineSpec,
    placements_list: Sequence[Sequence[ContextPlacement]],
    *,
    max_iterations: int = _MAX_ITERATIONS,
    tolerance: float = _TOLERANCE,
) -> list[RunResult]:
    """Solve many independent placements in one stacked iteration.

    Each element of ``placements_list`` is an independent co-location
    problem (the argument :func:`repro.smt.solver.solve` takes); the
    returned list matches its order. Problems converge independently —
    a problem that reaches the fixed-point tolerance freezes while the
    others keep iterating.
    """
    if not placements_list:
        return []
    started = time.perf_counter()
    counter("smt.batch.calls").inc()
    counter("smt.batch.problems").inc(len(placements_list))
    histogram("smt.batch.batch_size").record(len(placements_list))
    problems = [_prepare(machine, pls) for pls in placements_list]
    # Capacity shares and hit fractions depend only on intrinsic
    # pressures, so one pass pins them for the whole iteration (the
    # scalar loop recomputes the same values every iteration).
    for states in problems:
        _update_capacities(machine, states)
    pk = _Packed(machine, problems)

    line = float(machine.l3.line_bytes)
    peak = machine.dram_bytes_per_cycle
    beta = machine.bandwidth_beta
    bw_cap = machine.bandwidth_rho_cap

    n_problems = pk.n_problems
    active = np.ones(n_problems, dtype=bool)
    factor = np.ones(n_problems)
    dram_rho = np.zeros(n_problems)
    iterations = np.zeros(n_problems, dtype=np.intp)

    for iteration in range(1, max_iterations + 1):
        iterations[active] = iteration
        traffic = np.bincount(pk.prob,
                              weights=pk.ipc * pk.apki * pk.hm * line,
                              minlength=n_problems)
        rho = np.minimum(traffic / peak, bw_cap)  # smite: noqa[SMT302]: MachineSpec validates dram_bytes_per_cycle positive
        new_factor = 1.0 + beta * rho / (1.0 - rho)  # smite: noqa[SMT302]: rho <= bandwidth_rho_cap, validated < 1 by MachineSpec
        factor = np.where(active,
                          _DAMPING * factor + (1.0 - _DAMPING) * new_factor,
                          factor)
        dram_rho = np.where(active, rho, dram_rho)
        dram_lat = machine.dram_latency_cycles * factor

        max_delta = np.zeros(n_problems)
        for idx_all in pk.slots_idx:
            idx = idx_all[active[pk.prob[idx_all]]]
            if idx.size == 0:
                continue
            delta = _slot_update(machine, pk, idx, dram_lat)
            p_idx = pk.prob[idx]
            max_delta[p_idx] = np.maximum(max_delta[p_idx], delta)
        active &= max_delta >= tolerance
        if not active.any():
            break
    if active.any():
        worst = float(max_delta[active].max())
        raise ConvergenceError(
            f"{int(active.sum())} of {n_problems} batched co-run solves did "
            f"not converge in {max_iterations} iterations "
            f"(worst delta {worst:.3e})"
        )

    results = []
    for p, states in enumerate(problems):
        contexts = []
        for local, state in enumerate(states):
            g = int(pk.offsets[p]) + local
            breakdown = CpiBreakdown(
                frontend=float(pk.breakdown["frontend"][g]),
                port=float(pk.breakdown["port"][g]),
                dependency=float(pk.breakdown["dependency"][g]),
                compute=float(pk.breakdown["compute"][g]),
                contention=float(pk.breakdown["contention"][g]),
                smt_overhead=float(pk.breakdown["smt_overhead"][g]),
                memory=float(pk.breakdown["memory"][g]),
                branch=float(pk.branch_cpi[g]),
                tlb=float(pk.tlb_cpi[g]),
                icache=float(pk.icache_cpi[g]),
            )
            utilization = {
                port: min(1.0, float(pk.ipc[g] * pk.port_demand[g, port]))
                for port in ALL_PORTS
            }
            contexts.append(ContextResult(
                profile=state.profile,
                core=state.placement.core,
                ipc=float(pk.ipc[g]),
                breakdown=breakdown,
                hits=state.hits,
                port_utilization=utilization,
                effective_capacities=state.capacities,
            ))
        results.append(RunResult(
            machine_name=machine.name,
            contexts=tuple(contexts),
            dram_utilization=float(dram_rho[p]),
            iterations=int(iterations[p]),
        ))
    histogram("smt.batch.solve_seconds").record(time.perf_counter() - started)
    return results
