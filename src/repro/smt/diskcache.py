"""Persistent on-disk cache for steady-state solves.

Re-running the experiment pipeline after an unrelated edit should skip
every already-converged solve. The cache keys a solve by a content hash
of everything that determines its result:

- the full machine spec (architecture facts *and* model knobs);
- the canonical placement: every profile's full value tuple plus its
  core assignment;
- the solver's iteration limits; and
- a hash of the interference-model *source code* itself, so editing the
  model silently invalidates stale entries while edits elsewhere in the
  repo (experiments, scheduler, docs) leave the cache warm.

Entries are one pickle file per solve under ``<root>/solves/<hh>/``,
written atomically (temp file + rename) so concurrent experiment workers
can share one cache directory without locking. The default location is
``.smite_cache/`` in the working directory; ``SMITE_CACHE_DIR`` moves it
and ``SMITE_NO_CACHE=1`` disables it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Sequence

from repro.obs import counter
from repro.smt.params import MachineSpec
from repro.smt.results import RunResult
from repro.smt.solver import ContextPlacement

__all__ = ["PersistentSolveCache", "default_cache", "solve_key"]

_CACHE_SCHEMA_VERSION = 1


@lru_cache(maxsize=1)
def _model_code_hash() -> str:
    """Hash of every source file whose edits change solve results."""
    from repro.isa import opcodes
    from repro.smt import batch, cache, membw, params, ports, results, solver
    from repro.workloads import profile

    digest = hashlib.sha256()
    for module in (solver, batch, cache, ports, membw, params, results,
                   profile, opcodes):
        digest.update(Path(module.__file__).read_bytes())
    return digest.hexdigest()


def _machine_payload(machine: MachineSpec) -> str:
    """The machine's rendered value tuple, cached on the frozen instance."""
    try:
        return machine.__dict__["_cache_payload"]
    except KeyError:
        payload = repr(dataclasses.astuple(machine))
        object.__setattr__(machine, "_cache_payload", payload)
        return payload


def _profile_payload(profile) -> str:
    """A profile's rendered value tuple, cached on the frozen instance."""
    try:
        return profile.__dict__["_cache_payload"]
    except KeyError:
        payload = repr(profile.key())
        object.__setattr__(profile, "_cache_payload", payload)
        return payload


def solve_key(machine: MachineSpec,
              placements: Sequence[ContextPlacement],
              *,
              max_iterations: int | None = None,
              tolerance: float | None = None) -> str:
    """Deterministic content hash identifying one solve."""
    payload = repr((
        _CACHE_SCHEMA_VERSION,
        _machine_payload(machine),
        [(_profile_payload(pl.profile), pl.core) for pl in placements],
        max_iterations,
        tolerance,
    ))
    digest = hashlib.sha256(_model_code_hash().encode())
    digest.update(payload.encode())
    return digest.hexdigest()


class PersistentSolveCache:
    """A directory of pickled :class:`RunResult` keyed by content hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> Path:
        return self.root / "solves" / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> RunResult | None:
        counter("smt.diskcache.requests").inc()
        path = self._path(key)
        try:
            payload = path.read_bytes()
            result = pickle.loads(payload)
        except FileNotFoundError:
            self.misses += 1
            counter("smt.diskcache.misses").inc()
            return None
        except Exception:
            # A truncated or stale-format entry can raise nearly anything
            # out of the pickle machinery (UnpicklingError, ValueError,
            # EOFError, AttributeError, ...): drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            counter("smt.diskcache.misses").inc()
            counter("smt.diskcache.invalidations").inc()
            return None
        self.hits += 1
        counter("smt.diskcache.hits").inc()
        counter("smt.diskcache.bytes_read").inc(len(payload))
        return result

    def put(self, key: str, result: RunResult) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, path)  # atomic on POSIX: safe across workers
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        counter("smt.diskcache.writes").inc()
        counter("smt.diskcache.bytes_written").inc(len(payload))

    def __len__(self) -> int:
        solves = self.root / "solves"
        if not solves.is_dir():
            return 0
        return sum(1 for _ in solves.glob("*/*.pkl"))


def default_cache() -> PersistentSolveCache | None:
    """The environment-configured cache (None when disabled).

    ``SMITE_CACHE_DIR`` overrides the ``.smite_cache`` default (an empty
    value disables caching, as does ``SMITE_NO_CACHE=1``).
    """
    if os.environ.get("SMITE_NO_CACHE"):
        return None
    root = os.environ.get("SMITE_CACHE_DIR", ".smite_cache")
    if not root:
        return None
    return PersistentSolveCache(root)
