"""Shared DRAM bandwidth: traffic accounting and queueing-latency inflation.

All contexts on a chip share finite memory bandwidth. Traffic is every
L3-missing access times the line size; as aggregate traffic approaches the
peak, effective DRAM latency inflates with the usual open-queue factor
``1 + beta * rho / (1 - rho)`` (rho capped to keep the model finite when a
streaming workload would nominally over-subscribe the channels).

:mod:`repro.smt.batch` evaluates the same traffic sum and latency factor
per problem inside its stacked iteration; keep the formulas in lockstep.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["aggregate_traffic", "dram_latency_factor"]


def aggregate_traffic(
    per_context_traffic: Sequence[float],
) -> float:
    """Sum per-context DRAM traffic (bytes per cycle)."""
    total = 0.0
    for t in per_context_traffic:
        if t < 0:
            raise ConfigurationError(f"negative DRAM traffic ({t})")
        total += t
    return total


def dram_latency_factor(
    traffic_bytes_per_cycle: float,
    peak_bytes_per_cycle: float,
    beta: float,
    rho_cap: float,
) -> float:
    """Latency multiplier for the current bandwidth utilization."""
    if peak_bytes_per_cycle <= 0:
        raise ConfigurationError("peak bandwidth must be positive")
    if traffic_bytes_per_cycle < 0:
        raise ConfigurationError("traffic cannot be negative")
    rho = min(traffic_bytes_per_cycle / peak_bytes_per_cycle, rho_cap)
    return 1.0 + beta * rho / (1.0 - rho)  # smite: noqa[SMT302]: rho is capped at rho_cap, validated < 1 by MachineSpec
