"""Machine specifications and simulator model parameters.

Two machines mirror the paper's Table I: an Intel Xeon E5-2420 (Sandy
Bridge-EN) and an Intel i7-3770 (Ivy Bridge). Beyond the architectural
facts (frequency, core count, cache sizes), :class:`MachineSpec` carries
the interference-model knobs — contention inflation, capacity-share floor,
bandwidth queueing — which DESIGN.md calls out for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["CacheSpec", "MachineSpec", "SANDY_BRIDGE_EN", "IVY_BRIDGE", "MACHINES"]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class CacheSpec:
    """One cache level: capacity and hit latency (cycles)."""

    size_bytes: int
    latency_cycles: float
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("cache size must be positive")
        if self.latency_cycles < 0:
            raise ConfigurationError("cache latency must be non-negative")
        if self.line_bytes <= 0:
            raise ConfigurationError("cache line size must be positive")


@dataclass(frozen=True)
class MachineSpec:
    """A complete machine description plus interference-model parameters.

    Sharing scopes are fixed by the architecture: under SMT, contexts on
    one core share the front end, all six ports, and the private L1/L2;
    every context on the chip shares the L3 and DRAM bandwidth. CMP
    co-locations therefore only contend on L3 and bandwidth.
    """

    name: str
    processor: str
    microarchitecture: str
    kernel_version: str
    frequency_ghz: float
    cores: int
    smt_contexts_per_core: int
    issue_width: float
    l1d: CacheSpec
    l2: CacheSpec
    l3: CacheSpec
    dram_latency_cycles: float
    dram_bandwidth_gbps: float
    branch_penalty_cycles: float = 15.0
    tlb_walk_cycles: float = 30.0
    icache_miss_cycles: float = 12.0
    # --- interference model knobs (ablation targets) ---
    #: scales port/front-end queueing delay: f = 1 + k * rho / (1 - rho)
    port_contention_kappa: float = 0.8
    frontend_contention_kappa: float = 0.15
    #: competitor utilization is capped here to keep inflation finite
    contention_rho_cap: float = 0.92
    #: multiplicative CPI overhead for merely sharing a core (ROB/queues
    #: partitioning and other resources Eq. 3 folds into its constant)
    smt_static_overhead: float = 0.04
    #: mild divisor on memory-level parallelism per active sibling
    #: (load-queue entry competition felt by every memory access)
    smt_mlp_penalty: float = 0.05
    #: miss-status-holding registers per core, competitively shared by
    #: SMT siblings: a sibling's in-flight misses reduce the overlap this
    #: context can sustain (Little's law gives the sibling occupancy)
    mshr_count: float = 14.0
    #: exponent of the capacity-capture curve: resident = (C/F)^e for C < F
    capture_exponent: float = 0.65
    #: reuse discount on occupancy pressure for footprints dwarfing a
    #: level: occupancy scales by (C/F)^e (0 disables the discount)
    reuse_exponent: float = 0.0
    #: no context's shared-cache allocation falls below this share
    capacity_share_floor: float = 0.08
    #: DRAM queueing latency: lat * (1 + beta * rho / (1 - rho)), rho capped
    bandwidth_beta: float = 0.35
    bandwidth_rho_cap: float = 0.95

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.cores < 1:
            raise ConfigurationError("need at least one core")
        if self.smt_contexts_per_core < 1:
            raise ConfigurationError("need at least one SMT context per core")
        if self.issue_width <= 0:
            raise ConfigurationError("issue width must be positive")
        if not (self.l1d.size_bytes < self.l2.size_bytes < self.l3.size_bytes):
            raise ConfigurationError("cache sizes must grow strictly L1 < L2 < L3")
        if self.dram_latency_cycles <= 0 or self.dram_bandwidth_gbps <= 0:
            raise ConfigurationError("DRAM parameters must be positive")
        if not 0.0 < self.contention_rho_cap < 1.0:
            raise ConfigurationError("contention rho cap must be in (0, 1)")
        if not 0.0 < self.bandwidth_rho_cap < 1.0:
            raise ConfigurationError("bandwidth rho cap must be in (0, 1)")
        if not 0.0 < self.capture_exponent <= 1.0:
            raise ConfigurationError("capture exponent must be in (0, 1]")
        if not 0.0 <= self.capacity_share_floor < 0.5:
            raise ConfigurationError("capacity share floor must be in [0, 0.5)")

    @property
    def total_contexts(self) -> int:
        return self.cores * self.smt_contexts_per_core

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Peak DRAM bandwidth expressed in bytes per core cycle."""
        return self.dram_bandwidth_gbps / self.frequency_ghz

    def cache_levels(self) -> tuple[CacheSpec, CacheSpec, CacheSpec]:
        return (self.l1d, self.l2, self.l3)

    def with_knobs(self, **changes: float) -> "MachineSpec":
        """A copy with model knobs altered (used by the ablation benches)."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: Table I, row 1 — the CloudSuite/scale-out machine (6C/12T).
SANDY_BRIDGE_EN = MachineSpec(
    name="sandy-bridge-en",
    processor="Intel Xeon E5-2420 @ 1.90GHz",
    microarchitecture="Sandy Bridge-EN",
    kernel_version="3.8.0",
    frequency_ghz=1.9,
    cores=6,
    smt_contexts_per_core=2,
    issue_width=4.0,
    l1d=CacheSpec(size_bytes=32 * KB, latency_cycles=0.0),
    l2=CacheSpec(size_bytes=256 * KB, latency_cycles=12.0),
    l3=CacheSpec(size_bytes=15 * MB, latency_cycles=30.0),
    dram_latency_cycles=140.0,
    dram_bandwidth_gbps=32.0,
)

#: Table I, row 2 — the SPEC prediction-accuracy machine (4C/8T).
IVY_BRIDGE = MachineSpec(
    name="ivy-bridge",
    processor="Intel i7-3770 @ 3.40GHz",
    microarchitecture="Ivy Bridge",
    kernel_version="3.8.0",
    frequency_ghz=3.4,
    cores=4,
    smt_contexts_per_core=2,
    issue_width=4.0,
    l1d=CacheSpec(size_bytes=32 * KB, latency_cycles=0.0),
    l2=CacheSpec(size_bytes=256 * KB, latency_cycles=12.0),
    l3=CacheSpec(size_bytes=8 * MB, latency_cycles=28.0),
    dram_latency_cycles=190.0,
    dram_bandwidth_gbps=25.6,
)

MACHINES: dict[str, MachineSpec] = {
    SANDY_BRIDGE_EN.name: SANDY_BRIDGE_EN,
    IVY_BRIDGE.name: IVY_BRIDGE,
}
