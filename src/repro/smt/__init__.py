"""Analytic SMT multicore interference simulator.

This package is the stand-in for the paper's real Sandy Bridge-EN / Ivy
Bridge machines (DESIGN.md, Substitutions). It models the resources the
paper identifies as the SMT sharing dimensions:

- six execution ports with port-specific functional units (Figure 1),
  contended between hardware contexts on the same core;
- the shared front-end issue width;
- private L1/L2 caches shared *within* a core under SMT, the L3 shared
  chip-wide, all with capacity-pressure-proportional sharing;
- finite DRAM bandwidth with queueing-latency inflation;
- fixed penalties (branch mispredicts, TLB walks, i-cache misses).

A damped fixed-point solver finds the steady-state IPC of every hardware
context simultaneously; :class:`~repro.smt.simulator.Simulator` is the
user-facing facade with solo/SMT-pair/CMP-pair/server topologies and
deterministic measurement jitter.
"""

from repro.smt.params import (
    IVY_BRIDGE,
    MACHINES,
    SANDY_BRIDGE_EN,
    CacheSpec,
    MachineSpec,
)
from repro.smt.pmu import PMU_COUNTERS, PmuDefectModel, read_pmu
from repro.smt.reporting import (
    InterferenceBreakdown,
    cpi_stack,
    explain_pair,
    utilization_report,
)
from repro.smt.results import ContextResult, CpiBreakdown, RunResult
from repro.smt.simulator import ContextPlacement, Simulator

__all__ = [
    "IVY_BRIDGE",
    "MACHINES",
    "SANDY_BRIDGE_EN",
    "CacheSpec",
    "MachineSpec",
    "PMU_COUNTERS",
    "PmuDefectModel",
    "read_pmu",
    "InterferenceBreakdown",
    "cpi_stack",
    "explain_pair",
    "utilization_report",
    "ContextResult",
    "CpiBreakdown",
    "RunResult",
    "ContextPlacement",
    "Simulator",
]
