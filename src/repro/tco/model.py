"""The 3-year TCO model for a fleet configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tco.params import TcoParams

__all__ = ["TcoBreakdown", "TcoModel"]

_HOURS_PER_YEAR = 24.0 * 365.0


@dataclass(frozen=True)
class TcoBreakdown:
    """Where a fleet's 3-year cost goes (all USD)."""

    server_capex: float
    server_interest: float
    datacenter_capex: float
    energy: float
    maintenance: float

    @property
    def total(self) -> float:
        return (self.server_capex + self.server_interest
                + self.datacenter_capex + self.energy + self.maintenance)


@dataclass(frozen=True)
class TcoModel:
    """Barroso–Hölzle-style analytical TCO over a fixed horizon."""

    params: TcoParams
    horizon_years: float = 3.0

    def __post_init__(self) -> None:
        if self.horizon_years <= 0:
            raise ConfigurationError("TCO horizon must be positive")

    def fleet_tco(self, n_servers: int, average_utilization: float) -> TcoBreakdown:
        """3-year TCO of ``n_servers`` at a given average utilization.

        Server capex is charged for the horizon (horizon = amortization
        by default); facility capex is charged pro-rata for the horizon
        over its longer amortization, sized by *provisioned* (peak × PUE)
        power; energy is the PUE-burdened average draw.
        """
        if n_servers < 0:
            raise ConfigurationError("server count must be >= 0")
        p = self.params
        server_capex = (n_servers * p.server_price_usd
                        * min(1.0, self.horizon_years / p.server_amortization_years))
        # Simple-interest charge on the average outstanding server capital.
        server_interest = (n_servers * p.server_price_usd / 2.0
                           * p.annual_interest_rate * self.horizon_years)
        provisioned_w = n_servers * p.server_peak_power_w * p.pue
        datacenter_capex = (provisioned_w * p.datacenter_capex_per_w
                            * self.horizon_years / p.datacenter_amortization_years)
        avg_power_w = n_servers * p.server_power_w(average_utilization) * p.pue
        energy = (avg_power_w / 1000.0) * _HOURS_PER_YEAR * self.horizon_years \
            * p.electricity_usd_per_kwh
        maintenance = (n_servers * p.server_price_usd
                       * p.maintenance_fraction_per_year * self.horizon_years)
        return TcoBreakdown(
            server_capex=server_capex,
            server_interest=server_interest,
            datacenter_capex=datacenter_capex,
            energy=energy,
            maintenance=maintenance,
        )
