"""TCO model parameters.

Defaults follow the worked examples in "The Datacenter as a Computer"
(Barroso, Clidaras, Hölzle — the paper's reference [21]) and the Google
fleet-wide PUE the paper cites [22] (1.12 as of 2014).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["TcoParams", "GOOGLE_PUE_2014"]

#: The Google fleet-wide trailing PUE the paper uses as model input.
GOOGLE_PUE_2014 = 1.12


@dataclass(frozen=True)
class TcoParams:
    """Inputs to the 3-year TCO model."""

    server_price_usd: float = 2500.0
    server_amortization_years: float = 3.0
    #: peak server power at full utilization (both SMT contexts busy)
    server_peak_power_w: float = 250.0
    #: idle power as a fraction of peak (servers are not energy
    #: proportional — Barroso & Hölzle's motivating observation)
    idle_power_fraction: float = 0.5
    #: facility capital cost per provisioned watt of critical power
    datacenter_capex_per_w: float = 12.0
    datacenter_amortization_years: float = 12.0
    electricity_usd_per_kwh: float = 0.07
    pue: float = GOOGLE_PUE_2014
    #: yearly maintenance/opex as a fraction of server capex
    maintenance_fraction_per_year: float = 0.05
    #: cost of capital applied to amortized capital
    annual_interest_rate: float = 0.08

    def __post_init__(self) -> None:
        if self.server_price_usd <= 0:
            raise ConfigurationError("server price must be positive")
        if self.server_amortization_years <= 0:
            raise ConfigurationError("server amortization must be positive")
        if self.server_peak_power_w <= 0:
            raise ConfigurationError("server peak power must be positive")
        if not 0.0 <= self.idle_power_fraction <= 1.0:
            raise ConfigurationError("idle power fraction must be in [0, 1]")
        if self.datacenter_capex_per_w < 0:
            raise ConfigurationError("datacenter capex must be >= 0")
        if self.datacenter_amortization_years <= 0:
            raise ConfigurationError("datacenter amortization must be positive")
        if self.electricity_usd_per_kwh <= 0:
            raise ConfigurationError("electricity price must be positive")
        if self.pue < 1.0:
            raise ConfigurationError("PUE cannot be below 1.0")
        if self.maintenance_fraction_per_year < 0:
            raise ConfigurationError("maintenance fraction must be >= 0")
        if self.annual_interest_rate < 0:
            raise ConfigurationError("interest rate must be >= 0")

    def server_power_w(self, utilization: float) -> float:
        """Linear power model between idle and peak."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        idle = self.server_peak_power_w * self.idle_power_fraction
        return idle + (self.server_peak_power_w - idle) * utilization
