"""Total-cost-of-ownership analysis (Section IV-E, Figure 18).

A Barroso–Hölzle-style analytical TCO model [21]: servers are amortized
over 3 years, datacenter capital over its provisioned power, and energy
is burdened by the facility PUE. Co-location lets the same batch
throughput run on the latency-tier's idle SMT contexts, eliminating
batch servers — the saving the paper quantifies per QoS target.
"""

from repro.tco.analysis import ColocationTcoAnalysis, TcoSavings
from repro.tco.model import TcoBreakdown, TcoModel
from repro.tco.params import GOOGLE_PUE_2014, TcoParams

__all__ = [
    "ColocationTcoAnalysis",
    "TcoSavings",
    "TcoBreakdown",
    "TcoModel",
    "GOOGLE_PUE_2014",
    "TcoParams",
]
