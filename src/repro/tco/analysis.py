"""Co-location TCO savings (Figure 18).

Baseline: half the fleet serves latency-sensitive traffic half-loaded
(one of two SMT contexts per core busy), the other half runs batch work
with every core busy on one context (the no-SMT-co-location policy
applies fleet-wide). Applying SMiTe, the latency tier's idle contexts
absorb batch instances, so a matching amount of batch-tier capacity —
whole servers — is decommissioned. The utilization improvement per QoS
target comes straight from the scale-out study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tco.model import TcoModel

__all__ = ["TcoSavings", "ColocationTcoAnalysis"]


@dataclass(frozen=True)
class TcoSavings:
    """Baseline vs. co-located fleet cost at one QoS target."""

    qos_level: float
    baseline_tco: float
    colocated_tco: float
    servers_removed: int

    @property
    def saving_fraction(self) -> float:
        if self.baseline_tco == 0:
            return 0.0
        return 1.0 - self.colocated_tco / self.baseline_tco


@dataclass(frozen=True)
class ColocationTcoAnalysis:
    """Turn scale-out utilization improvements into fleet TCO savings."""

    model: TcoModel
    latency_servers: int = 2000
    batch_servers: int = 2000
    #: contexts a latency server's idle SMT slots can absorb (= cores)
    slots_per_latency_server: int = 6
    #: batch instances a dedicated batch server runs in the baseline
    #: (one per core — the baseline disallows SMT co-location everywhere)
    instances_per_batch_server: int = 6

    def __post_init__(self) -> None:
        if self.latency_servers < 0 or self.batch_servers < 0:
            raise ConfigurationError("server counts must be >= 0")
        if self.slots_per_latency_server <= 0:
            raise ConfigurationError("slots per latency server must be positive")
        if self.instances_per_batch_server <= 0:
            raise ConfigurationError("instances per batch server must be positive")

    def savings_for(self, qos_level: float,
                    utilization_improvement: float) -> TcoSavings:
        """TCO saving for one QoS target's utilization improvement.

        ``utilization_improvement`` is the scale-out study's relative gain
        (admitted instances / baseline busy contexts); each admitted
        instance displaces 1/instances_per_batch_server of a batch server.
        """
        if utilization_improvement < 0:
            raise ConfigurationError("utilization improvement must be >= 0")
        absorbed_instances = (utilization_improvement
                              * self.latency_servers
                              * self.slots_per_latency_server)
        removable = int(absorbed_instances / self.instances_per_batch_server)
        removable = min(removable, self.batch_servers)

        # Utilization by hardware context: latency servers are half busy in
        # the baseline; batch servers run one of two contexts per core.
        baseline = (
            self.model.fleet_tco(self.latency_servers, 0.5).total
            + self.model.fleet_tco(self.batch_servers, 0.5).total
        )
        colocated_latency_util = 0.5 * (1.0 + utilization_improvement)
        colocated = (
            self.model.fleet_tco(self.latency_servers,
                                 min(1.0, colocated_latency_util)).total
            + self.model.fleet_tco(self.batch_servers - removable, 0.5).total
        )
        return TcoSavings(
            qos_level=qos_level,
            baseline_tco=baseline,
            colocated_tco=colocated,
            servers_removed=removable,
        )
