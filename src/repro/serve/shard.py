"""Per-pool placement kernel and multi-process shard fan-out.

The vectorized replay splits each epoch's work into three phases; this
module owns phase two — *placement* — which is the only phase whose state
is per server pool and therefore shards cleanly. The kernel
(:func:`replay_pool_events`) consumes one pool's pre-decided event
stream (columnar, already filtered to events that can touch pool state)
and replays it with O(1) free-list structures:

- ``prof_of`` / ``cnt_of``: the batch profile and instance count of
  every server (``-1`` / ``0`` when idle);
- a lazily-validated min-heap per ``(profile, count)`` bucket plus an
  idle-server heap, giving the scalar engine's bin-packing rule —
  fullest same-profile server under the cap, lowest index on ties, else
  the lowest-index idle server — without scanning the pool;
- ``n_at`` occupancy counts, snapshotted after each epoch into the
  ``(profile, instances) -> servers`` groups the SLO/audit scorer needs.

Because decisions are computed before placement ever runs (they depend
only on the arrival-ordered candidate stream, never on which server a
job landed on), pools are fully independent: :func:`run_pool_shards`
fans contiguous pool ranges out to worker processes and folds the
workers' metrics back in through the existing obs snapshot/merge
machinery. The kernel is deterministic, so sharded and in-process
replays produce byte-identical event logs.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import counter, span

__all__ = [
    "PoolReplay",
    "replay_pool_events",
    "run_pool_shards",
]


@dataclass
class PoolReplay:
    """One pool's placement results, aligned with its input event stream."""

    #: Per event: local server index placed on / freed from, -1 baseline.
    server: np.ndarray
    #: Per event: placement code (0 colocated, 1 baseline).
    placement: np.ndarray
    #: Per event: the server's instance count after the event.
    instances_after: np.ndarray
    #: Per epoch: sorted ``(profile_idx, instances, server count)`` rows
    #: describing every occupied colocation state at the epoch boundary.
    groups_per_epoch: list[list[tuple[int, int, int]]]


def replay_pool_events(
    *,
    is_arrival: np.ndarray,
    job_pos: np.ndarray,
    profile_idx: np.ndarray,
    cap: np.ndarray,
    epoch: np.ndarray,
    n_epochs: int,
    n_servers: int,
) -> PoolReplay:
    """Replay one pool's interesting events with O(1) placement.

    Events arrive pre-sorted in global processing order and pre-filtered
    to this pool's *interesting* stream: arrivals whose decision allows
    at least one instance (``cap >= 1``) and the departures of exactly
    those jobs. ``cap`` is the per-arrival instance ceiling
    (``min(max_safe_instances, threads)``); placement picks the fullest
    same-profile server strictly below it, lowest index on ties, else
    the lowest-index idle server, else the baseline pool — the same rule
    as the scalar engine's ``_pick_server`` scan.
    """
    m = int(is_arrival.size)
    out_srv = [-1] * m
    out_plc = [1] * m
    out_inst = [0] * m
    splits = np.searchsorted(epoch, np.arange(n_epochs + 1)).tolist()
    is_arr = is_arrival.tolist()
    jobs = job_pos.tolist()
    profs = profile_idx.tolist()
    caps = cap.tolist()
    # Bucket keys are dense ints p * n_states + c: cheaper to hash than
    # tuples, and sorting them sorts (profile, count) lexicographically.
    n_states = (int(cap.max()) if m else 0) + 2
    prof_of = [-1] * n_servers
    cnt_of = [0] * n_servers
    idle = list(range(n_servers))  # ascending == already a valid min-heap
    buckets: dict[int, list[int]] = {}
    n_at: dict[int, int] = {}
    placed: dict[int, int] = {}
    groups: list[list[tuple[int, int, int]]] = []
    hpush, hpop = heapq.heappush, heapq.heappop
    n_at_get = n_at.get
    i = 0
    for e in range(n_epochs):
        end = splits[e + 1]
        while i < end:
            j = jobs[i]
            if is_arr[i]:
                p = profs[i]
                pbase = p * n_states
                best = -1
                c = caps[i] - 1
                while c >= 1:
                    key = pbase + c
                    if n_at_get(key, 0):
                        heap = buckets[key]
                        s = heap[0]
                        # entries are lazily validated: pop servers that
                        # have since left this (profile, count) state
                        while prof_of[s] != p or cnt_of[s] != c:
                            hpop(heap)
                            s = heap[0]
                        hpop(heap)
                        best = s
                        break
                    c -= 1
                if best < 0:
                    while idle:
                        s = hpop(idle)
                        if prof_of[s] == -1:
                            best = s
                            break
                if best >= 0:
                    old = cnt_of[best]
                    if old:
                        key = pbase + old
                        left = n_at[key] - 1
                        if left:
                            n_at[key] = left
                        else:
                            del n_at[key]
                    else:
                        prof_of[best] = p
                    new = old + 1
                    cnt_of[best] = new
                    key = pbase + new
                    n_at[key] = n_at_get(key, 0) + 1
                    hpush(buckets.setdefault(key, []), best)
                    placed[j] = best
                    out_srv[i] = best
                    out_plc[i] = 0
                    out_inst[i] = new
            else:
                s = placed.pop(j, -1)
                if s >= 0:
                    p = prof_of[s]
                    c = cnt_of[s]
                    key = p * n_states + c
                    left = n_at[key] - 1
                    if left:
                        n_at[key] = left
                    else:
                        del n_at[key]
                    nc = c - 1
                    cnt_of[s] = nc
                    if nc:
                        key -= 1
                        n_at[key] = n_at_get(key, 0) + 1
                        hpush(buckets.setdefault(key, []), s)
                    else:
                        prof_of[s] = -1
                        hpush(idle, s)
                    out_srv[i] = s
                    out_plc[i] = 0
                    out_inst[i] = nc
            i += 1
        groups.append([
            (*divmod(key, n_states), n) for key, n in sorted(n_at.items())
        ])
    return PoolReplay(
        server=np.array(out_srv, dtype=np.int64),
        placement=np.array(out_plc, dtype=np.int8),
        instances_after=np.array(out_inst, dtype=np.int64),
        groups_per_epoch=groups,
    )


def _shard_worker(pools: list[dict[str, Any]]) -> dict[str, Any]:
    """Replay one shard's pools in a worker process.

    The forked child inherits the parent's metric registry, so it resets
    first; everything it records under ``serve.shard.*`` ships back in
    its obs snapshot and is folded into the parent registry.
    """
    obs.reset()
    with span("serve.shard.replay"):
        results = [replay_pool_events(**kwargs) for kwargs in pools]
    counter("serve.shard.events").inc(
        sum(int(r.server.size) for r in results)
    )
    return {"results": results, "obs": obs.snapshot()}


def run_pool_shards(
    pool_inputs: list[dict[str, Any]],
    *,
    shards: int,
    jobs: int | None = None,
) -> list[PoolReplay]:
    """Fan the per-pool placement kernels out across worker processes.

    Pools are partitioned into ``shards`` contiguous ranges (one shard
    per server pool at most) and executed on ``jobs`` workers; results
    come back in pool order, so the parent's merge is deterministic.
    Worker metric snapshots are merged into the parent registry.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    shards = min(shards, len(pool_inputs))
    if shards <= 1:
        return [replay_pool_events(**kwargs) for kwargs in pool_inputs]
    n = len(pool_inputs)
    bounds = [(k * n) // shards for k in range(shards + 1)]
    chunks = [pool_inputs[bounds[k]:bounds[k + 1]] for k in range(shards)]
    workers = min(jobs if jobs is not None else shards, shards)
    counter("serve.shard.workers").inc(len(chunks))
    with ProcessPoolExecutor(max_workers=workers) as executor:
        futures = [executor.submit(_shard_worker, chunk) for chunk in chunks]
        outputs = [future.result() for future in futures]
    with span("serve.shard.merge"):
        results: list[PoolReplay] = []
        for output in outputs:
            obs.merge(output["obs"])
            results.extend(output["results"])
    return results
