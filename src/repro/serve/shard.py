"""Per-pool placement kernel and multi-process shard fan-out.

The vectorized replay splits each epoch's work into three phases; this
module owns phase two — *placement* — which is the only phase whose state
is per server pool and therefore shards cleanly. The kernel
(:class:`PoolKernel`, driven by :func:`replay_pool_events`) consumes one
pool's pre-decided event stream (columnar, already filtered to events
that can touch pool state) and replays it with O(1) free-list
structures:

- ``prof_of`` / ``cnt_of``: the batch profile and instance count of
  every server (``-1`` / ``0`` when idle);
- a lazily-validated min-heap per ``(profile, count)`` bucket plus an
  idle-server heap, giving the scalar engine's bin-packing rule —
  fullest same-profile server under the cap, lowest index on ties, else
  the lowest-index idle server — without scanning the pool;
- ``n_at`` occupancy counts, snapshotted after each epoch into the
  ``(profile, instances) -> servers`` groups the SLO/audit scorer needs.

Because decisions are computed before placement ever runs (they depend
only on the arrival-ordered candidate stream, never on which server a
job landed on), pools are fully independent: :func:`run_pool_shards`
fans contiguous pool ranges out to worker processes and folds the
workers' metrics back in through the existing obs snapshot/merge
machinery. The kernel is deterministic, so sharded and in-process
replays produce byte-identical event logs.

The *adaptive* replay (``repro.adapt``) cannot pre-decide the whole
trace — coefficients may hot-swap between epochs — so it steps the same
kernels one epoch at a time instead. :class:`EpochShardPool` keeps the
kernels resident in persistent worker processes for that mode: one
message per epoch carries each pool's freshly decided events out, the
epoch's occupancy groups come back for scoring, and the final fold-back
reuses the same obs snapshot/merge path. The workers hold no
model-derived state at all, which is what lets a parent-side coefficient
swap propagate by construction: the next epoch's caps already reflect
it.
"""

from __future__ import annotations

import heapq
import multiprocessing
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import counter, diff_snapshots, span
from repro.obs import timeseries

__all__ = [
    "EpochShardPool",
    "PoolKernel",
    "PoolReplay",
    "replay_pool_events",
    "run_pool_shards",
]


@dataclass
class PoolReplay:
    """One pool's placement results, aligned with its input event stream."""

    #: Per event: local server index placed on / freed from, -1 baseline.
    server: np.ndarray
    #: Per event: placement code (0 colocated, 1 baseline).
    placement: np.ndarray
    #: Per event: the server's instance count after the event.
    instances_after: np.ndarray
    #: Per epoch: sorted ``(profile_idx, instances, server count)`` rows
    #: describing every occupied colocation state at the epoch boundary.
    groups_per_epoch: list[list[tuple[int, int, int]]]


class PoolKernel:
    """One pool's placement state, steppable one epoch at a time.

    Events arrive pre-sorted in global processing order and pre-filtered
    to this pool's *interesting* stream: arrivals whose decision allows
    at least one instance (``cap >= 1``) and the departures of exactly
    those jobs. ``cap`` is the per-arrival instance ceiling
    (``min(max_safe_instances, threads)``); placement picks the fullest
    same-profile server strictly below it, lowest index on ties, else
    the lowest-index idle server, else the baseline pool — the same rule
    as the scalar engine's ``_pick_server`` scan.

    ``n_states`` bounds the per-server instance count from above; bucket
    keys are dense ints ``profile * n_states + count`` (cheaper to hash
    than tuples, and sorting them sorts (profile, count)
    lexicographically). The outputs never depend on its exact value as
    long as every cap stays below it.
    """

    __slots__ = (
        "n_servers", "n_states", "prof_of", "cnt_of", "idle", "buckets",
        "n_at", "placed", "out_srv", "out_plc", "out_inst",
        "groups_per_epoch",
    )

    def __init__(self, n_servers: int, n_states: int) -> None:
        self.n_servers = n_servers
        self.n_states = n_states
        self.prof_of = [-1] * n_servers
        self.cnt_of = [0] * n_servers
        # ascending == already a valid min-heap
        self.idle = list(range(n_servers))
        self.buckets: dict[int, list[int]] = {}
        self.n_at: dict[int, int] = {}
        self.placed: dict[int, int] = {}
        self.out_srv: list[int] = []
        self.out_plc: list[int] = []
        self.out_inst: list[int] = []
        self.groups_per_epoch: list[list[tuple[int, int, int]]] = []

    def step(
        self,
        is_arr: Sequence[bool],
        jobs: Sequence[int],
        profs: Sequence[int],
        caps: Sequence[int],
        lo: int,
        hi: int,
    ) -> list[tuple[int, int, int]]:
        """Replay events ``[lo, hi)`` of one epoch; returns its groups."""
        n_states = self.n_states
        prof_of = self.prof_of
        cnt_of = self.cnt_of
        idle = self.idle
        buckets = self.buckets
        n_at = self.n_at
        placed = self.placed
        out_srv = self.out_srv
        out_plc = self.out_plc
        out_inst = self.out_inst
        hpush, hpop = heapq.heappush, heapq.heappop
        n_at_get = n_at.get
        for i in range(lo, hi):
            j = jobs[i]
            if is_arr[i]:
                p = profs[i]
                pbase = p * n_states
                best = -1
                c = caps[i] - 1
                while c >= 1:
                    key = pbase + c
                    if n_at_get(key, 0):
                        heap = buckets[key]
                        s = heap[0]
                        # entries are lazily validated: pop servers that
                        # have since left this (profile, count) state
                        while prof_of[s] != p or cnt_of[s] != c:
                            hpop(heap)
                            s = heap[0]
                        hpop(heap)
                        best = s
                        break
                    c -= 1
                if best < 0:
                    while idle:
                        s = hpop(idle)
                        if prof_of[s] == -1:
                            best = s
                            break
                if best >= 0:
                    old = cnt_of[best]
                    if old:
                        key = pbase + old
                        left = n_at[key] - 1
                        if left:
                            n_at[key] = left
                        else:
                            del n_at[key]
                    else:
                        prof_of[best] = p
                    new = old + 1
                    cnt_of[best] = new
                    key = pbase + new
                    n_at[key] = n_at_get(key, 0) + 1
                    hpush(buckets.setdefault(key, []), best)
                    placed[j] = best
                    out_srv.append(best)
                    out_plc.append(0)
                    out_inst.append(new)
                else:
                    out_srv.append(-1)
                    out_plc.append(1)
                    out_inst.append(0)
            else:
                s = placed.pop(j, -1)
                if s >= 0:
                    p = prof_of[s]
                    c = cnt_of[s]
                    key = p * n_states + c
                    left = n_at[key] - 1
                    if left:
                        n_at[key] = left
                    else:
                        del n_at[key]
                    nc = c - 1
                    cnt_of[s] = nc
                    if nc:
                        key -= 1
                        n_at[key] = n_at_get(key, 0) + 1
                        hpush(buckets.setdefault(key, []), s)
                    else:
                        prof_of[s] = -1
                        hpush(idle, s)
                    out_srv.append(s)
                    out_plc.append(0)
                    out_inst.append(nc)
                else:
                    out_srv.append(-1)
                    out_plc.append(1)
                    out_inst.append(0)
        groups = [
            (*divmod(key, n_states), n) for key, n in sorted(n_at.items())
        ]
        self.groups_per_epoch.append(groups)
        return groups

    def result(self) -> PoolReplay:
        """The accumulated :class:`PoolReplay` over every step so far."""
        return PoolReplay(
            server=np.array(self.out_srv, dtype=np.int64),
            placement=np.array(self.out_plc, dtype=np.int8),
            instances_after=np.array(self.out_inst, dtype=np.int64),
            groups_per_epoch=self.groups_per_epoch,
        )


def replay_pool_events(
    *,
    is_arrival: np.ndarray,
    job_pos: np.ndarray,
    profile_idx: np.ndarray,
    cap: np.ndarray,
    epoch: np.ndarray,
    n_epochs: int,
    n_servers: int,
) -> PoolReplay:
    """Replay one pool's full interesting event stream with O(1) placement.

    The whole-trace entry point: runs a :class:`PoolKernel` over every
    epoch's slice in one pass. See the kernel for the placement rule.
    """
    m = int(is_arrival.size)
    n_states = (int(cap.max()) if m else 0) + 2
    kernel = PoolKernel(n_servers, n_states)
    splits = np.searchsorted(epoch, np.arange(n_epochs + 1)).tolist()
    is_arr = is_arrival.tolist()
    jobs = job_pos.tolist()
    profs = profile_idx.tolist()
    caps = cap.tolist()
    for e in range(n_epochs):
        kernel.step(is_arr, jobs, profs, caps, splits[e], splits[e + 1])
    return kernel.result()


def _shard_worker(pools: list[dict[str, Any]]) -> dict[str, Any]:
    """Replay one shard's pools in a worker process.

    The forked child inherits the parent's metric registry, so it resets
    first; everything it records under ``serve.shard.*`` ships back in
    its obs snapshot and is folded into the parent registry.
    """
    obs.reset()
    with span("serve.shard.replay"):
        results = [replay_pool_events(**kwargs) for kwargs in pools]
    counter("serve.shard.events").inc(
        sum(int(r.server.size) for r in results)
    )
    return {"results": results, "obs": obs.snapshot()}


def _stream_shard_worker(conn, pools: list[dict[str, Any]]) -> None:
    """Replay one shard's pools, streaming a metrics delta per pool.

    The streaming twin of :func:`_shard_worker`: after every finished
    pool the worker ships ``("frame", delta)`` — the registry change
    since its previous frame (:func:`repro.obs.diff_snapshots`) — so the
    parent can merge progress mid-run. The final ``("done", ...)``
    message carries the results plus the residual delta; the sum of all
    shipped deltas equals the worker's whole-run snapshot, which is what
    keeps streamed and end-of-run fold-backs byte-identical.
    """
    obs.reset()
    try:
        last = obs.snapshot()
        results = []
        with span("serve.shard.replay"):
            for kwargs in pools:
                replay = replay_pool_events(**kwargs)
                results.append(replay)
                counter("serve.shard.events").inc(int(replay.server.size))
                current = obs.snapshot()
                conn.send(("frame", diff_snapshots(last, current)))
                last = current
        conn.send(("done", {
            "results": results,
            "obs": diff_snapshots(last, obs.snapshot()),
        }))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        raise
    finally:
        conn.close()


def _run_streamed_shards(
    chunks: list[list[dict[str, Any]]],
    workers: int,
    on_frame: Callable[[dict[str, Any]], None] | None,
) -> list[PoolReplay]:
    """Drive :func:`_stream_shard_worker` processes, merging in order.

    At most ``workers`` processes run at once; the parent drains shard
    ``k`` completely before shard ``k + 1``, so frames merge in a fixed
    order and the fold is deterministic no matter how the workers race.
    """
    context = multiprocessing.get_context()
    conns: list[Any] = [None] * len(chunks)
    procs: list[Any] = [None] * len(chunks)
    started = 0

    def _start(k: int) -> None:
        parent_conn, child_conn = context.Pipe()
        process = context.Process(
            target=_stream_shard_worker, args=(child_conn, chunks[k]),
        )
        process.start()
        child_conn.close()
        conns[k] = parent_conn
        procs[k] = process

    while started < min(workers, len(chunks)):
        _start(started)
        started += 1
    results: list[PoolReplay] = []
    with span("serve.shard.merge"):
        for k in range(len(chunks)):
            conn = conns[k]
            while True:
                kind, payload = conn.recv()
                if kind == "frame":
                    obs.merge(payload)
                    counter("serve.telemetry.frames").inc()
                    if on_frame is not None:
                        on_frame(payload)
                elif kind == "done":
                    obs.merge(payload["obs"])
                    results.extend(payload["results"])
                    break
                else:
                    raise RuntimeError(
                        f"shard worker failed:\n{payload}"
                    )
            conn.close()
            procs[k].join()
            if started < len(chunks):
                _start(started)
                started += 1
    return results


def run_pool_shards(
    pool_inputs: list[dict[str, Any]],
    *,
    shards: int,
    jobs: int | None = None,
    on_frame: Callable[[dict[str, Any]], None] | None = None,
) -> list[PoolReplay]:
    """Fan the per-pool placement kernels out across worker processes.

    Pools are partitioned into ``shards`` contiguous ranges (one shard
    per server pool at most) and executed on ``jobs`` workers; results
    come back in pool order, so the parent's merge is deterministic.
    Worker metric snapshots are merged into the parent registry.

    When a telemetry sampler is installed (or ``on_frame`` is given),
    workers stream one registry-delta frame per finished pool instead of
    a single end-of-run snapshot; the parent merges the frames
    incrementally — the final registry state is byte-identical either
    way (the deltas sum to the whole-run snapshot).
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    shards = min(shards, len(pool_inputs))
    if shards <= 1:
        return [replay_pool_events(**kwargs) for kwargs in pool_inputs]
    n = len(pool_inputs)
    bounds = [(k * n) // shards for k in range(shards + 1)]
    chunks = [pool_inputs[bounds[k]:bounds[k + 1]] for k in range(shards)]
    workers = min(jobs if jobs is not None else shards, shards)
    counter("serve.shard.workers").inc(len(chunks))
    if on_frame is not None or timeseries.is_active():
        return _run_streamed_shards(chunks, workers, on_frame)
    with ProcessPoolExecutor(max_workers=workers) as executor:
        futures = [executor.submit(_shard_worker, chunk) for chunk in chunks]
        outputs = [future.result() for future in futures]
    with span("serve.shard.merge"):
        results: list[PoolReplay] = []
        for output in outputs:
            obs.merge(output["obs"])
            results.extend(output["results"])
    return results


# -- persistent epoch-stepped sharding (adaptive replay) ----------------


def _epoch_shard_worker(
    conn, specs: list[tuple[int, int]], stream_every: int = 0,
) -> None:
    """Own a contiguous range of pool kernels for a whole replay.

    Protocol: each ``step`` message carries one epoch's event columns
    per owned pool; the reply is ``(groups, frame)`` — that epoch's
    occupancy groups plus, every ``stream_every`` steps (``0`` = never),
    a registry-delta frame since the last shipped one. ``None`` closes
    the stream, answered with the final :class:`PoolReplay` results plus
    the residual obs delta for the parent to merge; the shipped deltas
    always sum to the worker's whole-run snapshot, so streaming cannot
    change the folded totals. The worker never sees coefficients or
    predictions — placement is decision-driven — so parent-side model
    swaps need no propagation beyond the caps already embedded in the
    next epoch's events.
    """
    obs.reset()
    kernels = [PoolKernel(n_servers, n_states)
               for n_servers, n_states in specs]
    last = obs.snapshot()
    steps = 0
    with span("serve.shard.replay"):
        while True:
            message = conn.recv()
            if message is None:
                break
            groups = []
            events = 0
            for kernel, (is_arr, jobs, profs, caps) in zip(kernels, message):
                groups.append(
                    kernel.step(is_arr, jobs, profs, caps, 0, len(is_arr))
                )
                events += len(is_arr)
            counter("serve.shard.events").inc(events)
            steps += 1
            frame = None
            if stream_every and steps % stream_every == 0:
                current = obs.snapshot()
                frame = diff_snapshots(last, current)
                last = current
            conn.send((groups, frame))
    conn.send({
        "results": [kernel.result() for kernel in kernels],
        "obs": diff_snapshots(last, obs.snapshot()),
    })
    conn.close()


class EpochShardPool:
    """Persistent placement workers, stepped one epoch at a time.

    ``specs`` holds one ``(n_servers, n_states)`` pair per pool; pools
    are partitioned into contiguous ranges exactly like
    :func:`run_pool_shards`, except each range's kernels live in a
    long-running worker process for the whole replay (placement state
    must persist across epochs once decisions interleave with scoring).
    ``jobs`` caps the worker-process count directly.

    ``stream_every`` > 0 makes each worker attach a registry-delta frame
    to every Nth step reply (the adaptive engine picks N so frames land
    on the telemetry cadence); the parent merges frames in a fixed
    worker order and feeds them to ``on_frame``, keeping the fold
    deterministic and the end-of-run totals unchanged.
    """

    def __init__(
        self,
        specs: list[tuple[int, int]],
        *,
        shards: int,
        jobs: int | None = None,
        stream_every: int = 0,
        on_frame: Callable[[dict[str, Any]], None] | None = None,
    ) -> None:
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if jobs is not None and jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        shards = min(shards, len(specs))
        if jobs is not None:
            shards = min(shards, jobs)
        shards = max(shards, 1)
        if stream_every < 0:
            raise ConfigurationError(
                f"stream_every must be >= 0, got {stream_every}"
            )
        self._on_frame = on_frame
        n = len(specs)
        self._bounds = [(k * n) // shards for k in range(shards + 1)]
        counter("serve.shard.workers").inc(shards)
        context = multiprocessing.get_context()
        self._conns = []
        self._procs = []
        for k in range(shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_epoch_shard_worker,
                args=(child_conn, specs[self._bounds[k]:self._bounds[k + 1]],
                      stream_every),
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)

    def step(
        self,
        epoch_inputs: list[tuple[
            Sequence[bool], Sequence[int], Sequence[int], Sequence[int]
        ]],
    ) -> list[list[tuple[int, int, int]]]:
        """Place one epoch's events; returns per-pool occupancy groups."""
        for k, conn in enumerate(self._conns):
            conn.send(epoch_inputs[self._bounds[k]:self._bounds[k + 1]])
        groups: list[list[tuple[int, int, int]]] = []
        for conn in self._conns:
            worker_groups, frame = conn.recv()
            groups.extend(worker_groups)
            if frame is not None:
                obs.merge(frame)
                counter("serve.telemetry.frames").inc()
                if self._on_frame is not None:
                    self._on_frame(frame)
        return groups

    def finish(self) -> list[PoolReplay]:
        """Drain final results, fold worker obs back, reap the workers."""
        for conn in self._conns:
            conn.send(None)
        results: list[PoolReplay] = []
        with span("serve.shard.merge"):
            for conn in self._conns:
                payload = conn.recv()
                obs.merge(payload["obs"])
                results.extend(payload["results"])
                conn.close()
        for process in self._procs:
            process.join()
        return results
