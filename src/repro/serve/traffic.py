"""Seeded workload-trace generators for the online serving runtime.

A *trace* is a timestamped stream of batch jobs: each job names the
workload profile it runs, when it arrives, and how long it occupies an
SMT context. Two arrival processes are provided — a homogeneous Poisson
process and a diurnal curve (nonhomogeneous Poisson via thinning, one
sinusoidal day) — both drawing the per-job application mix from an
existing SPEC/CloudSuite profile pool. Every draw goes through one
``numpy`` generator seeded from the caller's seed, so a trace is a pure
function of its arguments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import counter
from repro.workloads.profile import WorkloadProfile

__all__ = [
    "Trace",
    "TraceJob",
    "diurnal_trace",
    "poisson_trace",
]

#: Seconds in one diurnal period (a day of simulated time).
DAY_S = 86_400.0


@dataclass(frozen=True)
class TraceJob:
    """One batch job in a trace: what runs, when it arrives, for how long."""

    job_id: int
    arrival_s: float
    duration_s: float
    profile: WorkloadProfile

    @property
    def departure_s(self) -> float:
        """Simulated time at which the job frees its SMT context."""
        return self.arrival_s + self.duration_s


@dataclass(frozen=True)
class Trace:
    """An ordered, timestamped batch-job stream over a finite horizon."""

    kind: str
    seed: int
    horizon_s: float
    jobs: tuple[TraceJob, ...]

    def __post_init__(self) -> None:
        arrivals = [job.arrival_s for job in self.jobs]
        if arrivals != sorted(arrivals):
            raise ConfigurationError("trace jobs must be sorted by arrival time")

    @property
    def mean_rate_per_s(self) -> float:
        """Realized mean arrival rate over the horizon."""
        if self.horizon_s <= 0.0:
            return 0.0
        return len(self.jobs) / self.horizon_s


def _validated(
    pool: Sequence[WorkloadProfile],
    rate_per_s: float,
    horizon_s: float,
    min_duration_s: float,
    max_duration_s: float,
) -> tuple[WorkloadProfile, ...]:
    pool = tuple(pool)
    if not pool:
        raise ConfigurationError("trace generation needs a non-empty profile pool")
    if rate_per_s <= 0.0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate_per_s}")
    if horizon_s <= 0.0:
        raise ConfigurationError(f"trace horizon must be positive, got {horizon_s}")
    if not 0.0 < min_duration_s <= max_duration_s:
        raise ConfigurationError(
            "job durations need 0 < min <= max, got "
            f"[{min_duration_s}, {max_duration_s}]"
        )
    return pool


def _materialize(
    kind: str,
    seed: int,
    horizon_s: float,
    arrivals: np.ndarray,
    pool: tuple[WorkloadProfile, ...],
    min_duration_s: float,
    max_duration_s: float,
    rng: np.random.Generator,
) -> Trace:
    """Attach per-job profiles and bounded durations to arrival times."""
    n = int(arrivals.size)
    picks = rng.integers(0, len(pool), size=n)
    durations = rng.uniform(min_duration_s, max_duration_s, size=n)
    jobs = tuple(
        TraceJob(
            job_id=i,
            arrival_s=float(arrivals[i]),
            duration_s=float(durations[i]),
            profile=pool[int(picks[i])],
        )
        for i in range(n)
    )
    counter("serve.traffic.jobs").inc(n)
    return Trace(kind=kind, seed=seed, horizon_s=horizon_s, jobs=jobs)


def poisson_trace(
    pool: Sequence[WorkloadProfile],
    *,
    rate_per_s: float,
    horizon_s: float,
    seed: int,
    min_duration_s: float = 300.0,
    max_duration_s: float = 3_600.0,
) -> Trace:
    """Homogeneous Poisson arrivals at ``rate_per_s`` over ``horizon_s``.

    Inter-arrival gaps are exponential; each job draws its profile
    uniformly from ``pool`` and a uniform bounded duration.
    """
    pool = _validated(pool, rate_per_s, horizon_s, min_duration_s, max_duration_s)
    rng = np.random.default_rng(seed)
    # Draw in one vectorized pass: E[N] + 6 sigma gaps almost surely
    # cover the horizon; top up in the rare tail case.
    expected = rate_per_s * horizon_s
    batch = max(16, int(expected + 6.0 * math.sqrt(expected) + 16))
    gaps = rng.exponential(1.0 / rate_per_s, size=batch)
    times = np.cumsum(gaps)
    while times.size and float(times[-1]) < horizon_s:
        more = rng.exponential(1.0 / rate_per_s, size=batch)
        times = np.concatenate([times, float(times[-1]) + np.cumsum(more)])
    arrivals = times[times < horizon_s]
    return _materialize(
        "poisson", seed, horizon_s, arrivals, pool, min_duration_s, max_duration_s, rng
    )


def diurnal_trace(
    pool: Sequence[WorkloadProfile],
    *,
    mean_rate_per_s: float,
    horizon_s: float = DAY_S,
    seed: int = 0,
    peak_to_trough: float = 3.0,
    peak_at_s: float = DAY_S / 2.0,
    min_duration_s: float = 300.0,
    max_duration_s: float = 3_600.0,
) -> Trace:
    """Diurnal-curve arrivals: a sinusoidal day around ``mean_rate_per_s``.

    The instantaneous rate is
    ``mean * (1 + a * cos(2*pi*(t - peak_at_s)/DAY_S))`` with the
    amplitude ``a`` chosen so peak/trough equals ``peak_to_trough``.
    Generated as a nonhomogeneous Poisson process by thinning a
    homogeneous one at the peak rate.
    """
    pool = _validated(pool, mean_rate_per_s, horizon_s, min_duration_s, max_duration_s)
    if peak_to_trough < 1.0:
        raise ConfigurationError(
            f"peak_to_trough must be >= 1, got {peak_to_trough}"
        )
    amplitude = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    peak_rate = mean_rate_per_s * (1.0 + amplitude)

    rng = np.random.default_rng(seed)
    expected = peak_rate * horizon_s
    batch = max(16, int(expected + 6.0 * math.sqrt(expected) + 16))
    gaps = rng.exponential(1.0 / peak_rate, size=batch)
    times = np.cumsum(gaps)
    while times.size and float(times[-1]) < horizon_s:
        more = rng.exponential(1.0 / peak_rate, size=batch)
        times = np.concatenate([times, float(times[-1]) + np.cumsum(more)])
    times = times[times < horizon_s]

    phase = 2.0 * math.pi * (times - peak_at_s) / DAY_S
    rate_at = mean_rate_per_s * (1.0 + amplitude * np.cos(phase))
    keep = rng.uniform(0.0, 1.0, size=times.size) * peak_rate < rate_at
    arrivals = times[keep]
    return _materialize(
        "diurnal",
        seed,
        horizon_s,
        arrivals,
        pool,
        min_duration_s,
        max_duration_s,
        rng,
    )
