"""Time-windowed utilization and QoS-violation accounting.

The engine samples the fleet at every epoch boundary; this module rolls
those samples into fixed-width windows over the simulated event clock.
Each closed :class:`SloWindow` aggregates the window's samples into one
:class:`~repro.scheduler.metrics.ViolationStats` (the same dataclass the
offline scale-out study reports), a mean utilization gain, and a per-app
violation timeline. The rendered series (:meth:`SloWindow.as_line`) is
deterministic, so two replays of the same trace can be compared byte for
byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.tail import TailLatencyModel
from repro.errors import ConfigurationError, SchedulingError
from repro.obs import PredictionAudit, counter, gauge, trace
from repro.obs.alerts import AlertEngine
from repro.scheduler.metrics import ViolationStats
from repro.scheduler.qos import QosTarget

__all__ = [
    "SloWindow",
    "WindowedSlo",
    "window_violation_stats",
]


def window_violation_stats(
    servers: Sequence,
    target: QosTarget,
    *,
    tail_models: dict[str, TailLatencyModel] | None = None,
) -> ViolationStats:
    """Score one fleet sample against the QoS target.

    Accepts any sequence of server-shaped objects (``is_colocated``,
    ``latency_app``, ``actual_degradation``) — both the offline
    ``ServerState`` and the online ``OnlineServer`` qualify — and
    returns the same :class:`ViolationStats` the scale-out study uses.
    """
    colocated = [s for s in servers if s.is_colocated]
    violated = 0
    worst = 0.0
    total_magnitude = 0.0
    for server in colocated:
        tail_model = None
        if tail_models is not None:
            tail_model = tail_models.get(server.latency_app.name)
            if tail_model is None:
                raise SchedulingError(
                    f"no tail model for {server.latency_app.name}"
                )
        if not target.is_met(server.actual_degradation, tail_model):
            violated += 1
            magnitude = target.violation_magnitude(
                server.actual_degradation, tail_model
            )
            worst = max(worst, magnitude)
            total_magnitude += magnitude
    return ViolationStats(
        colocated_servers=len(colocated),
        violated_servers=violated,
        worst_magnitude=worst,
        mean_magnitude=(total_magnitude / violated) if violated else 0.0,
    )


@dataclass(frozen=True)
class SloWindow:
    """One closed accounting window over the simulated clock."""

    index: int
    start_s: float
    end_s: float
    samples: int
    mean_utilization_gain: float
    violations: ViolationStats
    #: (app name, violated samples in this window), in app order
    per_app_violations: tuple[tuple[str, int], ...]
    #: Mean absolute prediction residual of the window's audited
    #: comparisons (None when the run kept no prediction audit).
    calibration_drift: float | None = None

    def as_line(self) -> str:
        """Render as one stable, byte-comparable series line."""
        apps = " ".join(
            f"{name}={count}" for name, count in self.per_app_violations
        )
        drift = ("" if self.calibration_drift is None
                 else f"drift={self.calibration_drift:.6f} ")
        return (
            f"window={self.index} [{self.start_s:.1f},{self.end_s:.1f}) "
            f"samples={self.samples} gain={self.mean_utilization_gain:.6f} "
            f"colocated={self.violations.colocated_servers} "
            f"violated={self.violations.violated_servers} "
            f"worst={self.violations.worst_magnitude:.6f} {drift}{apps}"
            .rstrip()
        )


class WindowedSlo:
    """Rolls epoch-boundary fleet samples into fixed-width windows."""

    def __init__(
        self,
        window_s: float,
        target: QosTarget,
        *,
        tail_models: dict[str, TailLatencyModel] | None = None,
        audit: PredictionAudit | None = None,
        alerts: AlertEngine | None = None,
    ) -> None:
        if window_s <= 0.0:
            raise ConfigurationError(
                f"window width must be positive, got {window_s}"
            )
        self.window_s = window_s
        self.target = target
        self.tail_models = dict(tail_models) if tail_models else None
        #: When set (to the engine's audit instance), each window close
        #: drains the audit's window accumulator into the window's
        #: ``calibration_drift`` and the ``serve.audit.drift`` gauge.
        self.audit = audit
        #: When set, each window close feeds the window's signals
        #: (violation rate, calibration drift, shed rate) to the alert
        #: engine — deterministically, on the simulated clock, *before*
        #: the adaptation controller can react to the same window.
        self.alerts = alerts
        self._window_sheds = 0
        self._window_requests = 0
        self._windows: list[SloWindow] = []
        self._current: int | None = None
        self._samples: list[tuple[float, ViolationStats]] = []
        self._app_violations: dict[str, int] = {}
        # (app, degradation) -> (met, magnitude) verdict memo: group
        # scoring re-checks the same few colocation states every epoch.
        self._verdicts: dict[tuple[str, float], tuple[bool, float]] = {}

    # ------------------------------------------------------------------

    @property
    def closed_windows(self) -> tuple[SloWindow, ...]:
        """Windows closed so far (the still-open window excluded).

        The adaptation controller polls this at epoch boundaries to
        detect newly closed windows and their calibration drift.
        """
        return tuple(self._windows)

    def observe(
        self, time_s: float, servers: Sequence,
        *, threads_per_server: int,
    ) -> None:
        """Record one fleet sample taken at ``time_s``.

        Samples must arrive in nondecreasing time order; a sample landing
        past the current window closes it (and any empty windows between).
        """
        # A sample at time t accounts to the window covering (t-w, t]:
        # epoch boundaries land on their window's closing edge.
        window_index = max(0, math.ceil(time_s / self.window_s) - 1)
        if self._current is None:
            self._current = window_index
        while window_index > self._current:
            self._close_window()
        stats = window_violation_stats(
            servers, self.target, tail_models=self.tail_models
        )
        baseline_busy = len(servers) * threads_per_server
        instances = sum(s.instances for s in servers)
        gain = (instances / baseline_busy) if baseline_busy else 0.0
        self._samples.append((gain, stats))
        for server in servers:
            if not server.is_colocated:
                continue
            name = server.latency_app.name
            if not self.target.is_met(
                server.actual_degradation,
                None if self.tail_models is None
                else self.tail_models.get(name),
            ):
                self._app_violations[name] = (
                    self._app_violations.get(name, 0) + 1
                )

    def observe_groups(
        self,
        time_s: float,
        groups: Sequence[tuple[str, float, int, int]],
        *,
        n_servers: int,
        threads_per_server: int,
        sheds: int = 0,
        requests: int = 0,
    ) -> None:
        """Record one fleet sample from pre-aggregated colocation groups.

        ``groups`` holds one ``(app name, degradation, instances,
        server count)`` row per distinct (pool, profile, instance-count)
        colocation state, in a canonical deterministic order; identical
        servers are scored once and weighted by ``count``. This is the
        struct-of-arrays replacement for :meth:`observe` — the engine
        calls it on every path (scalar, vectorized, sharded) so the
        float accumulation order, and therefore the rendered SLO series,
        is identical across them.

        ``sheds``/``requests`` carry the epoch's placement-decision
        tallies (the engine knows them per epoch on every strategy);
        they accumulate into the open window and feed the alert
        engine's shed-rate signal at window close.
        """
        window_index = max(0, math.ceil(time_s / self.window_s) - 1)
        if self._current is None:
            self._current = window_index
        while window_index > self._current:
            self._close_window()
        self._window_sheds += sheds
        self._window_requests += requests
        colocated = 0
        violated = 0
        worst = 0.0
        total_magnitude = 0.0
        instances_total = 0
        verdicts = self._verdicts
        for app_name, degradation, instances, count in groups:
            colocated += count
            instances_total += instances * count
            verdict = verdicts.get((app_name, degradation))
            if verdict is None:
                tail_model = None
                if self.tail_models is not None:
                    tail_model = self.tail_models.get(app_name)
                    if tail_model is None:
                        raise SchedulingError(
                            f"no tail model for {app_name}"
                        )
                met = self.target.is_met(degradation, tail_model)
                verdict = (
                    met,
                    0.0 if met else self.target.violation_magnitude(
                        degradation, tail_model
                    ),
                )
                verdicts[(app_name, degradation)] = verdict
            met, magnitude = verdict
            if not met:
                violated += count
                worst = max(worst, magnitude)
                total_magnitude += magnitude * count
                self._app_violations[app_name] = (
                    self._app_violations.get(app_name, 0) + count
                )
        stats = ViolationStats(
            colocated_servers=colocated,
            violated_servers=violated,
            worst_magnitude=worst,
            mean_magnitude=(total_magnitude / violated) if violated else 0.0,
        )
        baseline_busy = n_servers * threads_per_server
        gain = (instances_total / baseline_busy) if baseline_busy else 0.0
        self._samples.append((gain, stats))

    def _close_window(self) -> None:
        assert self._current is not None
        drift = (self.audit.close_window()
                 if self.audit is not None else None)
        gains = [gain for gain, _stats in self._samples]
        stats_list = [stats for _gain, stats in self._samples]
        violated = sum(s.violated_servers for s in stats_list)
        magnitudes = sum(
            s.mean_magnitude * s.violated_servers for s in stats_list
        )
        window = SloWindow(
            index=self._current,
            start_s=self._current * self.window_s,
            end_s=(self._current + 1) * self.window_s,
            samples=len(self._samples),
            mean_utilization_gain=(
                sum(gains) / len(gains) if gains else 0.0
            ),
            violations=ViolationStats(
                colocated_servers=sum(
                    s.colocated_servers for s in stats_list
                ),
                violated_servers=violated,
                worst_magnitude=max(
                    (s.worst_magnitude for s in stats_list), default=0.0
                ),
                mean_magnitude=(magnitudes / violated) if violated else 0.0,
            ),
            per_app_violations=tuple(sorted(self._app_violations.items())),
            calibration_drift=drift,
        )
        self._windows.append(window)
        counter("serve.slo.windows").inc()
        gauge("serve.slo.violation_rate").set(window.violations.rate)
        trace.counter_value("serve.slo.violation_rate",
                            window.violations.rate,
                            sim_time_s=window.end_s)
        if drift is not None:
            gauge("serve.audit.drift").set(drift)
            trace.counter_value("serve.audit.drift", drift,
                                sim_time_s=window.end_s)
        if self.alerts is not None:
            signals: dict[str, float] = {
                "violation_rate": window.violations.rate,
                "shed_rate": (
                    self._window_sheds / self._window_requests
                    if self._window_requests else 0.0
                ),
            }
            if drift is not None:
                signals["calibration_drift"] = drift
            self.alerts.observe_window(window.end_s, signals)
        self._current += 1
        self._samples = []
        self._app_violations = {}
        self._window_sheds = 0
        self._window_requests = 0

    def finish(self) -> tuple[SloWindow, ...]:
        """Close the open window and return the full series."""
        if self._current is not None and self._samples:
            self._close_window()
        self._current = None
        return tuple(self._windows)
