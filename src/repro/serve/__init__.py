"""Online cluster-serving runtime (trace-driven scale-out, Section IV-C live).

``repro.serve`` turns the one-shot scale-out snapshot of
:mod:`repro.scheduler` into a *timeline*: seeded workload generators
produce timestamped batch-job streams (:mod:`repro.serve.traffic`), a
discrete-event cluster runtime replays them against live server state
(:mod:`repro.serve.engine`), a :class:`~repro.serve.service.PredictionService`
answers every placement question through an LRU-fronted SMiTe predictor
with per-epoch admission control, and :mod:`repro.serve.slo` keeps
time-windowed utilization and QoS-violation accounts over the simulated
event clock.

Everything is deterministic given the trace seed: the event clock is
simulated time, every random draw is seeded, and two replays of the same
trace produce byte-identical event logs and SLO series.

Typical use::

    from repro.serve import ServingEngine, PredictionService, diurnal_trace

    trace = diurnal_trace(spec_even(), mean_rate_per_s=0.05,
                          horizon_s=86_400.0, seed=42)
    service = PredictionService(predictor, QosTarget.average(0.9))
    engine = ServingEngine.build(simulator, cloudsuite_apps(), service,
                                 servers_per_app=100)
    outcome = engine.replay(trace)
"""

from __future__ import annotations

from repro.serve.api import ApiClient, ApiError, ApiServer, run_api_shards
from repro.serve.engine import OnlineServer, ReplayOutcome, ServingEngine
from repro.serve.events import EventRecord, EventTable
from repro.serve.service import (
    AdmissionControl,
    BaselineDecider,
    CandidateBatch,
    CandidateStream,
    Decider,
    Decision,
    DecisionBatch,
    PredictionService,
    RandomDecider,
)
from repro.serve.shard import PoolReplay, run_pool_shards
from repro.serve.slo import SloWindow, WindowedSlo, window_violation_stats
from repro.serve.traffic import (
    Trace,
    TraceJob,
    diurnal_trace,
    phase_shift_trace,
    poisson_trace,
)

__all__ = [
    "AdmissionControl",
    "ApiClient",
    "ApiError",
    "ApiServer",
    "BaselineDecider",
    "CandidateBatch",
    "CandidateStream",
    "Decider",
    "Decision",
    "DecisionBatch",
    "EventRecord",
    "EventTable",
    "OnlineServer",
    "PoolReplay",
    "PredictionService",
    "RandomDecider",
    "ReplayOutcome",
    "ServingEngine",
    "SloWindow",
    "Trace",
    "TraceJob",
    "WindowedSlo",
    "diurnal_trace",
    "phase_shift_trace",
    "poisson_trace",
    "run_api_shards",
    "run_pool_shards",
    "window_violation_stats",
]
