"""Discrete-event cluster runtime: replay a trace against live servers.

The engine holds ``Cluster``-style server state — one half-loaded
latency-sensitive service per server, idle SMT sibling contexts for
batch work — and replays a :class:`~repro.serve.traffic.Trace` against
it. Every arrival is routed to a service pool (deterministic round-robin
on job id), put to the :class:`~repro.serve.service.Decider` exactly
once, and either *co-located* on a server the decision calls safe or
*shunted to the baseline pool* (dedicated no-co-location capacity, where
shed and unsafe jobs run alone). Every departure frees its context.

Time is the simulated event clock — the engine never reads a wall
clock. Two replay strategies share one event-ordering contract
(ascending ``(time, kind, job id)`` with departures ranked before
arrivals, epochs assigned by one ``searchsorted`` over the epoch grid):

- ``"vector"`` (default) runs three struct-of-arrays phases per replay:
  *decide* (each epoch's candidates batched through
  :meth:`~repro.serve.service.Decider.decide_batch`, which the decisions
  depend on nothing but the arrival-ordered candidate stream), *place*
  (per-pool O(1) free-list kernels from :mod:`repro.serve.shard`,
  optionally fanned out over worker processes with ``shards``/``jobs``),
  and *score* (vectorized event assembly plus per-epoch aggregated
  SLO/audit accounting).
- ``"scalar"`` is the per-event heapq reference loop, kept as the
  correctness anchor: given the same trace it produces byte-identical
  event logs, SLO series, and books as the vectorized and sharded paths.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError, SchedulingError
from repro.obs import PredictionAudit, counter, gauge, span
from repro.obs import timeseries
from repro.obs import trace as obs_trace
from repro.serve.events import EventRecord, EventTable
from repro.serve.service import Candidate, CandidateStream, Decider
from repro.serve.shard import (
    EpochShardPool,
    PoolKernel,
    PoolReplay,
    replay_pool_events,
    run_pool_shards,
)
from repro.serve.slo import SloWindow, WindowedSlo
from repro.serve.traffic import Trace, TraceJob
from repro.smt.simulator import Simulator
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.adapt.decider import AdaptationController

__all__ = [
    "EventRecord",
    "OnlineServer",
    "ReplayOutcome",
    "ServingEngine",
]

#: Event-kind sort ranks: at equal timestamps departures free contexts
#: before arrivals claim them.
_DEPART, _ARRIVE = 0, 1

#: Colocation-state group rows: (app idx, profile idx, instances, count).
_Group = tuple[int, int, int, int]


@dataclass
class OnlineServer:
    """Live state of one server: its latency service plus batch guests.

    Field names mirror ``scheduler.cluster.ServerState`` so the
    violation accounting in :mod:`repro.serve.slo` can score either.
    """

    index: int
    latency_app: LatencySensitiveWorkload
    batch_profile: WorkloadProfile | None = None
    resident_jobs: dict[int, None] = field(default_factory=dict)
    actual_degradation: float = 0.0

    @property
    def instances(self) -> int:
        """Number of batch instances currently on this server."""
        return len(self.resident_jobs)

    @property
    def is_colocated(self) -> bool:
        """Whether any sibling SMT context is running batch work."""
        return self.instances > 0


@dataclass(frozen=True)
class ReplayOutcome:
    """Everything one trace replay produced, reconciled.

    ``arrivals == departures + still_placed`` and
    ``colocated_placed + baseline_placed == arrivals`` are checked at
    construction time (:meth:`reconcile` raises on mismatch).
    ``events`` is either a tuple of :class:`EventRecord` (scalar engine)
    or a columnar :class:`~repro.serve.events.EventTable` (vectorized
    engine); both render the same byte-stable log.
    """

    policy: str
    trace_kind: str
    seed: int
    horizon_s: float
    arrivals: int
    departures: int
    still_placed: int
    colocated_placed: int
    baseline_placed: int
    shed: int
    events: Sequence[EventRecord]
    windows: tuple[SloWindow, ...]

    def __post_init__(self) -> None:
        self.reconcile()

    def reconcile(self) -> None:
        """Check the arrival/departure/placement books balance."""
        if self.arrivals != self.departures + self.still_placed:
            raise SchedulingError(
                f"unbalanced books: {self.arrivals} arrivals != "
                f"{self.departures} departures + {self.still_placed} placed"
            )
        if self.colocated_placed + self.baseline_placed != self.arrivals:
            raise SchedulingError(
                f"unbalanced placements: {self.colocated_placed} colocated "
                f"+ {self.baseline_placed} baseline != {self.arrivals}"
            )

    def event_log(self) -> str:
        """The full event log as one newline-joined deterministic string."""
        if isinstance(self.events, EventTable):
            return "\n".join(self.events.render_lines())
        return "\n".join(record.as_line() for record in self.events)

    def slo_series(self) -> str:
        """The windowed SLO series as one deterministic string."""
        return "\n".join(window.as_line() for window in self.windows)

    @property
    def mean_violation_rate(self) -> float:
        """Sample-weighted mean QoS-violation rate across windows."""
        colocated = sum(w.violations.colocated_servers for w in self.windows)
        violated = sum(w.violations.violated_servers for w in self.windows)
        return (violated / colocated) if colocated else 0.0

    @property
    def mean_utilization_gain(self) -> float:
        """Mean per-window utilization gain from co-located batch work."""
        if not self.windows:
            return 0.0
        gains = [w.mean_utilization_gain for w in self.windows]
        return sum(gains) / len(gains)


class ServingEngine:
    """Replays traces: routes, decides, places, frees, and keeps score."""

    def __init__(
        self,
        simulator: Simulator,
        apps: Sequence[LatencySensitiveWorkload],
        decider: Decider,
        *,
        servers_per_app: int = 8,
        epoch_s: float = 300.0,
        window_s: float = 3_600.0,
        slo: WindowedSlo | None = None,
        audit: PredictionAudit | None = None,
        adaptation: "AdaptationController | None" = None,
    ) -> None:
        apps = tuple(apps)
        if not apps:
            raise ConfigurationError("serving needs at least one latency app")
        if servers_per_app < 1:
            raise ConfigurationError(
                f"servers_per_app must be >= 1, got {servers_per_app}"
            )
        if epoch_s <= 0.0 or window_s < epoch_s:
            raise ConfigurationError(
                "need 0 < epoch_s <= window_s, got "
                f"epoch_s={epoch_s}, window_s={window_s}"
            )
        self.simulator = simulator
        self.apps = apps
        self.decider = decider
        self.servers_per_app = servers_per_app
        self.epoch_s = epoch_s
        self.window_s = window_s
        self.slo = slo
        #: Prediction-accuracy audit fed at every fleet refresh; pass
        #: the same instance to the SLO tracker so window closes drain
        #: its drift accumulator.
        self.audit = audit
        if adaptation is not None and (slo is None or audit is None):
            raise ConfigurationError(
                "adaptation needs both an SLO tracker (drift windows) "
                "and a prediction audit (residual stream)"
            )
        #: Drift-triggered recalibration controller (repro.adapt). Fed
        #: every audited comparison and stepped at each epoch boundary;
        #: when it swaps coefficients the engine drops its prediction
        #: memo (measured-degradation caches are coefficient-free and
        #: survive).
        self.adaptation = adaptation
        #: idle SMT contexts per server = one sibling per core
        self.threads_per_server = simulator.machine.cores
        self.n_servers = servers_per_app * len(apps)
        #: measured degradation per (app, profile, instances) colocation
        #: state — filled lazily through one batched prefetch per epoch
        self._deg_cache: dict[tuple[str, str, int], float] = {}
        #: index-keyed view of the same cache, valid for one replay's
        #: pool (reset per replay — profile indices are trace-relative)
        self._deg_idx: dict[tuple[int, int, int], float] = {}
        #: index-keyed memo of the decider's (deterministic) predictions
        self._pred_idx: dict[tuple[int, int, int], float] = {}
        self._servers: list[OnlineServer] | None = None

    @property
    def servers(self) -> list[OnlineServer]:
        """Materialized per-server state (scalar path; built lazily).

        The vectorized path never allocates these — at 100k servers the
        object fleet is exactly the overhead the columnar engine exists
        to avoid.
        """
        if self._servers is None:
            self._servers = [
                OnlineServer(
                    index=i,
                    latency_app=self.apps[i // self.servers_per_app],
                )
                for i in range(self.n_servers)
            ]
        return self._servers

    # -- shared event-ordering contract --------------------------------

    def _route(self, job: TraceJob) -> LatencySensitiveWorkload:
        """Deterministic round-robin routing of jobs to service pools."""
        return self.apps[job.job_id % len(self.apps)]

    def _epoch_grid(self, horizon_s: float) -> tuple[int, np.ndarray]:
        """Epoch count and closing edges; an event at time t belongs to
        the first epoch whose end is strictly greater than t."""
        n_epochs = max(1, math.ceil(horizon_s / self.epoch_s))
        ends = np.minimum(
            np.arange(1, n_epochs + 1, dtype=float) * self.epoch_s,
            horizon_s,
        )
        return n_epochs, ends

    def _arrival_plan(
        self, trace: Trace, ends: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Arrival processing order and per-arrival epoch.

        Returns job positions sorted by ``(arrival_s, job_id)`` — the
        heap's tie-break — restricted to arrivals inside the horizon
        (later ones are never popped), plus each arrival's epoch index.
        """
        order = np.lexsort((trace.job_id, trace.arrival_s))
        live = trace.arrival_s[order] < trace.horizon_s
        order = order[live]
        epochs = np.searchsorted(ends, trace.arrival_s[order], side="right")
        return order, epochs

    # -- shared fleet scoring ------------------------------------------

    def _score_fleet(
        self,
        time_s: float,
        groups: Sequence[_Group],
        pool: Sequence[WorkloadProfile],
        *,
        sheds: int = 0,
        requests: int = 0,
    ) -> None:
        """Score one fleet sample from aggregated colocation groups.

        ``groups`` rows are (app idx, profile idx, instances, count) in
        canonical ascending order — every replay strategy produces the
        same rows in the same order, so the SLO series and audit books
        accumulate floats identically. Unseen states are measured once
        through a batched prefetch and cached for the rest of the run.
        """
        deg_idx = self._deg_idx
        missing = [
            (a, p, inst) for a, p, inst, _count in groups
            if (a, p, inst) not in deg_idx
        ]
        if missing:
            self.simulator.prefetch([
                self.simulator.server_placements(
                    self.apps[a].profile, pool[p], instances=inst,
                )
                for a, p, inst in missing
            ])
            for a, p, inst in missing:
                name_key = (self.apps[a].name, pool[p].name, inst)
                degradation = self._deg_cache.get(name_key)
                if degradation is None:
                    degradation = self.simulator.measure_server_degradation(
                        self.apps[a].profile, pool[p], instances=inst,
                    )
                    self._deg_cache[name_key] = degradation
                deg_idx[(a, p, inst)] = degradation
        scored: list[tuple[str, float, int, int]] = []
        audit = self.audit
        adaptation = self.adaptation
        pred_idx = self._pred_idx
        for a, p, inst, count in groups:
            key = (a, p, inst)
            app = self.apps[a]
            degradation = deg_idx[key]
            scored.append((app.name, degradation, inst, count))
            if audit is not None:
                # Predictions are deterministic once made, so non-None
                # values are cached; None (not predicted yet) is re-asked.
                predicted = pred_idx.get(key)
                if predicted is None:
                    predicted = self.decider.predicted_degradation(
                        app, pool[p], inst,
                    )
                    if predicted is not None:
                        pred_idx[key] = predicted
                if predicted is not None:
                    audit.record(
                        app.name, pool[p].name,
                        predicted=predicted, actual=degradation,
                        count=count,
                    )
                    if adaptation is not None:
                        adaptation.observe(
                            app, pool[p], inst,
                            predicted=predicted, actual=degradation,
                            count=count,
                        )
        if self.slo is not None:
            self.slo.observe_groups(
                time_s, scored,
                n_servers=self.n_servers,
                threads_per_server=self.threads_per_server,
                sheds=sheds,
                requests=requests,
            )

    def _telemetry_tick(
        self, time_s: float, arrivals: int, departures: int, sheds: int,
    ) -> None:
        """Offer one telemetry frame at an epoch boundary.

        The cumulative tallies are computed per strategy from the same
        event plan (not read from the registry, whose counters batch at
        different points per strategy), so sampled frames are identical
        across scalar/vector/sharded replays. No-op unless a sampler is
        installed.
        """
        series = timeseries.active()
        if series is None:
            return
        alerts = self.slo.alerts if self.slo is not None else None
        series.maybe_sample(
            time_s,
            counters={
                "serve.engine.arrivals": float(arrivals),
                "serve.engine.departures": float(departures),
                "serve.engine.sheds": float(sheds),
            },
            alerts=alerts.states() if alerts is not None else None,
        )

    # -- public entry point --------------------------------------------

    def replay(
        self,
        trace: Trace,
        *,
        strategy: str = "vector",
        shards: int = 0,
        jobs: int | None = None,
    ) -> ReplayOutcome:
        """Run one trace to its horizon; returns the reconciled outcome.

        ``strategy`` picks the replay implementation: ``"vector"``
        (struct-of-arrays, the default) or ``"scalar"`` (the per-event
        reference loop). ``shards > 1`` fans the vectorized placement
        phase out over that many worker processes (capped at one shard
        per server pool), using at most ``jobs`` workers. All
        combinations produce byte-identical event logs and books.
        """
        if strategy not in ("vector", "scalar"):
            raise ConfigurationError(
                f"unknown replay strategy {strategy!r}"
            )
        if strategy == "scalar" and shards > 1:
            raise ConfigurationError("the scalar engine cannot shard")
        # profile indices are relative to this trace's pool
        self._deg_idx = {}
        self._pred_idx = {}
        with span("serve.replay"):
            if strategy == "scalar":
                return self._replay_scalar(trace)
            if self.adaptation is not None:
                # Decisions are no longer a pure function of the arrival
                # stream — coefficient swaps feed back — so the replay
                # interleaves decide/place/score per epoch.
                return self._replay_vector_adaptive(
                    trace, shards=shards, jobs=jobs,
                )
            return self._replay_vector(trace, shards=shards, jobs=jobs)

    # -- vectorized strategy -------------------------------------------

    def _replay_vector(
        self, trace: Trace, *, shards: int = 0, jobs: int | None = None,
    ) -> ReplayOutcome:
        n_apps = len(self.apps)
        threads = self.threads_per_server
        n_jobs = len(trace)
        n_epochs, ends = self._epoch_grid(trace.horizon_s)
        app_of_job = (trace.job_id % n_apps).astype(np.intp)
        arr_order, arr_epoch = self._arrival_plan(trace, ends)
        n_arrivals = int(arr_order.size)

        # Phase 1 — decide. Decisions are a pure function of the
        # arrival-ordered candidate stream (placement never feeds back),
        # so the whole stream is classified up front and handed to the
        # decider's stream interface in one call.
        epoch_starts_arr = np.searchsorted(arr_epoch,
                                           np.arange(n_epochs + 1))
        epoch_starts = epoch_starts_arr.tolist()
        app_c = app_of_job[arr_order]
        prof_c = trace.profile_idx[arr_order]
        n_pool = len(trace.pool)
        n_pairs = n_apps * n_pool
        key_table = [
            (app.name, profile.name, threads)
            for app in self.apps for profile in trace.pool
        ]
        # One numpy pass classifies every epoch's unique (app, profile)
        # pairs: uid_combo holds the distinct (epoch, pair) codes in
        # order, so each epoch's uids are a contiguous slice; inv/firsts
        # are rebased to be epoch-local.
        pair_c = app_c * n_pool + prof_c
        combo = arr_epoch * n_pairs + pair_c
        uid_combo, first_pos, inv_g = np.unique(
            combo, return_index=True, return_inverse=True,
        )
        uid_epoch = uid_combo // n_pairs
        uid_off = np.searchsorted(uid_epoch, np.arange(n_epochs + 1))
        uid_pair = (uid_combo % n_pairs).tolist()
        uid_offs = uid_off.tolist()
        inv_local = (inv_g - uid_off[arr_epoch]).tolist()
        firsts_local = (first_pos - epoch_starts_arr[uid_epoch]).tolist()
        with span("serve.decide"):
            stream = CandidateStream(
                self.apps, trace.pool, app_c, prof_c, pair_c, threads,
                key_table, epoch_starts, uid_offs, uid_pair,
                inv_local, firsts_local,
            )
            counts, shed = self.decider.decide_stream(stream)
        cap = np.minimum(counts, threads)
        cap[shed] = 0

        # Merged event table: arrivals plus in-horizon departures of
        # processed arrivals, in (time, kind, job id) processing order.
        dep_t = trace.departure_s[arr_order]
        dep_pos = arr_order[dep_t < trace.horizon_s]
        n_departures = int(dep_pos.size)
        ev_time = np.concatenate(
            (trace.arrival_s[arr_order], trace.departure_s[dep_pos])
        )
        ev_kind = np.concatenate((
            np.full(n_arrivals, _ARRIVE, dtype=np.int8),
            np.full(n_departures, _DEPART, dtype=np.int8),
        ))
        ev_jobpos = np.concatenate((arr_order, dep_pos))
        order = np.lexsort((trace.job_id[ev_jobpos], ev_kind, ev_time))
        ev_time = ev_time[order]
        ev_kind = ev_kind[order]
        ev_jobpos = ev_jobpos[order]
        ev_epoch = np.searchsorted(ends, ev_time, side="right")
        ev_app = app_of_job[ev_jobpos]
        n_events = int(ev_time.size)

        # Phase 2 — place. Only events that can touch pool state go
        # through the kernels: arrivals allowed >= 1 instance, and their
        # departures. Everything else is baseline by construction.
        cap_of_job = np.zeros(n_jobs, dtype=np.int64)
        cap_of_job[arr_order] = cap
        interesting = cap_of_job[ev_jobpos] >= 1
        pool_inputs = []
        pool_positions = []
        for p in range(n_apps):
            idx = np.flatnonzero(interesting & (ev_app == p))
            jobpos_p = ev_jobpos[idx]
            pool_positions.append(idx)
            pool_inputs.append({
                "is_arrival": ev_kind[idx] == _ARRIVE,
                "job_pos": jobpos_p,
                "profile_idx": trace.profile_idx[jobpos_p],
                "cap": cap_of_job[jobpos_p],
                "epoch": ev_epoch[idx],
                "n_epochs": n_epochs,
                "n_servers": self.servers_per_app,
            })
        with span("serve.place"):
            if shards > 1:
                pool_outputs: list[PoolReplay] = run_pool_shards(
                    pool_inputs, shards=shards, jobs=jobs,
                )
            else:
                pool_outputs = [
                    replay_pool_events(**kwargs) for kwargs in pool_inputs
                ]

        # Phase 3 — score. Scatter kernel outputs into the global event
        # columns, batch the counters, and walk the epochs once for the
        # aggregated SLO/audit sample each boundary owes.
        shed_of_job = np.zeros(n_jobs, dtype=bool)
        shed_of_job[arr_order] = shed
        server_col = np.full(n_events, -1, dtype=np.int64)
        placement_col = np.ones(n_events, dtype=np.int8)
        placement_col[shed_of_job[ev_jobpos] & (ev_kind == _ARRIVE)] = 2
        instances_col = np.zeros(n_events, dtype=np.int64)
        for p in range(n_apps):
            idx, out = pool_positions[p], pool_outputs[p]
            base = p * self.servers_per_app
            server_col[idx] = np.where(
                out.server >= 0, out.server + base, -1
            )
            placement_col[idx] = out.placement
            instances_col[idx] = out.instances_after

        is_arrival_ev = ev_kind == _ARRIVE
        colocated_ev = is_arrival_ev & (placement_col == 0)
        colocated_placed = int(np.count_nonzero(colocated_ev))
        shed_total = int(np.count_nonzero(shed))
        counter("serve.engine.epochs").inc(n_epochs)
        counter("serve.engine.events").inc(n_events)
        counter("serve.engine.arrivals").inc(n_arrivals)
        counter("serve.engine.departures").inc(n_departures)
        counter("serve.engine.colocated").inc(colocated_placed)
        counter("serve.engine.baseline_placed").inc(
            n_arrivals - colocated_placed
        )

        arr_per_epoch = np.bincount(arr_epoch, minlength=n_epochs)
        dep_per_epoch = np.bincount(
            ev_epoch[~is_arrival_ev], minlength=n_epochs
        )
        running = np.cumsum(arr_per_epoch - dep_per_epoch)
        colocated_per_epoch = np.bincount(
            ev_epoch[colocated_ev], minlength=n_epochs
        )
        shed_per_epoch = np.bincount(
            arr_epoch[shed], minlength=n_epochs
        )
        running_gauge = gauge("serve.engine.running")
        tracing = obs_trace.is_active()
        sampling = timeseries.is_active()
        if sampling:
            cum_arr = np.cumsum(arr_per_epoch)
            cum_dep = np.cumsum(dep_per_epoch)
            cum_shed = np.cumsum(shed_per_epoch)
        with span("serve.score"):
            for e in range(n_epochs):
                end = float(ends[e])
                running_gauge.set(float(running[e]))
                obs_trace.counter_value(
                    "serve.engine.running", float(running[e]),
                    sim_time_s=end,
                )
                if tracing:
                    obs_trace.instant(
                        "serve.decision",
                        {
                            "epoch": e,
                            "arrivals": int(arr_per_epoch[e]),
                            "colocated": int(colocated_per_epoch[e]),
                            "baseline": int(
                                arr_per_epoch[e] - colocated_per_epoch[e]
                                - shed_per_epoch[e]
                            ),
                            "shed": int(shed_per_epoch[e]),
                        },
                        sim_time_s=end,
                    )
                groups: list[_Group] = []
                for p in range(n_apps):
                    groups.extend(
                        (p, prof, inst, count)
                        for prof, inst, count
                        in pool_outputs[p].groups_per_epoch[e]
                    )
                self._score_fleet(
                    end, groups, trace.pool,
                    sheds=int(shed_per_epoch[e]),
                    requests=int(arr_per_epoch[e]),
                )
                if sampling:
                    self._telemetry_tick(
                        end, int(cum_arr[e]), int(cum_dep[e]),
                        int(cum_shed[e]),
                    )

        events = EventTable(
            time_s=ev_time,
            kind=ev_kind,
            job_id=trace.job_id[ev_jobpos],
            profile_idx=trace.profile_idx[ev_jobpos],
            app_idx=ev_app,
            server=server_col,
            placement=placement_col,
            instances_after=instances_col,
            profiles=[p.name for p in trace.pool],
            apps=[a.name for a in self.apps],
        )
        windows = self.slo.finish() if self.slo is not None else ()
        return ReplayOutcome(
            policy=self.decider.name,
            trace_kind=trace.kind,
            seed=trace.seed,
            horizon_s=trace.horizon_s,
            arrivals=n_arrivals,
            departures=n_departures,
            still_placed=n_arrivals - n_departures,
            colocated_placed=colocated_placed,
            baseline_placed=n_arrivals - colocated_placed,
            shed=shed_total,
            events=events,
            windows=tuple(windows),
        )

    # -- adaptive vectorized strategy ----------------------------------

    def _replay_vector_adaptive(
        self, trace: Trace, *, shards: int = 0, jobs: int | None = None,
    ) -> ReplayOutcome:
        """Vectorized replay with per-epoch decide/place/score interleave.

        Identical in outputs to :meth:`_replay_vector` except the decide
        phase cannot be hoisted out of the epoch loop: the adaptation
        controller may hot-swap the decider's coefficients at any epoch
        boundary, so epoch ``e + 1``'s decisions depend on epoch ``e``'s
        scoring. Decisions still never depend on placement, so the
        per-pool kernels are unchanged — they just step one epoch at a
        time, optionally resident in persistent worker processes
        (:class:`EpochShardPool`) when ``shards > 1``.
        """
        adaptation = self.adaptation
        assert adaptation is not None
        n_apps = len(self.apps)
        threads = self.threads_per_server
        n_jobs = len(trace)
        n_epochs, ends = self._epoch_grid(trace.horizon_s)
        app_of_job = (trace.job_id % n_apps).astype(np.intp)
        arr_order, arr_epoch = self._arrival_plan(trace, ends)
        n_arrivals = int(arr_order.size)

        # The candidate stream is decision-independent, so its unique-
        # pair classification is still one up-front numpy pass exactly
        # as in _replay_vector; only the decide calls move into the loop.
        epoch_starts_arr = np.searchsorted(arr_epoch,
                                           np.arange(n_epochs + 1))
        epoch_starts = epoch_starts_arr.tolist()
        app_c = app_of_job[arr_order]
        prof_c = trace.profile_idx[arr_order]
        n_pool = len(trace.pool)
        n_pairs = n_apps * n_pool
        key_table = [
            (app.name, profile.name, threads)
            for app in self.apps for profile in trace.pool
        ]
        pair_c = app_c * n_pool + prof_c
        combo = arr_epoch * n_pairs + pair_c
        uid_combo, first_pos, inv_g = np.unique(
            combo, return_index=True, return_inverse=True,
        )
        uid_epoch = uid_combo // n_pairs
        uid_off = np.searchsorted(uid_epoch, np.arange(n_epochs + 1))
        uid_pair = (uid_combo % n_pairs).tolist()
        uid_offs = uid_off.tolist()
        inv_local = (inv_g - uid_off[arr_epoch]).tolist()
        firsts_local = (first_pos - epoch_starts_arr[uid_epoch]).tolist()
        stream = CandidateStream(
            self.apps, trace.pool, app_c, prof_c, pair_c, threads,
            key_table, epoch_starts, uid_offs, uid_pair,
            inv_local, firsts_local,
        )

        # Merged event table, identical to _replay_vector; per-epoch
        # slices are contiguous because ev_epoch is nondecreasing.
        dep_t = trace.departure_s[arr_order]
        dep_pos = arr_order[dep_t < trace.horizon_s]
        n_departures = int(dep_pos.size)
        ev_time = np.concatenate(
            (trace.arrival_s[arr_order], trace.departure_s[dep_pos])
        )
        ev_kind = np.concatenate((
            np.full(n_arrivals, _ARRIVE, dtype=np.int8),
            np.full(n_departures, _DEPART, dtype=np.int8),
        ))
        ev_jobpos = np.concatenate((arr_order, dep_pos))
        order = np.lexsort((trace.job_id[ev_jobpos], ev_kind, ev_time))
        ev_time = ev_time[order]
        ev_kind = ev_kind[order]
        ev_jobpos = ev_jobpos[order]
        ev_epoch = np.searchsorted(ends, ev_time, side="right")
        ev_app = app_of_job[ev_jobpos]
        n_events = int(ev_time.size)
        ev_splits = np.searchsorted(ev_epoch,
                                    np.arange(n_epochs + 1)).tolist()

        shed_all = np.zeros(n_arrivals, dtype=bool)
        cap_of_job = np.zeros(n_jobs, dtype=np.int64)
        shed_of_job = np.zeros(n_jobs, dtype=bool)

        # Caps never exceed the context supply, so one state bound
        # serves every pool; kernel outputs are bound-independent.
        n_states = threads + 2
        pool: EpochShardPool | None = None
        kernels: list[PoolKernel] = []
        if shards > 1:
            series = timeseries.active()
            stream_every = (
                max(1, round(series.interval_s / self.epoch_s))
                if series is not None else 0
            )
            pool = EpochShardPool(
                [(self.servers_per_app, n_states)] * n_apps,
                shards=shards, jobs=jobs, stream_every=stream_every,
            )
        else:
            kernels = [
                PoolKernel(self.servers_per_app, n_states)
                for _ in range(n_apps)
            ]

        # Arrival/departure totals are decision-independent (a shed job
        # still departs from the baseline pool), so the running-jobs
        # series is precomputable.
        is_arrival_ev = ev_kind == _ARRIVE
        arr_per_epoch = np.bincount(arr_epoch, minlength=n_epochs)
        dep_per_epoch = np.bincount(
            ev_epoch[~is_arrival_ev], minlength=n_epochs
        )
        running = np.cumsum(arr_per_epoch - dep_per_epoch)
        running_gauge = gauge("serve.engine.running")
        cum_arr = np.cumsum(arr_per_epoch)
        cum_dep = np.cumsum(dep_per_epoch)
        shed_running = 0

        profile_of_job = trace.profile_idx
        pool_positions: list[list[np.ndarray]] = [[] for _ in range(n_apps)]
        for e in range(n_epochs):
            end = float(ends[e])
            s0, s1 = epoch_starts[e], epoch_starts[e + 1]
            with span("serve.decide"):
                batch = stream.batch(e)
                self.decider.begin_epoch_batch(batch)
                decisions = self.decider.decide_batch(batch)
            shed_all[s0:s1] = decisions.shed
            cap_e = np.minimum(decisions.max_safe_instances, threads)
            cap_e[decisions.shed] = 0
            jobpos_e = arr_order[s0:s1]
            cap_of_job[jobpos_e] = cap_e
            shed_of_job[jobpos_e] = decisions.shed
            e0, e1 = ev_splits[e], ev_splits[e + 1]
            jp = ev_jobpos[e0:e1]
            interesting = cap_of_job[jp] >= 1
            app_e = ev_app[e0:e1]
            kind_e = ev_kind[e0:e1]
            epoch_inputs = []
            for p in range(n_apps):
                local = np.flatnonzero(interesting & (app_e == p))
                pool_positions[p].append(local + e0)
                jp_p = jp[local]
                epoch_inputs.append((
                    (kind_e[local] == _ARRIVE).tolist(),
                    jp_p.tolist(),
                    profile_of_job[jp_p].tolist(),
                    cap_of_job[jp_p].tolist(),
                ))
            with span("serve.place"):
                if pool is not None:
                    epoch_groups = pool.step(epoch_inputs)
                else:
                    epoch_groups = [
                        kernels[p].step(
                            *epoch_inputs[p], 0, len(epoch_inputs[p][0]),
                        )
                        for p in range(n_apps)
                    ]
            running_gauge.set(float(running[e]))
            obs_trace.counter_value(
                "serve.engine.running", float(running[e]), sim_time_s=end,
            )
            epoch_sheds = int(np.count_nonzero(decisions.shed))
            shed_running += epoch_sheds
            with span("serve.score"):
                groups: list[_Group] = [
                    (p, prof, inst, count)
                    for p in range(n_apps)
                    for prof, inst, count in epoch_groups[p]
                ]
                self._score_fleet(
                    end, groups, trace.pool,
                    sheds=epoch_sheds, requests=s1 - s0,
                )
            self._telemetry_tick(
                end, int(cum_arr[e]), int(cum_dep[e]), shed_running,
            )
            # The epoch boundary is the only legal swap point: scoring
            # above fed this epoch's residuals, decisions below see the
            # (possibly) new coefficients — matching the scalar loop
            # event for event.
            if adaptation.end_epoch(end):
                self._pred_idx = {}

        if pool is not None:
            pool_outputs = pool.finish()
        else:
            pool_outputs = [kernel.result() for kernel in kernels]

        # Scatter, count, and assemble exactly as _replay_vector does.
        server_col = np.full(n_events, -1, dtype=np.int64)
        placement_col = np.ones(n_events, dtype=np.int8)
        placement_col[shed_of_job[ev_jobpos] & is_arrival_ev] = 2
        instances_col = np.zeros(n_events, dtype=np.int64)
        for p in range(n_apps):
            idx = np.concatenate(pool_positions[p])
            out = pool_outputs[p]
            base = p * self.servers_per_app
            server_col[idx] = np.where(
                out.server >= 0, out.server + base, -1
            )
            placement_col[idx] = out.placement
            instances_col[idx] = out.instances_after

        colocated_ev = is_arrival_ev & (placement_col == 0)
        colocated_placed = int(np.count_nonzero(colocated_ev))
        shed_total = int(np.count_nonzero(shed_all))
        counter("serve.engine.epochs").inc(n_epochs)
        counter("serve.engine.events").inc(n_events)
        counter("serve.engine.arrivals").inc(n_arrivals)
        counter("serve.engine.departures").inc(n_departures)
        counter("serve.engine.colocated").inc(colocated_placed)
        counter("serve.engine.baseline_placed").inc(
            n_arrivals - colocated_placed
        )
        if obs_trace.is_active():
            colocated_per_epoch = np.bincount(
                ev_epoch[colocated_ev], minlength=n_epochs
            )
            shed_per_epoch = np.bincount(
                arr_epoch[shed_all], minlength=n_epochs
            )
            for e in range(n_epochs):
                obs_trace.instant(
                    "serve.decision",
                    {
                        "epoch": e,
                        "arrivals": int(arr_per_epoch[e]),
                        "colocated": int(colocated_per_epoch[e]),
                        "baseline": int(
                            arr_per_epoch[e] - colocated_per_epoch[e]
                            - shed_per_epoch[e]
                        ),
                        "shed": int(shed_per_epoch[e]),
                    },
                    sim_time_s=float(ends[e]),
                )

        events = EventTable(
            time_s=ev_time,
            kind=ev_kind,
            job_id=trace.job_id[ev_jobpos],
            profile_idx=trace.profile_idx[ev_jobpos],
            app_idx=ev_app,
            server=server_col,
            placement=placement_col,
            instances_after=instances_col,
            profiles=[p.name for p in trace.pool],
            apps=[a.name for a in self.apps],
        )
        windows = self.slo.finish() if self.slo is not None else ()
        return ReplayOutcome(
            policy=self.decider.name,
            trace_kind=trace.kind,
            seed=trace.seed,
            horizon_s=trace.horizon_s,
            arrivals=n_arrivals,
            departures=n_departures,
            still_placed=n_arrivals - n_departures,
            colocated_placed=colocated_placed,
            baseline_placed=n_arrivals - colocated_placed,
            shed=shed_total,
            events=events,
            windows=tuple(windows),
        )

    # -- scalar reference strategy -------------------------------------

    def _pick_server(
        self, app: LatencySensitiveWorkload, profile: WorkloadProfile,
        safe_instances: int,
    ) -> OnlineServer | None:
        """Best server in the pool, or None for the baseline pool.

        Bin-packs: same-profile servers first (fullest, then lowest
        index), then an idle server — never above the decision's safe
        count or the context supply. The vectorized kernel's free lists
        implement exactly this scan.
        """
        if safe_instances < 1:
            return None
        cap = min(safe_instances, self.threads_per_server)
        best: OnlineServer | None = None
        idle: OnlineServer | None = None
        for server in self._pool_servers(app.name):
            if server.batch_profile is None:
                if idle is None:
                    idle = server
                continue
            if server.batch_profile.name != profile.name:
                continue
            if server.instances + 1 > cap:
                continue
            if best is None or server.instances > best.instances:
                best = server
        return best if best is not None else idle

    def _pool_servers(self, app_name: str) -> list[OnlineServer]:
        for i, app in enumerate(self.apps):
            if app.name == app_name:
                lo = i * self.servers_per_app
                return self.servers[lo:lo + self.servers_per_app]
        raise ConfigurationError(f"unknown service pool {app_name}")

    def _scalar_groups(
        self, profile_index: dict[str, int]
    ) -> list[_Group]:
        """Aggregate live server state into canonical scoring groups."""
        tally: dict[tuple[int, int, int], int] = {}
        for server in self.servers:
            if not server.is_colocated:
                continue
            assert server.batch_profile is not None
            key = (
                server.index // self.servers_per_app,
                profile_index[server.batch_profile.name],
                server.instances,
            )
            tally[key] = tally.get(key, 0) + 1
        return [
            (a, p, inst, count)
            for (a, p, inst), count in sorted(tally.items())
        ]

    def _replay_scalar(self, trace: Trace) -> ReplayOutcome:
        n_epochs, ends = self._epoch_grid(trace.horizon_s)
        arr_order, arr_epoch = self._arrival_plan(trace, ends)
        epoch_starts = np.searchsorted(arr_epoch, np.arange(n_epochs + 1))
        jobs = trace.jobs
        profile_index = {p.name: i for i, p in enumerate(trace.pool)}
        heap: list[tuple[float, int, int, TraceJob]] = [
            (jobs[i].arrival_s, _ARRIVE, jobs[i].job_id, jobs[i])
            for i in arr_order.tolist()
        ]
        heapq.heapify(heap)

        events_c = counter("serve.engine.events")
        arrivals_c = counter("serve.engine.arrivals")
        departures_c = counter("serve.engine.departures")
        colocated_c = counter("serve.engine.colocated")
        baseline_c = counter("serve.engine.baseline_placed")
        epochs_c = counter("serve.engine.epochs")

        events: list[EventRecord] = []
        placed_on: dict[int, OnlineServer | None] = {}
        arrivals = departures = colocated_placed = baseline_placed = shed = 0

        for epoch in range(n_epochs):
            epoch_end = float(ends[epoch])
            s0, s1 = int(epoch_starts[epoch]), int(epoch_starts[epoch + 1])
            candidates: list[Candidate] = [
                (self._route(jobs[i]), jobs[i].profile,
                 self.threads_per_server)
                for i in arr_order[s0:s1].tolist()
            ]
            with span("serve.epoch"):
                epochs_c.inc()
                self.decider.begin_epoch(candidates)
                epoch_events = 0
                epoch_arrivals = 0
                epoch_departures = 0
                epoch_colocated = 0
                epoch_baseline = 0
                epoch_sheds = 0
                while heap and heap[0][0] < epoch_end:
                    time_s, kind, job_id, job = heapq.heappop(heap)
                    epoch_events += 1
                    if kind == _ARRIVE:
                        arrivals += 1
                        epoch_arrivals += 1
                        app = self._route(job)
                        decision = self.decider.decide(
                            app, job.profile,
                            max_instances=self.threads_per_server,
                        )
                        server = None
                        if not decision.shed:
                            server = self._pick_server(
                                app, job.profile,
                                decision.max_safe_instances,
                            )
                        placed_on[job.job_id] = server
                        if server is not None:
                            server.batch_profile = job.profile
                            server.resident_jobs[job.job_id] = None
                            colocated_placed += 1
                            epoch_colocated += 1
                            placement = "colocated"
                        else:
                            baseline_placed += 1
                            epoch_baseline += 1
                            placement = "shed" if decision.shed else "baseline"
                            if decision.shed:
                                shed += 1
                                epoch_sheds += 1
                        heapq.heappush(
                            heap,
                            (job.departure_s, _DEPART, job.job_id, job),
                        )
                        if obs_trace.is_active():
                            obs_trace.instant(
                                "serve.decision",
                                {
                                    "job": job.job_id,
                                    "app": app.name,
                                    "profile": job.profile.name,
                                    "placement": placement,
                                    "max_safe": decision.max_safe_instances,
                                    "predicted":
                                        self.decider.predicted_degradation(
                                            app, job.profile,
                                            decision.max_safe_instances,
                                        ),
                                },
                                sim_time_s=time_s,
                            )
                        events.append(EventRecord(
                            time_s=time_s, kind="arrive", job_id=job_id,
                            profile=job.profile.name, app=app.name,
                            server=server.index if server else -1,
                            placement=placement,
                            instances_after=(
                                server.instances if server else 0
                            ),
                        ))
                    else:
                        departures += 1
                        epoch_departures += 1
                        server = placed_on.pop(job.job_id)
                        if server is not None:
                            del server.resident_jobs[job.job_id]
                            if not server.resident_jobs:
                                server.batch_profile = None
                        events.append(EventRecord(
                            time_s=time_s, kind="depart", job_id=job_id,
                            profile=job.profile.name,
                            app=self._route(job).name,
                            server=server.index if server else -1,
                            placement=(
                                "colocated" if server else "baseline"
                            ),
                            instances_after=(
                                server.instances if server else 0
                            ),
                        ))
                events_c.inc(epoch_events)
                arrivals_c.inc(epoch_arrivals)
                departures_c.inc(epoch_departures)
                colocated_c.inc(epoch_colocated)
                baseline_c.inc(epoch_baseline)
                gauge("serve.engine.running").set(float(len(placed_on)))
                obs_trace.counter_value("serve.engine.running",
                                        float(len(placed_on)),
                                        sim_time_s=epoch_end)
                groups = self._scalar_groups(profile_index)
                self._score_fleet(
                    epoch_end, groups, trace.pool,
                    sheds=epoch_sheds, requests=epoch_arrivals,
                )
                for server in self.servers:
                    if server.is_colocated:
                        assert server.batch_profile is not None
                        server.actual_degradation = self._deg_cache[(
                            server.latency_app.name,
                            server.batch_profile.name,
                            server.instances,
                        )]
                    else:
                        server.actual_degradation = 0.0
                self._telemetry_tick(epoch_end, arrivals, departures, shed)
                # Adaptation steps at the epoch boundary — after this
                # epoch's scoring, before the next epoch's decisions —
                # so scalar and vectorized replays swap at identical
                # points. A swap drops the prediction memo (measured
                # degradations are coefficient-free and survive).
                if (self.adaptation is not None
                        and self.adaptation.end_epoch(epoch_end)):
                    self._pred_idx = {}

        still_placed = len(placed_on)
        windows = self.slo.finish() if self.slo is not None else ()
        return ReplayOutcome(
            policy=self.decider.name,
            trace_kind=trace.kind,
            seed=trace.seed,
            horizon_s=trace.horizon_s,
            arrivals=arrivals,
            departures=departures,
            still_placed=still_placed,
            colocated_placed=colocated_placed,
            baseline_placed=baseline_placed,
            shed=shed,
            events=tuple(events),
            windows=tuple(windows),
        )
