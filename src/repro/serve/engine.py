"""Discrete-event cluster runtime: replay a trace against live servers.

The engine holds ``Cluster``-style server state — one half-loaded
latency-sensitive service per server, idle SMT sibling contexts for
batch work — and replays a :class:`~repro.serve.traffic.Trace` against
it. Every arrival is routed to a service pool (deterministic round-robin
on job id), put to the :class:`~repro.serve.service.Decider` exactly
once, and either *co-located* on a server the decision calls safe or
*shunted to the baseline pool* (dedicated no-co-location capacity, where
shed and unsafe jobs run alone). Every departure frees its context.

Time is the simulated event clock — the engine never reads a wall
clock. Events are processed in epochs: at each epoch boundary the
decider's :meth:`begin_epoch` micro-batching hook fires (routing all
needed degradation solves through ``Simulator.prefetch`` in one batched
fixed point) and the SLO tracker samples the fleet. Given the same trace
and seed, two replays produce byte-identical event logs.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError, SchedulingError
from repro.obs import PredictionAudit, counter, gauge, span
from repro.obs import trace as obs_trace
from repro.serve.service import Candidate, Decider
from repro.serve.slo import SloWindow, WindowedSlo
from repro.serve.traffic import Trace, TraceJob
from repro.smt.simulator import Simulator
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = [
    "EventRecord",
    "OnlineServer",
    "ReplayOutcome",
    "ServingEngine",
]

#: Event-kind sort ranks: at equal timestamps departures free contexts
#: before arrivals claim them.
_DEPART, _ARRIVE = 0, 1


@dataclass
class OnlineServer:
    """Live state of one server: its latency service plus batch guests.

    Field names mirror ``scheduler.cluster.ServerState`` so the
    violation accounting in :mod:`repro.serve.slo` can score either.
    """

    index: int
    latency_app: LatencySensitiveWorkload
    batch_profile: WorkloadProfile | None = None
    resident_jobs: dict[int, None] = field(default_factory=dict)
    actual_degradation: float = 0.0

    @property
    def instances(self) -> int:
        """Number of batch instances currently on this server."""
        return len(self.resident_jobs)

    @property
    def is_colocated(self) -> bool:
        """Whether any sibling SMT context is running batch work."""
        return self.instances > 0


@dataclass(frozen=True)
class EventRecord:
    """One processed event, formatted identically on every replay."""

    time_s: float
    kind: str  # "arrive" | "depart"
    job_id: int
    profile: str
    app: str
    server: int  # -1 for the baseline pool
    placement: str  # "colocated" | "baseline" | "shed"
    instances_after: int

    def as_line(self) -> str:
        """Render as one stable, byte-comparable log line."""
        return (
            f"{self.time_s:.6f} {self.kind} job={self.job_id} "
            f"profile={self.profile} app={self.app} server={self.server} "
            f"placement={self.placement} instances={self.instances_after}"
        )


@dataclass(frozen=True)
class ReplayOutcome:
    """Everything one trace replay produced, reconciled.

    ``arrivals == departures + still_placed`` and
    ``colocated_placed + baseline_placed == arrivals`` are checked at
    construction time (:meth:`reconcile` raises on mismatch).
    """

    policy: str
    trace_kind: str
    seed: int
    horizon_s: float
    arrivals: int
    departures: int
    still_placed: int
    colocated_placed: int
    baseline_placed: int
    shed: int
    events: tuple[EventRecord, ...]
    windows: tuple[SloWindow, ...]

    def __post_init__(self) -> None:
        self.reconcile()

    def reconcile(self) -> None:
        """Check the arrival/departure/placement books balance."""
        if self.arrivals != self.departures + self.still_placed:
            raise SchedulingError(
                f"unbalanced books: {self.arrivals} arrivals != "
                f"{self.departures} departures + {self.still_placed} placed"
            )
        if self.colocated_placed + self.baseline_placed != self.arrivals:
            raise SchedulingError(
                f"unbalanced placements: {self.colocated_placed} colocated "
                f"+ {self.baseline_placed} baseline != {self.arrivals}"
            )

    def event_log(self) -> str:
        """The full event log as one newline-joined deterministic string."""
        return "\n".join(record.as_line() for record in self.events)

    def slo_series(self) -> str:
        """The windowed SLO series as one deterministic string."""
        return "\n".join(window.as_line() for window in self.windows)

    @property
    def mean_violation_rate(self) -> float:
        """Sample-weighted mean QoS-violation rate across windows."""
        colocated = sum(w.violations.colocated_servers for w in self.windows)
        violated = sum(w.violations.violated_servers for w in self.windows)
        return (violated / colocated) if colocated else 0.0

    @property
    def mean_utilization_gain(self) -> float:
        """Mean per-window utilization gain from co-located batch work."""
        if not self.windows:
            return 0.0
        gains = [w.mean_utilization_gain for w in self.windows]
        return sum(gains) / len(gains)


class ServingEngine:
    """Replays traces: routes, decides, places, frees, and keeps score."""

    def __init__(
        self,
        simulator: Simulator,
        apps: Sequence[LatencySensitiveWorkload],
        decider: Decider,
        *,
        servers_per_app: int = 8,
        epoch_s: float = 300.0,
        window_s: float = 3_600.0,
        slo: WindowedSlo | None = None,
        audit: PredictionAudit | None = None,
    ) -> None:
        apps = tuple(apps)
        if not apps:
            raise ConfigurationError("serving needs at least one latency app")
        if servers_per_app < 1:
            raise ConfigurationError(
                f"servers_per_app must be >= 1, got {servers_per_app}"
            )
        if epoch_s <= 0.0 or window_s < epoch_s:
            raise ConfigurationError(
                "need 0 < epoch_s <= window_s, got "
                f"epoch_s={epoch_s}, window_s={window_s}"
            )
        self.simulator = simulator
        self.apps = apps
        self.decider = decider
        self.servers_per_app = servers_per_app
        self.epoch_s = epoch_s
        self.window_s = window_s
        self.slo = slo
        #: Prediction-accuracy audit fed at every fleet refresh; pass
        #: the same instance to the SLO tracker so window closes drain
        #: its drift accumulator.
        self.audit = audit
        #: idle SMT contexts per server = one sibling per core
        self.threads_per_server = simulator.machine.cores
        self.servers: list[OnlineServer] = [
            OnlineServer(index=i, latency_app=apps[i // servers_per_app])
            for i in range(servers_per_app * len(apps))
        ]
        self._groups: dict[str, list[OnlineServer]] = {
            app.name: [
                s for s in self.servers if s.latency_app.name == app.name
            ]
            for app in apps
        }

    # ------------------------------------------------------------------

    def _route(self, job: TraceJob) -> LatencySensitiveWorkload:
        """Deterministic round-robin routing of jobs to service pools."""
        return self.apps[job.job_id % len(self.apps)]

    def _pick_server(
        self, app: LatencySensitiveWorkload, profile: WorkloadProfile,
        safe_instances: int,
    ) -> OnlineServer | None:
        """Best server in the pool, or None for the baseline pool.

        Bin-packs: same-profile servers first (fullest, then lowest
        index), then an idle server — never above the decision's safe
        count or the context supply.
        """
        if safe_instances < 1:
            return None
        cap = min(safe_instances, self.threads_per_server)
        best: OnlineServer | None = None
        idle: OnlineServer | None = None
        for server in self._groups[app.name]:
            if server.batch_profile is None:
                if idle is None:
                    idle = server
                continue
            if server.batch_profile.name != profile.name:
                continue
            if server.instances + 1 > cap:
                continue
            if best is None or server.instances > best.instances:
                best = server
        return best if best is not None else idle

    def _sample_fleet(self, time_s: float) -> None:
        """Refresh degradations (batched) and hand a sample to the SLO."""
        colocated = [s for s in self.servers if s.is_colocated]
        distinct: dict[tuple[str, str, int], list[OnlineServer]] = {}
        for server in colocated:
            assert server.batch_profile is not None
            key = (server.latency_app.name, server.batch_profile.name,
                   server.instances)
            distinct.setdefault(key, []).append(server)
        placements = [
            self.simulator.server_placements(
                group[0].latency_app.profile, group[0].batch_profile,
                instances=group[0].instances,
            )
            for group in distinct.values()
        ]
        if placements:
            self.simulator.prefetch(placements)
        for group in distinct.values():
            degradation = self.simulator.measure_server_degradation(
                group[0].latency_app.profile, group[0].batch_profile,
                instances=group[0].instances,
            )
            for server in group:
                server.actual_degradation = degradation
            if self.audit is not None:
                predicted = self.decider.predicted_degradation(
                    group[0].latency_app, group[0].batch_profile,
                    group[0].instances,
                )
                if predicted is not None:
                    for server in group:
                        self.audit.record(
                            server.latency_app.name,
                            server.batch_profile.name,
                            predicted=predicted,
                            actual=degradation,
                        )
        for server in self.servers:
            if not server.is_colocated:
                server.actual_degradation = 0.0
        if self.slo is not None:
            self.slo.observe(time_s, self.servers,
                             threads_per_server=self.threads_per_server)

    # ------------------------------------------------------------------

    def replay(self, trace: Trace) -> ReplayOutcome:
        """Run one trace to its horizon; returns the reconciled outcome."""
        with span("serve.replay"):
            return self._replay(trace)

    def _replay(self, trace: Trace) -> ReplayOutcome:
        n_epochs = max(1, math.ceil(trace.horizon_s / self.epoch_s))
        arrivals_by_epoch: dict[int, list[TraceJob]] = {}
        heap: list[tuple[float, int, int, TraceJob]] = []
        for job in trace.jobs:
            epoch = min(int(job.arrival_s // self.epoch_s), n_epochs - 1)
            arrivals_by_epoch.setdefault(epoch, []).append(job)
            heapq.heappush(heap, (job.arrival_s, _ARRIVE, job.job_id, job))

        events: list[EventRecord] = []
        placed_on: dict[int, OnlineServer | None] = {}
        arrivals = departures = colocated_placed = baseline_placed = shed = 0

        for epoch in range(n_epochs):
            epoch_end = min((epoch + 1) * self.epoch_s, trace.horizon_s)
            candidates: list[Candidate] = [
                (self._route(job), job.profile, self.threads_per_server)
                for job in arrivals_by_epoch.get(epoch, [])
            ]
            with span("serve.epoch"):
                counter("serve.engine.epochs").inc()
                self.decider.begin_epoch(candidates)
                while heap and heap[0][0] < epoch_end:
                    time_s, kind, job_id, job = heapq.heappop(heap)
                    counter("serve.engine.events").inc()
                    if kind == _ARRIVE:
                        arrivals += 1
                        counter("serve.engine.arrivals").inc()
                        app = self._route(job)
                        decision = self.decider.decide(
                            app, job.profile,
                            max_instances=self.threads_per_server,
                        )
                        server = None
                        if not decision.shed:
                            server = self._pick_server(
                                app, job.profile,
                                decision.max_safe_instances,
                            )
                        placed_on[job.job_id] = server
                        if server is not None:
                            server.batch_profile = job.profile
                            server.resident_jobs[job.job_id] = None
                            colocated_placed += 1
                            counter("serve.engine.colocated").inc()
                            placement = "colocated"
                        else:
                            baseline_placed += 1
                            counter("serve.engine.baseline_placed").inc()
                            placement = "shed" if decision.shed else "baseline"
                            if decision.shed:
                                shed += 1
                        heapq.heappush(
                            heap,
                            (job.departure_s, _DEPART, job.job_id, job),
                        )
                        if obs_trace.is_active():
                            obs_trace.instant(
                                "serve.decision",
                                {
                                    "job": job.job_id,
                                    "app": app.name,
                                    "profile": job.profile.name,
                                    "placement": placement,
                                    "max_safe": decision.max_safe_instances,
                                    "predicted":
                                        self.decider.predicted_degradation(
                                            app, job.profile,
                                            decision.max_safe_instances,
                                        ),
                                },
                                sim_time_s=time_s,
                            )
                        events.append(EventRecord(
                            time_s=time_s, kind="arrive", job_id=job_id,
                            profile=job.profile.name, app=app.name,
                            server=server.index if server else -1,
                            placement=placement,
                            instances_after=(
                                server.instances if server else 0
                            ),
                        ))
                    else:
                        departures += 1
                        counter("serve.engine.departures").inc()
                        server = placed_on.pop(job.job_id)
                        if server is not None:
                            del server.resident_jobs[job.job_id]
                            if not server.resident_jobs:
                                server.batch_profile = None
                        events.append(EventRecord(
                            time_s=time_s, kind="depart", job_id=job_id,
                            profile=job.profile.name,
                            app=self._route(job).name,
                            server=server.index if server else -1,
                            placement=(
                                "colocated" if server else "baseline"
                            ),
                            instances_after=(
                                server.instances if server else 0
                            ),
                        ))
                gauge("serve.engine.running").set(float(len(placed_on)))
                obs_trace.counter_value("serve.engine.running",
                                    float(len(placed_on)),
                                    sim_time_s=epoch_end)
                self._sample_fleet(epoch_end)

        still_placed = len(placed_on)
        windows = self.slo.finish() if self.slo is not None else ()
        return ReplayOutcome(
            policy=self.decider.name,
            trace_kind=trace.kind,
            seed=trace.seed,
            horizon_s=trace.horizon_s,
            arrivals=arrivals,
            departures=departures,
            still_placed=still_placed,
            colocated_placed=colocated_placed,
            baseline_placed=baseline_placed,
            shed=shed,
            events=tuple(events),
            windows=tuple(windows),
        )
