"""Columnar storage for replay event streams.

A warehouse-scale replay emits millions of events; materializing one
:class:`EventRecord` dataclass per event costs more than the replay
itself. :class:`EventTable` keeps the stream struct-of-arrays (one numpy
array per field plus small name tables) while still *behaving* like the
tuple of :class:`EventRecord` objects the rest of the codebase consumes:
it is a ``Sequence`` whose items are built lazily, and it renders the
byte-stable event log directly from the columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, overload

import numpy as np

__all__ = [
    "EventRecord",
    "EventTable",
]

#: Event-kind column codes (sort ranks: at equal timestamps departures
#: free contexts before arrivals claim them).
KIND_DEPART, KIND_ARRIVE = 0, 1

#: Placement column codes, indexing :data:`PLACEMENT_NAMES`.
PLACEMENT_NAMES = ("colocated", "baseline", "shed")

_KIND_NAMES = ("depart", "arrive")


@dataclass(frozen=True)
class EventRecord:
    """One processed event, formatted identically on every replay."""

    time_s: float
    kind: str  # "arrive" | "depart"
    job_id: int
    profile: str
    app: str
    server: int  # -1 for the baseline pool
    placement: str  # "colocated" | "baseline" | "shed"
    instances_after: int

    def as_line(self) -> str:
        """Render as one stable, byte-comparable log line."""
        return (
            f"{self.time_s:.6f} {self.kind} job={self.job_id} "
            f"profile={self.profile} app={self.app} server={self.server} "
            f"placement={self.placement} instances={self.instances_after}"
        )


class EventTable(Sequence):
    """A replay's event stream, stored one numpy array per field.

    Rows are ordered exactly as the scalar engine would have appended
    them; indexing materializes an :class:`EventRecord` on demand, so
    existing consumers (tests, experiments) iterate it unchanged while
    the engine's hot path only ever touches the columns.
    """

    __slots__ = (
        "time_s", "kind", "job_id", "profile_idx", "app_idx",
        "server", "placement", "instances_after", "profiles", "apps",
    )

    def __init__(
        self,
        *,
        time_s: np.ndarray,
        kind: np.ndarray,
        job_id: np.ndarray,
        profile_idx: np.ndarray,
        app_idx: np.ndarray,
        server: np.ndarray,
        placement: np.ndarray,
        instances_after: np.ndarray,
        profiles: Sequence[str],
        apps: Sequence[str],
    ) -> None:
        self.time_s = time_s
        self.kind = kind
        self.job_id = job_id
        self.profile_idx = profile_idx
        self.app_idx = app_idx
        self.server = server
        self.placement = placement
        self.instances_after = instances_after
        self.profiles = tuple(profiles)
        self.apps = tuple(apps)

    def __len__(self) -> int:
        return int(self.time_s.size)

    def _record(self, i: int) -> EventRecord:
        return EventRecord(
            time_s=float(self.time_s[i]),
            kind=_KIND_NAMES[int(self.kind[i])],
            job_id=int(self.job_id[i]),
            profile=self.profiles[int(self.profile_idx[i])],
            app=self.apps[int(self.app_idx[i])],
            server=int(self.server[i]),
            placement=PLACEMENT_NAMES[int(self.placement[i])],
            instances_after=int(self.instances_after[i]),
        )

    @overload
    def __getitem__(self, index: int) -> EventRecord: ...

    @overload
    def __getitem__(self, index: slice) -> tuple[EventRecord, ...]: ...

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self._record(i)
                         for i in range(*index.indices(len(self))))
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self._record(index)

    def __iter__(self) -> Iterator[EventRecord]:
        for i in range(len(self)):
            yield self._record(i)

    def render_lines(self) -> list[str]:
        """All event-log lines, rendered from the columns in one pass."""
        profiles, apps = self.profiles, self.apps
        kind_names = _KIND_NAMES
        placement_names = PLACEMENT_NAMES
        rows = zip(
            self.time_s.tolist(), self.kind.tolist(), self.job_id.tolist(),
            self.profile_idx.tolist(), self.app_idx.tolist(),
            self.server.tolist(), self.placement.tolist(),
            self.instances_after.tolist(),
        )
        return [
            f"{t:.6f} {kind_names[k]} job={j} profile={profiles[p]} "
            f"app={apps[a]} server={s} placement={placement_names[pl]} "
            f"instances={n}"
            for t, k, j, p, a, s, pl, n in rows
        ]
