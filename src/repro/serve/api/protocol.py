"""The wire protocol of the network-facing prediction API.

One connection carries a stream of **frames**. A frame is a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON
(one object per frame). Requests carry ``{"v": 1, "op": ..., "id": ...}``
plus op-specific fields; every request is answered by exactly one
response frame echoing ``id`` — but responses are **not** ordered: a
client that pipelines requests must correlate by ``id``. The full
reference, including every error code and the backpressure semantics,
lives in ``docs/API.md``; this module is the executable half of that
contract (framing, validation, response construction) shared by the
server, the client, and the benchmark harness.

Versioning rule: ``PROTOCOL_VERSION`` bumps only on incompatible frame
or schema changes; a server answers a request whose ``v`` it does not
speak with an ``unsupported_version`` error naming the version it does.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError

__all__ = [
    "ApiProtocolError",
    "E_BAD_FRAME",
    "E_BAD_REQUEST",
    "E_BAD_VERSION",
    "E_DRAINING",
    "E_FRAME_TOO_LARGE",
    "E_INTERNAL",
    "E_OVERLOADED",
    "E_UNKNOWN_OP",
    "E_UNKNOWN_WORKLOAD",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "MAX_INSTANCES",
    "OPS",
    "PROTOCOL_VERSION",
    "decode_payload",
    "encode_frame",
    "error_response",
    "ok_response",
    "read_frame",
    "validate_request",
]

#: Wire-protocol version; echoed in every response. Bumped only on
#: incompatible framing or schema changes (see docs/API.md).
PROTOCOL_VERSION = 1

#: Length-prefix width: 4-byte big-endian unsigned frame length.
HEADER_BYTES = 4

#: Default ceiling on a single frame's payload, either direction. A
#: request larger than this is answered with ``frame_too_large`` and the
#: connection is closed (the remaining bytes cannot be trusted).
MAX_FRAME_BYTES = 64 * 1024

#: Ceiling on ``instances`` / ``max_instances`` in a request; far above
#: any real SMT context count, it only bounds attacker-supplied work.
MAX_INSTANCES = 64

#: The request operations the server understands. ``metrics`` was added
#: without a version bump: new fieldless ops are additive (old servers
#: answer ``unknown_op``, which clients can treat as "not supported").
OPS = ("ping", "predict", "place", "stats", "metrics", "shutdown")

# Error codes (the ``error.code`` field of a failed response).
E_BAD_FRAME = "bad_frame"  #: unparseable frame payload; connection closes
E_FRAME_TOO_LARGE = "frame_too_large"  #: frame over limit; connection closes
E_BAD_VERSION = "unsupported_version"  #: request ``v`` not spoken
E_BAD_REQUEST = "bad_request"  #: schema violation in an op's fields
E_UNKNOWN_OP = "unknown_op"  #: ``op`` not one of :data:`OPS`
E_UNKNOWN_WORKLOAD = "unknown_workload"  #: unresolvable app/profile name
E_OVERLOADED = "overloaded"  #: queue bound hit; 429-style shed-to-baseline
E_DRAINING = "draining"  #: server is shutting down; no new work accepted
E_INTERNAL = "internal"  #: decider raised while answering


class ApiProtocolError(ReproError):
    """A request (or frame) the server must answer with an error.

    ``code`` is the wire error code; ``close`` marks violations after
    which the byte stream can no longer be trusted (bad framing), so the
    server responds and then drops the connection.
    """

    def __init__(self, code: str, message: str, *,
                 close: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.close = close


def encode_frame(message: dict[str, Any], *,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message into a length-prefixed frame."""
    payload = json.dumps(message, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    if len(payload) > max_frame_bytes:
        raise ApiProtocolError(
            E_FRAME_TOO_LARGE,
            f"frame payload is {len(payload)} bytes "
            f"(limit {max_frame_bytes})", close=True,
        )
    return len(payload).to_bytes(HEADER_BYTES, "big") + payload


def decode_payload(payload: bytes) -> dict[str, Any]:
    """Parse one frame's payload into a message object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ApiProtocolError(
            E_BAD_FRAME, f"frame payload is not valid JSON: {exc}",
            close=True,
        ) from exc
    if not isinstance(message, dict):
        raise ApiProtocolError(
            E_BAD_FRAME, "frame payload must be a JSON object", close=True,
        )
    return message


async def read_frame(reader, *,
                     max_frame_bytes: int = MAX_FRAME_BYTES
                     ) -> dict[str, Any]:
    """Read one frame from an asyncio stream reader.

    Raises :class:`asyncio.IncompleteReadError` on a clean or mid-frame
    disconnect and :class:`ApiProtocolError` on framing violations.
    """
    header = await reader.readexactly(HEADER_BYTES)
    length = int.from_bytes(header, "big")
    if length > max_frame_bytes:
        raise ApiProtocolError(
            E_FRAME_TOO_LARGE,
            f"announced frame length {length} exceeds the "
            f"{max_frame_bytes}-byte limit", close=True,
        )
    return decode_payload(await reader.readexactly(length))


def _require_name(message: dict[str, Any], field: str) -> str:
    value = message.get(field)
    if not isinstance(value, str) or not value:
        raise ApiProtocolError(
            E_BAD_REQUEST, f"field {field!r} must be a non-empty string",
        )
    return value


def _require_count(message: dict[str, Any], field: str) -> int:
    value = message.get(field)
    if not isinstance(value, int) or isinstance(value, bool) \
            or not 1 <= value <= MAX_INSTANCES:
        raise ApiProtocolError(
            E_BAD_REQUEST,
            f"field {field!r} must be an integer in [1, {MAX_INSTANCES}]",
        )
    return value


def validate_request(message: dict[str, Any]) -> tuple[str, dict[str, Any]]:
    """Check one request against the protocol schema.

    Returns ``(op, fields)`` where ``fields`` holds the validated
    op-specific arguments. Raises :class:`ApiProtocolError` with the
    wire error code on any violation.
    """
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ApiProtocolError(
            E_BAD_VERSION,
            f"this server speaks protocol v{PROTOCOL_VERSION}, "
            f"request carried v={version!r}",
        )
    request_id = message.get("id")
    if request_id is not None and not isinstance(request_id, (str, int)):
        raise ApiProtocolError(
            E_BAD_REQUEST, "field 'id' must be a string or integer",
        )
    op = message.get("op")
    if not isinstance(op, str):
        raise ApiProtocolError(E_BAD_REQUEST,
                               "field 'op' must be a string")
    if op not in OPS:
        raise ApiProtocolError(
            E_UNKNOWN_OP, f"unknown op {op!r}; known: {', '.join(OPS)}",
        )
    fields: dict[str, Any] = {}
    if op == "place":
        fields["latency_app"] = _require_name(message, "latency_app")
        fields["batch"] = _require_name(message, "batch")
        fields["max_instances"] = _require_count(message, "max_instances")
    elif op == "predict":
        fields["latency_app"] = _require_name(message, "latency_app")
        fields["batch"] = _require_name(message, "batch")
        fields["instances"] = _require_count(message, "instances")
    return op, fields


def ok_response(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    """Build a success response envelope."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "result": result}


def error_response(request_id: Any, code: str, message: str, *,
                   retry_after_ms: float | None = None,
                   result: dict[str, Any] | None = None) -> dict[str, Any]:
    """Build an error response envelope.

    ``retry_after_ms`` is the backpressure hint carried by
    ``overloaded`` responses; ``result`` optionally carries the
    shed-to-baseline fallback answer so a client can degrade gracefully
    without a retry.
    """
    error: dict[str, Any] = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = retry_after_ms
    response: dict[str, Any] = {"v": PROTOCOL_VERSION, "id": request_id,
                                "ok": False, "error": error}
    if result is not None:
        response["result"] = result
    return response
