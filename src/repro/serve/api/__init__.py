"""Network-facing prediction API (wire protocol, server, client).

The serving stack of :mod:`repro.serve` answers placement questions
in-process; this package puts the same :class:`~repro.serve.service.Decider`
interface behind a socket so an external scheduler can query it before
every co-location decision, the way SMTcheck-style deployments run the
predictor as a live service. Three modules:

- :mod:`repro.serve.api.protocol` — the versioned, length-prefixed JSON
  wire format shared by both ends (documented in ``docs/API.md``),
- :mod:`repro.serve.api.server` — the asyncio micro-batching server
  with bounded-queue backpressure and multi-process sharding,
- :mod:`repro.serve.api.client` — the blocking reference client used by
  tests, the benchmark harness, and the docs snippets.
"""

from __future__ import annotations

from repro.serve.api.client import ApiClient, ApiError
from repro.serve.api.protocol import (
    MAX_FRAME_BYTES,
    MAX_INSTANCES,
    PROTOCOL_VERSION,
    ApiProtocolError,
)
from repro.serve.api.server import ApiServer, run_api_shards

__all__ = [
    "ApiClient",
    "ApiError",
    "ApiProtocolError",
    "ApiServer",
    "MAX_FRAME_BYTES",
    "MAX_INSTANCES",
    "PROTOCOL_VERSION",
    "run_api_shards",
]
