"""Blocking-socket client for the prediction API.

:class:`ApiClient` is the reference consumer of the wire protocol in
:mod:`repro.serve.api.protocol`: it frames requests, correlates
responses by ``id`` (so pipelined requests may be answered out of
order), and raises :class:`ApiError` on error responses, exposing the
backpressure fields (``retry_after_ms`` and the shed-to-baseline
``fallback`` result) that an overloaded server attaches. The benchmark
harness, the test suite, and the docs/API.md snippet all drive servers
through this class; a scheduler integrating against the service can use
it directly or treat it as executable protocol documentation.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.errors import ReproError
from repro.serve.api.protocol import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_payload,
    encode_frame,
)

__all__ = ["ApiClient", "ApiError"]


class ApiError(ReproError):
    """An error response from the server, with backpressure context.

    ``code`` is the wire error code (e.g. ``overloaded``),
    ``retry_after_ms`` the server's retry hint when it applied
    backpressure, and ``fallback`` the optional shed-to-baseline result
    a client may use instead of retrying.
    """

    def __init__(self, code: str, message: str, *,
                 retry_after_ms: float | None = None,
                 fallback: dict[str, Any] | None = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.retry_after_ms = retry_after_ms
        self.fallback = fallback


class ApiClient:
    """One TCP connection to an :class:`~repro.serve.api.ApiServer`.

    Usable as a context manager; requests are assigned monotonically
    increasing integer ids, and :meth:`request` blocks until *this*
    request's response arrives (buffering any other pipelined responses
    that land first).
    """

    def __init__(self, host: str, port: int, *,
                 timeout_s: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._buffer = b""
        self._responses: dict[Any, dict[str, Any]] = {}
        self._next_id = 0
        self._closed = False

    def __enter__(self) -> "ApiClient":
        """Enter a ``with`` block; the connection is already open."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Close the connection on ``with`` exit."""
        self.close()

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass

    # -- framing -------------------------------------------------------

    def _recv_frame(self) -> dict[str, Any]:
        while True:
            if len(self._buffer) >= HEADER_BYTES:
                length = int.from_bytes(self._buffer[:HEADER_BYTES], "big")
                end = HEADER_BYTES + length
                if len(self._buffer) >= end:
                    payload = self._buffer[HEADER_BYTES:end]
                    self._buffer = self._buffer[end:]
                    return decode_payload(payload)
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ReproError(
                    "server closed the connection mid-response"
                )
            self._buffer += chunk

    def send(self, message: dict[str, Any]) -> Any:
        """Send one request frame without waiting; returns its id.

        ``v`` and ``id`` are filled in when absent. Pair with
        :meth:`wait` to collect the response later — this is how the
        benchmark client keeps many requests in flight on one
        connection.
        """
        message = dict(message)
        message.setdefault("v", PROTOCOL_VERSION)
        if "id" not in message:
            self._next_id += 1
            message["id"] = self._next_id
        self._sock.sendall(
            encode_frame(message, max_frame_bytes=MAX_FRAME_BYTES)
        )
        return message["id"]

    def wait(self, request_id: Any) -> dict[str, Any]:
        """Block until the response for ``request_id`` arrives.

        Responses are correlated by ``id``; any other pipelined
        responses read along the way are buffered for their own
        :meth:`wait` calls. Raises :class:`ApiError` on an error
        response.
        """
        while request_id not in self._responses:
            response = self._recv_frame()
            self._responses[response.get("id")] = response
        response = self._responses.pop(request_id)
        if response.get("ok"):
            return response.get("result", {})
        error = response.get("error") or {}
        raise ApiError(
            error.get("code", "unknown"),
            error.get("message", "unspecified error"),
            retry_after_ms=error.get("retry_after_ms"),
            fallback=response.get("result"),
        )

    def request(self, message: dict[str, Any]) -> dict[str, Any]:
        """Send one request and block for its result."""
        return self.wait(self.send(message))

    # -- convenience ops -----------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Round-trip a ``ping``; returns the pong result."""
        return self.request({"op": "ping"})

    def predict(self, latency_app: str, batch: str,
                instances: int) -> dict[str, Any]:
        """Ask for the predicted degradation of one co-location."""
        return self.request({
            "op": "predict", "latency_app": latency_app,
            "batch": batch, "instances": instances,
        })

    def place(self, latency_app: str, batch: str,
              max_instances: int) -> dict[str, Any]:
        """Ask for the max QoS-safe instance count of a placement."""
        return self.request({
            "op": "place", "latency_app": latency_app,
            "batch": batch, "max_instances": max_instances,
        })

    def stats(self) -> dict[str, Any]:
        """Fetch the server's live serving counters."""
        return self.request({"op": "stats"})

    def metrics(self) -> dict[str, Any]:
        """Fetch the server's live telemetry frame and recent series.

        ``enabled`` is False when the server has no telemetry sampler
        installed; otherwise ``frame`` holds a fresh sample of the
        serving channels and ``frames`` the recorded tail (what
        ``repro.cli obs top`` polls when given ``host:port``).
        """
        return self.request({"op": "metrics"})

    def shutdown(self) -> dict[str, Any]:
        """Ask the server to drain gracefully and stop."""
        return self.request({"op": "shutdown"})
