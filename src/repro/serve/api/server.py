"""Asyncio front-end: micro-batching prediction server with backpressure.

:class:`ApiServer` turns any :class:`~repro.serve.service.Decider` into a
network service speaking the length-prefixed JSON protocol of
:mod:`repro.serve.api.protocol`. Three serving-side mechanisms mirror
the in-process :class:`~repro.serve.service.PredictionService` design:

1. **Micro-batching** — concurrent in-flight ``place``/``predict``
   requests land in one pending queue; a single batcher task drains up
   to ``max_batch`` of them at a time and announces the whole batch to
   the decider via :meth:`Decider.begin_epoch` before deciding, so every
   simulator solve a batch of cache misses needs goes through one
   batched prefetch (the same epoch-prefetch path the replay engine
   uses). While a batch is being decided, newly arriving requests
   accumulate — batch occupancy grows with offered load instead of
   per-request overhead.
2. **Backpressure** — the pending queue is bounded (``queue_bound``).
   A request that would overflow it is answered *immediately* with a
   429-style ``overloaded`` error carrying a deterministic
   ``retry_after_ms`` hint and, for ``place``, the shed-to-baseline
   fallback answer (``max_safe_instances: 0``), so an overloaded server
   degrades to the no-co-location baseline instead of collapsing into
   an unbounded queue. A second, deterministic shed layer lives inside
   :class:`PredictionService` itself: its admission-control budget can
   shed individual decisions within an accepted batch.
3. **Graceful drain** — :meth:`drain` stops accepting work, answers
   everything already queued, flushes responses, and only then closes
   connections; a ``shutdown`` request (or ``max_requests``) triggers
   the same path from the wire.

:func:`run_api_shards` fans the same server out across worker
processes (the ``--shards``/``--jobs`` machinery): each worker serves
its own port and obs registry, and the parent folds worker metric
snapshots back through :func:`repro.obs.merge` so QPS, batch-occupancy,
queue-depth, and shed-rate metrics aggregate exactly like the replay
engine's shard metrics do.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
from collections import deque
from contextlib import contextmanager, suppress
from dataclasses import dataclass
from multiprocessing.connection import wait as _pipe_wait
from typing import Any, Callable, Iterator

from repro import obs
from repro.errors import ConfigurationError, ReproError
from repro.obs import counter, diff_snapshots, gauge, histogram, span
from repro.obs import timeseries
from repro.obs.alerts import AlertEngine, queue_saturation_rule
from repro.serve.api.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ApiProtocolError,
    E_DRAINING,
    E_INTERNAL,
    E_OVERLOADED,
    E_UNKNOWN_WORKLOAD,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
    validate_request,
)
from repro.serve.service import Decider
from repro.workloads.cloudsuite import CLOUDSUITE, LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile
from repro.workloads.registry import get_profile

__all__ = ["ApiServer", "run_api_shards"]

#: Fallback answer embedded in an ``overloaded`` response to a ``place``
#: request: the no-co-location baseline, exactly what the admission
#: controller's shed path answers in-process.
_BASELINE_FALLBACK = {"max_safe_instances": 0, "shed": True,
                      "cached": False}


@dataclass
class _Pending:
    """One queued decision request awaiting its micro-batch."""

    op: str
    app: LatencySensitiveWorkload
    profile: WorkloadProfile
    count: int
    request_id: Any
    future: "asyncio.Future[dict[str, Any]]"


class ApiServer:
    """One TCP endpoint answering prediction/placement queries.

    The server is created idle; :meth:`start` binds the socket inside a
    running event loop, :meth:`serve_until_stopped` blocks until a drain
    completes, and :meth:`background` packages both into a thread for
    synchronous callers (tests, benchmarks, docs snippets).
    """

    def __init__(
        self,
        decider: Decider,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        queue_bound: int = 256,
        batch_window_s: float = 0.0,
        retry_after_ms: float = 50.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_requests: int | None = None,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        if queue_bound < 1:
            raise ConfigurationError(
                f"queue_bound must be >= 1, got {queue_bound}"
            )
        if batch_window_s < 0.0:
            raise ConfigurationError("batch_window_s must be >= 0")
        if retry_after_ms < 0.0:
            raise ConfigurationError("retry_after_ms must be >= 0")
        if max_requests is not None and max_requests < 1:
            raise ConfigurationError(
                f"max_requests must be >= 1, got {max_requests}"
            )
        self.decider = decider
        self.host = host
        self.port = port
        self.max_batch = max_batch
        self.queue_bound = queue_bound
        self.batch_window_s = batch_window_s
        self.retry_after_ms = retry_after_ms
        self.max_frame_bytes = max_frame_bytes
        self.max_requests = max_requests
        self._pending: deque[_Pending] = deque()
        self._writers: dict[asyncio.StreamWriter, None] = {}
        self._response_tasks: dict["asyncio.Task[None]", None] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._batcher: "asyncio.Task[None] | None" = None
        self._wake: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._address: tuple[str, int] | None = None
        self._draining = False
        self._drain_started = False
        self._in_flight = False
        self._requests = 0
        self._sheds = 0
        self._batches = 0
        self._connections = 0
        # Wall-clock telemetry: bound to the installed module-global
        # series (if any) at start(); ticks are counted so the sample
        # times land on the same interval grid in every shard worker.
        self._telemetry: timeseries.TelemetrySeries | None = None
        self._telemetry_task: "asyncio.Task[None] | None" = None
        self._telemetry_tick = 0
        self._alerts: AlertEngine | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; available after :meth:`start`."""
        if self._address is None:
            raise ReproError("ApiServer.start() has not run yet")
        return self._address

    @property
    def requests_served(self) -> int:
        """Valid requests answered so far (any op, shed included)."""
        return self._requests

    async def start(self) -> tuple[str, int]:
        """Bind the listening socket and start the batcher task."""
        if self._server is not None:
            raise ReproError("ApiServer.start() called twice")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        self._batcher = self._loop.create_task(self._batch_loop())
        self._telemetry = timeseries.active()
        if self._telemetry is not None:
            self._alerts = AlertEngine((queue_saturation_rule(),))
            self._telemetry_task = self._loop.create_task(
                self._telemetry_loop()
            )
        return self._address

    async def serve_until_stopped(self) -> None:
        """Block until a drain (shutdown op, max_requests, or explicit)."""
        if self._stopped is None:
            raise ReproError("ApiServer.start() has not run yet")
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: answer queued work, flush, then close.

        New ``place``/``predict`` requests arriving during the drain are
        answered with a ``draining`` error; everything already queued is
        decided and its response written before connections close.
        Idempotent: concurrent calls wait for the first to finish.
        """
        if self._stopped is None or self._stopped.is_set():
            return
        if self._drain_started:
            await self._stopped.wait()
            return
        self._drain_started = True
        self._draining = True
        if self._server is not None:
            self._server.close()
        while self._pending or self._in_flight:
            self._wake.set()
            await asyncio.sleep(0.002)
        while self._response_tasks:
            await asyncio.sleep(0.002)
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
        if self._telemetry_task is not None:
            self._telemetry_task.cancel()
            with suppress(asyncio.CancelledError):
                await self._telemetry_task
            # One closing frame so a short-lived server still exports
            # its totals even when it never reached a cadence boundary.
            self._telemetry_tick += 1
            self._sample_telemetry(
                self._telemetry_tick * self._telemetry.interval_s
            )
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except (OSError, ConnectionResetError):  # pragma: no cover
                pass
        self._stopped.set()

    @contextmanager
    def background(self, *, timeout_s: float = 60.0
                   ) -> Iterator[tuple[str, int]]:
        """Run the server on a dedicated thread; yield its address.

        The context body runs while the server accepts connections; on
        exit the server drains gracefully and the thread joins. This is
        the synchronous entry point used by tests, the benchmark
        harness, and the docs snippets.
        """
        ready = threading.Event()
        failures: list[BaseException] = []

        def _runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)

            async def _main() -> None:
                try:
                    await self.start()
                finally:
                    ready.set()
                await self.serve_until_stopped()

            try:
                loop.run_until_complete(_main())
            except BaseException as exc:  # surfaced to the caller below
                failures.append(exc)
                ready.set()
            finally:
                asyncio.set_event_loop(None)
                loop.close()

        thread = threading.Thread(target=_runner, daemon=True,
                                  name="smite-api-server")
        thread.start()
        if not ready.wait(timeout_s):  # pragma: no cover
            raise ReproError("ApiServer failed to start in time")
        if failures:
            raise failures[0]
        try:
            yield self.address
        finally:
            if thread.is_alive() and self._loop is not None:
                future = asyncio.run_coroutine_threadsafe(
                    self.drain(), self._loop,
                )
                future.result(timeout=timeout_s)
            thread.join(timeout_s)
            if failures:  # pragma: no cover
                raise failures[0]

    # -- connection handling -------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    message: dict[str, Any]) -> None:
        """Write one response frame, tolerating a vanished client."""
        if writer.is_closing():
            return
        try:
            # Responses are server-controlled and small; never let a
            # tightened request-side frame limit stop an error response
            # (e.g. the frame_too_large answer itself) from going out.
            limit = max(self.max_frame_bytes, MAX_FRAME_BYTES)
            writer.write(encode_frame(message, max_frame_bytes=limit))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        counter("serve.api.connections").inc()
        self._connections += 1
        self._writers[writer] = None
        try:
            while True:
                try:
                    message = await read_frame(
                        reader, max_frame_bytes=self.max_frame_bytes,
                    )
                except ApiProtocolError as exc:
                    counter("serve.api.protocol_errors").inc()
                    await self._send(
                        writer, error_response(None, exc.code, str(exc)),
                    )
                    break  # framing broke; the stream is unusable
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break  # clean or mid-frame disconnect
                await self._handle_message(writer, message)
        finally:
            self._writers.pop(writer, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_message(self, writer: asyncio.StreamWriter,
                              message: dict[str, Any]) -> None:
        raw_id = message.get("id")
        request_id = raw_id if isinstance(raw_id, (str, int)) else None
        try:
            op, fields = validate_request(message)
        except ApiProtocolError as exc:
            counter("serve.api.protocol_errors").inc()
            await self._send(
                writer, error_response(request_id, exc.code, str(exc)),
            )
            return
        counter("serve.api.requests").inc()
        self._requests += 1
        if op == "ping":
            await self._send(writer, ok_response(
                request_id, {"pong": True, "protocol": PROTOCOL_VERSION},
            ))
        elif op == "stats":
            await self._send(writer, ok_response(request_id, self._stats()))
        elif op == "metrics":
            await self._send(writer, ok_response(request_id,
                                                 self._metrics()))
        elif op == "shutdown":
            await self._send(writer, ok_response(request_id,
                                                 {"stopping": True}))
            self._begin_drain()
        else:
            await self._enqueue(writer, op, fields, request_id)
        if self.max_requests is not None \
                and self._requests >= self.max_requests:
            self._begin_drain()

    def _begin_drain(self) -> None:
        if not self._drain_started and self._loop is not None:
            # Flip the flag synchronously so a request pipelined right
            # behind the one that triggered the drain is already
            # rejected, even before the drain task gets scheduled.
            self._draining = True
            self._loop.create_task(self.drain())

    def _resolve(
        self, app_name: str, batch_name: str,
    ) -> tuple[LatencySensitiveWorkload, WorkloadProfile]:
        app = CLOUDSUITE.get(app_name)
        if app is None:
            raise ApiProtocolError(
                E_UNKNOWN_WORKLOAD,
                f"unknown latency app {app_name!r}; "
                f"known: {', '.join(CLOUDSUITE)}",
            )
        try:
            profile = get_profile(batch_name)
        except ReproError:
            raise ApiProtocolError(
                E_UNKNOWN_WORKLOAD,
                f"unknown batch workload {batch_name!r}",
            ) from None
        return app, profile

    async def _enqueue(self, writer: asyncio.StreamWriter, op: str,
                       fields: dict[str, Any], request_id: Any) -> None:
        if self._draining:
            await self._send(writer, error_response(
                request_id, E_DRAINING,
                "server is draining; no new work accepted",
            ))
            return
        try:
            app, profile = self._resolve(fields["latency_app"],
                                         fields["batch"])
        except ApiProtocolError as exc:
            await self._send(
                writer, error_response(request_id, exc.code, str(exc)),
            )
            return
        if len(self._pending) >= self.queue_bound:
            counter("serve.api.sheds").inc()
            self._sheds += 1
            fallback = dict(_BASELINE_FALLBACK) if op == "place" else None
            await self._send(writer, error_response(
                request_id, E_OVERLOADED,
                f"decision queue is full ({self.queue_bound} pending); "
                "retry after the hint or fall back to the baseline",
                retry_after_ms=self.retry_after_ms, result=fallback,
            ))
            return
        count = fields["max_instances"] if op == "place" \
            else fields["instances"]
        future: "asyncio.Future[dict[str, Any]]" = self._loop.create_future()
        self._pending.append(
            _Pending(op, app, profile, count, request_id, future)
        )
        self._wake.set()
        task = self._loop.create_task(self._respond_later(writer, future))
        self._response_tasks[task] = None
        task.add_done_callback(
            lambda done: self._response_tasks.pop(done, None)
        )

    async def _respond_later(self, writer: asyncio.StreamWriter,
                             future: "asyncio.Future[dict[str, Any]]"
                             ) -> None:
        await self._send(writer, await future)

    # -- micro-batching ------------------------------------------------

    async def _batch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self.batch_window_s > 0.0:
                # Linger briefly so a burst in flight coalesces into one
                # batch instead of racing the first arrival.
                await asyncio.sleep(self.batch_window_s)
            while self._pending:
                depth = len(self._pending)
                gauge("serve.api.queue_depth").set(depth)
                take = min(self.max_batch, depth)
                items = [self._pending.popleft() for _ in range(take)]
                self._in_flight = True
                try:
                    with span("serve.api.batch"):
                        # Decide off the loop: begin_epoch can miss the
                        # LRU and fall through to the disk cache, and a
                        # cold solve would stall every open connection.
                        await self._loop.run_in_executor(
                            None, self._run_batch, items)
                finally:
                    self._in_flight = False
                counter("serve.api.batches").inc()
                self._batches += 1
                histogram("serve.api.batch_occupancy").record(take)
                # Yield so connection readers can enqueue the next burst
                # and response writers can flush.
                await asyncio.sleep(0)

    def _run_batch(self, items: list[_Pending]) -> None:
        """Decide one micro-batch through the epoch-prefetch path."""
        candidates = [(item.app, item.profile, item.count)
                      for item in items]
        try:
            self.decider.begin_epoch(candidates)
        except Exception as exc:  # pragma: no cover - defensive
            for item in items:
                if not item.future.done():
                    item.future.set_result(error_response(
                        item.request_id, E_INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    ))
            return
        for item in items:
            try:
                if item.op == "place":
                    decision = self.decider.decide(
                        item.app, item.profile, max_instances=item.count,
                    )
                    result: dict[str, Any] = {
                        "max_safe_instances":
                            int(decision.max_safe_instances),
                        "shed": bool(decision.shed),
                        "cached": bool(decision.cached),
                    }
                else:
                    predicted = self.decider.predicted_degradation(
                        item.app, item.profile, item.count,
                    )
                    result = {
                        "predicted_degradation":
                            None if predicted is None else float(predicted),
                    }
                response = ok_response(item.request_id, result)
            except Exception as exc:
                response = error_response(
                    item.request_id, E_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                )
            if not item.future.done():
                item.future.set_result(response)

    # -- wall-clock telemetry ------------------------------------------

    async def _telemetry_loop(self) -> None:
        """Sample the telemetry series once per interval (wall clock).

        Sample times are ``tick * interval_s`` rather than raw clock
        readings so frames from concurrently started shard workers land
        on the same grid and fold into one merged frame per tick.
        """
        interval = self._telemetry.interval_s
        while True:
            await asyncio.sleep(interval)
            self._telemetry_tick += 1
            self._sample_telemetry(self._telemetry_tick * interval)

    def _live_channels(self) -> tuple[dict[str, float], dict[str, float]]:
        depth = float(len(self._pending))
        return (
            {
                "serve.api.requests": float(self._requests),
                "serve.api.sheds": float(self._sheds),
                "serve.api.batches": float(self._batches),
            },
            {"serve.api.queue_depth": depth},
        )

    def _sample_telemetry(self, time_s: float) -> None:
        series = self._telemetry
        if series is None:
            return
        counters, gauges = self._live_channels()
        depth = gauges["serve.api.queue_depth"]
        gauge("serve.api.queue_depth").set(depth)
        states = None
        if self._alerts is not None:
            self._alerts.observe_window(
                time_s, {"queue_saturation": depth / self.queue_bound},
            )
            states = self._alerts.states()
        series.sample(
            time_s, counters=counters, gauges=gauges, alerts=states,
        )

    def _metrics(self) -> dict[str, Any]:
        """The ``metrics`` op: the live frame plus the recent series.

        ``frame`` is a fresh :meth:`TelemetrySeries.peek` over the
        current request/queue state (stamped with the last cadence
        boundary); ``frames`` is the recorded tail, so a poller can
        render sparklines without tailing the JSONL export.
        """
        series = self._telemetry
        if series is None:
            return {"enabled": False, "frame": None, "frames": []}
        counters, gauges = self._live_channels()
        frame = series.peek(
            self._telemetry_tick * series.interval_s,
            counters=counters, gauges=gauges,
            alerts=self._alerts.states() if self._alerts else None,
        )
        return {
            "enabled": True,
            "interval_s": series.interval_s,
            "frame": frame,
            "frames": series.tail(32),
        }

    def _stats(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "policy": getattr(self.decider, "name", "decider"),
            "requests": self._requests,
            "sheds": self._sheds,
            "batches": self._batches,
            "queue_depth": len(self._pending),
            "queue_bound": self.queue_bound,
            "max_batch": self.max_batch,
            "connections": self._connections,
            "draining": self._draining,
            # Hot-swap surface (repro.adapt): which coefficient set is
            # serving. Deciders without the surface report the static
            # version 0.
            "model_version": getattr(self.decider, "model_version", 0),
            "model_hash": getattr(self.decider, "model_hash", None),
            "last_swap_epoch_s": getattr(
                self.decider, "last_swap_epoch_s", None,
            ),
        }


def _api_shard_worker(decider: Decider, host: str, conn,
                      options: dict[str, Any]) -> None:
    """Serve one shard in a worker process, shipping obs back on exit.

    The forked child inherits the parent's (fitted) decider and metric
    registry; it resets the registry first so the snapshot it ships back
    holds exactly this worker's serving metrics.

    When the parent had a telemetry sampler installed, the worker
    installs its own (same cadence) and streams ``("frame", ...)``
    messages once per interval while serving: each carries the registry
    delta since the previous frame plus the worker's freshly recorded
    telemetry frames, so the parent's registry and series track the
    fleet live instead of only at drain. The deltas sum to the worker's
    whole-run snapshot, so streaming never changes the folded totals.
    """
    obs.reset()
    inherited = timeseries.uninstall()
    series = None
    if inherited is not None:
        series = timeseries.install(inherited.interval_s,
                                    inherited.capacity)
    server = ApiServer(decider, host=host, port=0, **options)
    state = {"last": obs.snapshot()}

    async def _stream_loop() -> None:
        while True:
            await asyncio.sleep(series.interval_s)
            current = obs.snapshot()
            conn.send(("frame", {
                "obs": diff_snapshots(state["last"], current),
                "telemetry": series.drain_new(),
            }))
            state["last"] = current

    async def _main() -> None:
        bound = await server.start()
        conn.send(("ready", [bound[0], bound[1]]))
        streamer = None
        if series is not None:
            streamer = asyncio.create_task(_stream_loop())
        try:
            await server.serve_until_stopped()
        finally:
            if streamer is not None:
                streamer.cancel()
                with suppress(asyncio.CancelledError):
                    await streamer

    asyncio.run(_main())
    done: dict[str, Any] = {"requests": server.requests_served}
    if series is not None:
        done["obs"] = diff_snapshots(state["last"], obs.snapshot())
        done["telemetry"] = series.drain_new()
    else:
        done["obs"] = obs.snapshot()
    conn.send(("done", done))
    conn.close()


def run_api_shards(
    decider: Decider,
    *,
    shards: int,
    jobs: int | None = None,
    host: str = "127.0.0.1",
    ready_callback: Callable[[list[tuple[str, int]]], None] | None = None,
    **server_options: Any,
) -> list[dict[str, Any]]:
    """Serve the API from ``shards`` worker processes until they drain.

    Each worker runs its own :class:`ApiServer` on an ephemeral port
    (reported through ``ready_callback`` once all workers listen) with
    its own obs registry; a worker exits when it receives a ``shutdown``
    request or reaches ``max_requests``. Worker metric snapshots are
    folded back into the parent registry via :func:`repro.obs.merge`,
    exactly like the replay engine's placement shards. ``jobs`` caps the
    worker count (the servers are all concurrent, so the cap simply
    lowers ``shards``).

    Returns one summary dict per worker: host, port, requests served.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if jobs is not None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        shards = min(shards, jobs)
    workers = []
    try:
        for _ in range(shards):
            parent_conn, child_conn = multiprocessing.Pipe()
            try:
                process = multiprocessing.Process(
                    target=_api_shard_worker,
                    args=(decider, host, child_conn, dict(server_options)),
                    daemon=True,
                )
                process.start()
                workers.append((process, parent_conn))
            finally:
                # The worker dup'ed its end on start; the parent's copy
                # must close or the pipe never reports EOF — including
                # when start() itself fails.
                child_conn.close()
        addresses: list[tuple[str, int]] = []
        for _process, parent_conn in workers:
            kind, payload = parent_conn.recv()
            if kind != "ready":  # pragma: no cover - defensive
                raise ReproError(
                    f"api shard worker sent {kind!r} before ready")
            addresses.append((payload[0], payload[1]))
        counter("serve.api.shard_workers").inc(len(workers))
        if ready_callback is not None:
            ready_callback(list(addresses))
        parent_series = timeseries.active()
        summaries: list[dict[str, Any] | None] = [None] * len(workers)
        index_of = {parent_conn: k
                    for k, (_process, parent_conn) in enumerate(workers)}
        pending = list(index_of)
        while pending:
            for parent_conn in _pipe_wait(pending):
                k = index_of[parent_conn]
                process = workers[k][0]
                bound_host, port = addresses[k]
                try:
                    kind, payload = parent_conn.recv()
                except EOFError:  # pragma: no cover - crashed worker
                    process.join()
                    summaries[k] = {"host": bound_host, "port": port,
                                    "requests": None}
                    pending.remove(parent_conn)
                    continue
                if kind == "frame":
                    obs.merge(payload["obs"])
                    counter("serve.telemetry.frames").inc()
                    if parent_series is not None:
                        parent_series.merge(
                            {"frames": payload["telemetry"]}
                        )
                    continue
                with span("serve.api.shard_merge"):
                    obs.merge(payload["obs"])
                if parent_series is not None \
                        and payload.get("telemetry"):
                    parent_series.merge({"frames": payload["telemetry"]})
                summaries[k] = {"host": bound_host, "port": port,
                                "requests": payload["requests"]}
                pending.remove(parent_conn)
                process.join()
        return summaries
    finally:
        for _process, parent_conn in workers:
            parent_conn.close()
