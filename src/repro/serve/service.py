"""The online prediction service: LRU-fronted SMiTe with admission control.

:class:`PredictionService` is the serving-side face of the
:class:`~repro.core.predictor.SMiTe` predictor. Three layers keep a
replayed day of traffic cheap:

1. an in-memory **LRU** keyed on ``(latency app, batch profile,
   max instances)`` sits in front of the predictor (and therefore in
   front of the persistent ``smt.diskcache``) — a warm day of traffic
   re-asks the same few hundred questions;
2. **request micro-batching** — at each event epoch the engine announces
   the epoch's decision candidates up front, and every simulator solve a
   cache miss will need (batch Ruler co-runs, per-count server
   characterizations) is pushed through :meth:`Simulator.prefetch` as one
   batched fixed point;
3. **admission control** — each epoch has a simulated decision-latency
   budget; once the epoch's accumulated decision cost would exceed it,
   further arrivals are *shed* to the no-co-location baseline
   (graceful degradation, the :class:`NoColocationPolicy` answer).

Decision latency is charged from a deterministic cost model over the
simulated clock (a cache hit costs ``hit_cost_ms``, a miss
``miss_cost_ms``) — never from a wall clock, so replays stay
byte-identical.

:class:`RandomDecider` and :class:`BaselineDecider` implement the same
:class:`Decider` interface, giving the engine interchangeable policies
for the online SMiTe / Random / NoColocation comparison.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.predictor import SMiTe
from repro.core.tail import TailLatencyModel
from repro.errors import ConfigurationError, SchedulingError
from repro.obs import counter
from repro.scheduler.qos import QosMetric, QosTarget
from repro.smt.simulator import ContextPlacement
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = [
    "AdmissionControl",
    "BaselineDecider",
    "CandidateBatch",
    "CandidateStream",
    "Decider",
    "Decision",
    "DecisionBatch",
    "PredictionService",
    "RandomDecider",
]

#: One placement question: which latency service pool the job was routed
#: to, what it wants to run, and how many sibling contexts exist.
Candidate = tuple[LatencySensitiveWorkload, WorkloadProfile, int]


class CandidateBatch(Sequence):
    """One epoch's decision candidates, stored struct-of-arrays.

    Holds integer index columns into small ``apps`` / ``pool`` name
    tables instead of one tuple per arrival. It is also a ``Sequence``
    of plain :data:`Candidate` tuples, so deciders that only implement
    the per-arrival interface consume it unchanged.
    """

    __slots__ = ("apps", "pool", "app_idx", "profile_idx",
                 "max_instances", "_pair_id", "key_table", "pairs")

    def __init__(
        self,
        apps: Sequence[LatencySensitiveWorkload],
        pool: Sequence[WorkloadProfile],
        app_idx: np.ndarray,
        profile_idx: np.ndarray,
        max_instances: int,
        key_table: Sequence[tuple[str, str, int]] | None = None,
        pairs: tuple[
            list[int], list[int], list[int], list[tuple[str, str, int]]
        ] | None = None,
    ) -> None:
        self.apps = tuple(apps)
        self.pool = tuple(pool)
        self.app_idx = app_idx
        self.profile_idx = profile_idx
        self.max_instances = max_instances
        self._pair_id: np.ndarray | None = None
        #: Optional pre-built ``pair_id -> LRU key`` row-major table,
        #: shared across the epochs of one replay so per-epoch batches
        #: stop rebuilding identical key tuples.
        self.key_table = key_table
        #: Optional precomputed unique-pair classification
        #: ``(uids, inv, firsts, keys)`` — the vectorized engine derives
        #: it for all epochs in one pass (see
        #: :meth:`PredictionService._classify` for the contract).
        self.pairs = pairs

    @property
    def pair_id(self) -> np.ndarray:
        """Dense code for each candidate's (app, profile) pairing — the
        unit of LRU identity within an epoch (``max_instances`` is
        uniform across a batch). Computed lazily: batches carrying a
        precomputed ``pairs`` classification never need it."""
        pair_id = self._pair_id
        if pair_id is None:
            pair_id = self.app_idx * len(self.pool) + self.profile_idx
            self._pair_id = pair_id
        return pair_id

    def __len__(self) -> int:
        return int(self.app_idx.size)

    def __getitem__(self, index: int) -> Candidate:
        return (
            self.apps[int(self.app_idx[index])],
            self.pool[int(self.profile_idx[index])],
            self.max_instances,
        )

    def candidate_for_pair(self, pair_id: int) -> Candidate:
        """The :data:`Candidate` tuple behind one dense pair code."""
        return (
            self.apps[pair_id // len(self.pool)],
            self.pool[pair_id % len(self.pool)],
            self.max_instances,
        )

    def key_for_pair(self, pair_id: int) -> tuple[str, str, int]:
        """The LRU key (app name, profile name, max) for one pair code."""
        if self.key_table is not None:
            return self.key_table[pair_id]
        return (
            self.apps[pair_id // len(self.pool)].name,
            self.pool[pair_id % len(self.pool)].name,
            self.max_instances,
        )


class CandidateStream:
    """A whole replay's candidates, epoch-partitioned and columnar.

    The vectorized engine classifies every epoch's unique (app, profile)
    pairs in one numpy pass and hands the full stream to
    :meth:`Decider.decide_stream`; per-epoch :class:`CandidateBatch`
    views are sliced out on demand by :meth:`batch`. ``uid_pair`` holds
    each epoch's unique pair codes back to back (epoch ``e`` owns
    ``uid_pair[uid_offs[e]:uid_offs[e + 1]]``), while ``inv`` and
    ``firsts`` are epoch-local, matching the ``pairs`` contract of
    :meth:`PredictionService._classify`.
    """

    __slots__ = ("apps", "pool", "app_idx", "profile_idx", "pair_id",
                 "max_instances", "key_table", "epoch_starts",
                 "uid_offs", "uid_pair", "inv", "firsts")

    def __init__(
        self,
        apps: Sequence[LatencySensitiveWorkload],
        pool: Sequence[WorkloadProfile],
        app_idx: np.ndarray,
        profile_idx: np.ndarray,
        pair_id: np.ndarray,
        max_instances: int,
        key_table: Sequence[tuple[str, str, int]],
        epoch_starts: list[int],
        uid_offs: list[int],
        uid_pair: list[int],
        inv: list[int],
        firsts: list[int],
    ) -> None:
        self.apps = tuple(apps)
        self.pool = tuple(pool)
        self.app_idx = app_idx
        self.profile_idx = profile_idx
        self.pair_id = pair_id
        self.max_instances = max_instances
        self.key_table = key_table
        self.epoch_starts = epoch_starts
        self.uid_offs = uid_offs
        self.uid_pair = uid_pair
        self.inv = inv
        self.firsts = firsts

    def __len__(self) -> int:
        return int(self.app_idx.size)

    @property
    def n_epochs(self) -> int:
        return len(self.epoch_starts) - 1

    def batch(self, epoch: int) -> CandidateBatch:
        """The :class:`CandidateBatch` view of one epoch's arrivals."""
        s0, s1 = self.epoch_starts[epoch], self.epoch_starts[epoch + 1]
        u0, u1 = self.uid_offs[epoch], self.uid_offs[epoch + 1]
        uids = self.uid_pair[u0:u1]
        return CandidateBatch(
            self.apps, self.pool,
            self.app_idx[s0:s1], self.profile_idx[s0:s1],
            self.max_instances, key_table=self.key_table,
            pairs=(
                uids, self.inv[s0:s1], self.firsts[u0:u1],
                [self.key_table[u] for u in uids],
            ),
        )


@dataclass(frozen=True)
class DecisionBatch:
    """One epoch's decisions, one array per :class:`Decision` field.

    Row ``i`` answers candidate ``i`` of the batch, exactly as a
    sequential loop of :meth:`Decider.decide` calls would have.
    """

    max_safe_instances: np.ndarray
    shed: np.ndarray
    cached: np.ndarray


@dataclass(frozen=True)
class Decision:
    """The service's answer for one arrival.

    ``max_safe_instances`` is the largest batch-instance count the policy
    calls safe for this (latency app, batch profile) pairing; ``shed``
    marks arrivals the admission controller refused to decide (they fall
    back to the no-co-location baseline); ``cached`` records whether the
    answer came from the in-memory LRU.
    """

    max_safe_instances: int
    shed: bool = False
    cached: bool = False


class Decider(ABC):
    """Online placement policy: one :class:`Decision` per arrival.

    The engine calls :meth:`begin_epoch` once per event epoch with the
    epoch's candidates (in arrival order), then :meth:`decide` exactly
    once per arrival, in the same order. Accounting is shared: every
    ``decide`` increments ``serve.service.requests`` and exactly one of
    ``serve.service.decisions`` / ``serve.service.sheds``, so
    ``sheds + decisions == arrivals`` holds for any decider.
    """

    name: str = "decider"

    def begin_epoch(self, candidates: Sequence[Candidate]) -> None:
        """Announce the epoch's decision candidates (micro-batch hook)."""

    def begin_epoch_batch(self, batch: CandidateBatch) -> None:
        """Columnar :meth:`begin_epoch`. Default: the object path.

        ``CandidateBatch`` is itself a sequence of candidates, so
        deciders that only implement :meth:`begin_epoch` keep working;
        vectorizing deciders override this to skip tuple materialization.
        """
        self.begin_epoch(batch)

    def decide_batch(self, batch: CandidateBatch) -> DecisionBatch:
        """Decide one epoch's arrivals in order, columnar in and out.

        Must be decision-for-decision and counter-for-counter equivalent
        to calling :meth:`decide` on each candidate in sequence — the
        vectorized engine relies on that equivalence for byte-identical
        replays. The default implementation *is* that sequential loop.
        """
        n = len(batch)
        counts = np.zeros(n, dtype=np.int64)
        shed = np.zeros(n, dtype=bool)
        cached = np.zeros(n, dtype=bool)
        for i in range(n):
            latency_app, batch_profile, max_instances = batch[i]
            decision = self.decide(latency_app, batch_profile,
                                   max_instances=max_instances)
            counts[i] = decision.max_safe_instances
            shed[i] = decision.shed
            cached[i] = decision.cached
        return DecisionBatch(max_safe_instances=counts, shed=shed,
                             cached=cached)

    def decide_stream(
        self, stream: CandidateStream
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decide a whole replay's arrivals, returning (counts, shed).

        Must be decision-for-decision equivalent to looping
        :meth:`begin_epoch_batch` / :meth:`decide_batch` over the
        stream's epochs in order — which is exactly what this default
        does. Deciders with cross-epoch structure to exploit (see
        :meth:`PredictionService.decide_stream`) override it.
        """
        n = len(stream)
        counts = np.zeros(n, dtype=np.int64)
        shed = np.zeros(n, dtype=bool)
        starts = stream.epoch_starts
        for e in range(stream.n_epochs):
            batch = stream.batch(e)
            self.begin_epoch_batch(batch)
            decisions = self.decide_batch(batch)
            s0, s1 = starts[e], starts[e + 1]
            counts[s0:s1] = decisions.max_safe_instances
            shed[s0:s1] = decisions.shed
        return counts, shed

    def predicted_degradation(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        instances: int,
    ) -> float | None:
        """The degradation this policy predicted for a placement, if any.

        Interference-oblivious policies return None; the engine's
        prediction audit then has nothing to compare, so Random and
        NoColocation replays carry no audit section.
        """
        return None

    def decide(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        *,
        max_instances: int,
    ) -> Decision:
        """Decide one arrival, with shared request/shed/decision counts."""
        counter("serve.service.requests").inc()
        decision = self._decide(latency_app, batch_profile,
                                max_instances=max_instances)
        if decision.shed:
            counter("serve.service.sheds").inc()
        else:
            counter("serve.service.decisions").inc()
        return decision

    @abstractmethod
    def _decide(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        *,
        max_instances: int,
    ) -> Decision:
        """Policy-specific decision (no accounting)."""


class BaselineDecider(Decider):
    """The no-co-location baseline: every sibling context stays idle."""

    name = "baseline"

    def _decide(self, latency_app, batch_profile, *, max_instances):
        return Decision(max_safe_instances=0, cached=True)

    def decide_batch(self, batch: CandidateBatch) -> DecisionBatch:
        """Vectorized: everything goes to the baseline pool."""
        n = len(batch)
        counter("serve.service.requests").inc(n)
        counter("serve.service.decisions").inc(n)
        return DecisionBatch(
            max_safe_instances=np.zeros(n, dtype=np.int64),
            shed=np.zeros(n, dtype=bool),
            cached=np.ones(n, dtype=bool),
        )


class RandomDecider(Decider):
    """Interference-oblivious: a seeded uniform draw over 0..max."""

    name = "random"

    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def _decide(self, latency_app, batch_profile, *, max_instances):
        count = int(self._rng.integers(0, max_instances + 1))
        return Decision(max_safe_instances=count, cached=True)

    def decide_batch(self, batch: CandidateBatch) -> DecisionBatch:
        """Vectorized draw; the PCG64 stream is chunk-size invariant, so
        one ``size=n`` call consumes exactly the draws ``n`` sequential
        :meth:`decide` calls would have."""
        n = len(batch)
        counter("serve.service.requests").inc(n)
        counter("serve.service.decisions").inc(n)
        counts = self._rng.integers(
            0, batch.max_instances + 1, size=n,
        ).astype(np.int64)
        return DecisionBatch(
            max_safe_instances=counts,
            shed=np.zeros(n, dtype=bool),
            cached=np.ones(n, dtype=bool),
        )


@dataclass(frozen=True)
class AdmissionControl:
    """Deterministic per-epoch decision-latency budget.

    Costs are *simulated* milliseconds of decision latency, charged
    against ``budget_ms_per_epoch`` in arrival order; they model the
    serving-path cost asymmetry (an LRU hit is ~instant, a miss pays
    characterization solves) without ever reading a wall clock.
    """

    budget_ms_per_epoch: float = 50.0
    hit_cost_ms: float = 0.05
    miss_cost_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.budget_ms_per_epoch <= 0.0:
            raise ConfigurationError("admission budget must be positive")
        if not 0.0 <= self.hit_cost_ms <= self.miss_cost_ms:
            raise ConfigurationError(
                "admission costs need 0 <= hit_cost_ms <= miss_cost_ms"
            )


class PredictionService(Decider):
    """SMiTe behind an LRU, micro-batched prefetch, and admission control."""

    name = "smite"

    def __init__(
        self,
        predictor: SMiTe,
        target: QosTarget,
        *,
        tail_models: dict[str, TailLatencyModel] | None = None,
        admission: AdmissionControl | None = None,
        lru_capacity: int = 512,
    ) -> None:
        if not predictor.model.is_fitted:
            raise SchedulingError("PredictionService needs a fitted predictor")
        if lru_capacity < 1:
            raise ConfigurationError(
                f"LRU capacity must be >= 1, got {lru_capacity}"
            )
        if (target.metric is QosMetric.TAIL_LATENCY and not tail_models):
            raise SchedulingError(
                "tail-latency QoS targets need per-app tail models"
            )
        self.predictor = predictor
        self.target = target
        self.admission = admission if admission is not None else AdmissionControl()
        self._tail_models = dict(tail_models) if tail_models else {}
        self._lru: OrderedDict[tuple[str, str, int], int] = OrderedDict()
        self._lru_capacity = lru_capacity
        # Unbounded memo of predict_server results, keyed (app, batch,
        # instances). The key space is the LRU key space's closure over
        # instance counts — a few hundred entries on a warm day — and the
        # prediction audit reads it long after an LRU entry may have
        # been evicted.
        self._predicted: dict[tuple[str, str, int], float] = {}
        self._epoch_remaining_ms = self.admission.budget_ms_per_epoch
        # Profiles whose simulator solves have already been prefetched
        # (dicts used as ordered sets; lint-safe iteration).
        self._warmed_batch: dict[str, None] = {}
        self._warmed_server: dict[tuple[str, int], None] = {}
        self._warmed_rulers = False
        # Per-epoch unique-pair classification memo (see _classify) and
        # the LRU-count walk begin_epoch_batch shares with decide_batch.
        self._epoch_batch: CandidateBatch | None = None
        self._epoch_class: tuple[
            list[int], list[int], list[int], list[tuple[str, str, int]]
        ] | None = None
        self._epoch_counts_batch: CandidateBatch | None = None
        self._epoch_counts: list[int | None] = []
        # Hot-swappable coefficient override (repro.adapt): any object
        # duck-typing SMiTe.predict_server. None serves the static
        # offline-trained predictor.
        self._override = None
        #: Monotone version of the serving coefficients; 0 = the static
        #: model the service was constructed with.
        self.model_version = 0
        self.model_hash: str | None = None
        #: Simulated time of the last hot-swap (None before any swap).
        self.last_swap_epoch_s: float | None = None

    # ------------------------------------------------------------------

    @property
    def cache_len(self) -> int:
        """Number of decisions currently held in the LRU."""
        return len(self._lru)

    @property
    def model_override(self):
        """The live coefficient override, or None when serving static."""
        return self._override

    def set_model_override(
        self,
        override,
        *,
        version: int,
        model_hash: str | None = None,
        epoch_s: float | None = None,
    ) -> int:
        """Atomically swap the serving coefficients (hot-swap entry point).

        ``override`` is any object duck-typing ``SMiTe.predict_server``
        (see :class:`repro.adapt.swap.AdaptedModel`), or None to shed
        back to the static predictor. Invalidates exactly the
        prediction-derived caches — the decision LRU and the prediction
        memo — and returns how many entries that dropped. Ground-truth
        stores (the simulator memo, ``smt.diskcache``) hold measured
        degradations independent of regression coefficients, so a swap
        leaves them untouched.
        """
        invalidated = len(self._lru) + len(self._predicted)
        self._override = override
        self.model_version = version
        self.model_hash = model_hash
        self.last_swap_epoch_s = epoch_s
        self._lru.clear()
        self._predicted.clear()
        # Any in-flight epoch memo of LRU counts is stale now; swaps
        # land on epoch boundaries, but drop it defensively regardless.
        self._epoch_counts_batch = None
        counter("serve.adapt.invalidations").inc(invalidated)
        return invalidated

    def _key(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        max_instances: int,
    ) -> tuple[str, str, int]:
        return (latency_app.name, batch_profile.name, max_instances)

    def _tail_model(
        self, latency_app: LatencySensitiveWorkload
    ) -> TailLatencyModel | None:
        if self.target.metric is not QosMetric.TAIL_LATENCY:
            return None
        model = self._tail_models.get(latency_app.name)
        if model is None:
            raise SchedulingError(f"no tail model for {latency_app.name}")
        return model

    # ------------------------------------------------------------------

    def begin_epoch(self, candidates: Sequence[Candidate]) -> None:
        """Reset the epoch budget and prefetch the affordable misses.

        Walks the candidates in arrival order, charging the same
        deterministic cost model :meth:`decide` will charge; every miss
        that fits the budget has its simulator solves (batch Ruler
        co-runs, per-count server characterizations) pushed through one
        batched :meth:`Simulator.prefetch` before any decision runs.
        """
        self._epoch_remaining_ms = self.admission.budget_ms_per_epoch
        planned = self._epoch_remaining_ms
        affordable_misses: list[Candidate] = []
        seen_this_epoch: dict[tuple[str, str, int], None] = {}
        for latency_app, batch_profile, max_instances in candidates:
            key = self._key(latency_app, batch_profile, max_instances)
            is_hit = key in self._lru or key in seen_this_epoch
            cost = (self.admission.hit_cost_ms if is_hit
                    else self.admission.miss_cost_ms)
            if planned < cost:
                break
            planned -= cost
            if not is_hit:
                seen_this_epoch[key] = None
                affordable_misses.append(
                    (latency_app, batch_profile, max_instances)
                )
        if affordable_misses:
            self._prefetch(affordable_misses)

    def _classify(
        self, batch: CandidateBatch
    ) -> tuple[list[int], list[int], list[int], list[tuple[str, str, int]]]:
        """Unique-pair view of one epoch's batch, shared across methods.

        Returns ``(uids, inv, firsts, keys)``: the unique pair codes,
        the per-position index into them, each unique pair's first
        position, and each pair's LRU key. The order of the unique pairs
        is an implementation detail no output depends on — decisions,
        counters, and the final LRU order are all functions of the
        per-position view. Batches carrying a precomputed ``pairs``
        classification (the vectorized engine derives it for all epochs
        in one numpy pass) short-circuit; otherwise the result is
        memoized per batch object, so :meth:`begin_epoch_batch` and
        :meth:`decide_batch` compute it once between them.
        """
        if batch.pairs is not None:
            return batch.pairs
        if self._epoch_batch is batch:
            return self._epoch_class
        index: dict[int, int] = {}
        uids: list[int] = []
        inv: list[int] = []
        firsts: list[int] = []
        for i, u in enumerate(batch.pair_id.tolist()):
            j = index.get(u)
            if j is None:
                j = len(uids)
                index[u] = j
                uids.append(u)
                firsts.append(i)
            inv.append(j)
        keys = [batch.key_for_pair(u) for u in uids]
        self._epoch_batch = batch
        self._epoch_class = (uids, inv, firsts, keys)
        return self._epoch_class

    def begin_epoch_batch(self, batch: CandidateBatch) -> None:
        """Columnar :meth:`begin_epoch`: reset the budget, prefetch misses.

        In the steady state every unique pair of the epoch is already in
        the LRU, so there is nothing to prefetch and the budget reset is
        all that happens. Epochs that do carry misses replay the exact
        object path, which charges the same arrival-ordered cost model
        as :meth:`decide` to find the affordable prefix.
        """
        self._epoch_remaining_ms = self.admission.budget_ms_per_epoch
        if len(batch) == 0:
            return
        _uids, _inv, _firsts, keys = self._classify(batch)
        lru = self._lru
        uid_counts = [lru.get(k) for k in keys]
        # Prefetching never touches the LRU, so the walk stays valid for
        # this batch's decide_batch call.
        self._epoch_counts_batch = batch
        self._epoch_counts = uid_counts
        if None not in uid_counts:
            return
        self.begin_epoch(batch)

    def _prefetch(self, misses: Iterable[Candidate]) -> None:
        """Batch every solve the epoch's affordable misses will need."""
        simulator = self.predictor.simulator
        suite = self.predictor.suite
        rulers = [suite[dimension].profile for dimension in suite]
        jobs: list[list[ContextPlacement]] = []
        if not self._warmed_rulers:
            # One-time: Ruler solos and Ruler x Ruler pairs behind the
            # predictor's server-calibration anchor.
            jobs.extend([ContextPlacement(r, core=0)] for r in rulers)
            jobs.extend(
                [ContextPlacement(a, core=0), ContextPlacement(b, core=0)]
                for a in rulers
                for b in rulers
            )
            self._warmed_rulers = True
        for latency_app, batch_profile, max_instances in misses:
            if batch_profile.name not in self._warmed_batch:
                self._warmed_batch[batch_profile.name] = None
                jobs.append([ContextPlacement(batch_profile, core=0)])
                jobs.extend(
                    [ContextPlacement(batch_profile, core=0),
                     ContextPlacement(ruler, core=0)]
                    for ruler in rulers
                )
            if (latency_app.name, 0) not in self._warmed_server:
                # The app's own pair characterization (count 0 stands for
                # the pairwise fallback used when no server models exist).
                self._warmed_server[(latency_app.name, 0)] = None
                jobs.append([ContextPlacement(latency_app.profile, core=0)])
                jobs.extend(
                    [ContextPlacement(latency_app.profile, core=0),
                     ContextPlacement(ruler, core=0)]
                    for ruler in rulers
                )
            for count in range(1, max_instances + 1):
                server_key = (latency_app.name, count)
                if server_key in self._warmed_server:
                    continue
                self._warmed_server[server_key] = None
                jobs.extend(
                    simulator.server_placements(
                        latency_app.profile, ruler, instances=count,
                    )
                    for ruler in rulers
                )
        if jobs:
            simulator.prefetch(jobs)

    # ------------------------------------------------------------------

    def _decide(self, latency_app, batch_profile, *, max_instances):
        key = self._key(latency_app, batch_profile, max_instances)
        cached_count = self._lru.get(key)
        cost = (self.admission.hit_cost_ms if cached_count is not None
                else self.admission.miss_cost_ms)
        if self._epoch_remaining_ms < cost:
            return Decision(max_safe_instances=0, shed=True,
                            cached=cached_count is not None)
        self._epoch_remaining_ms -= cost
        if cached_count is not None:
            counter("serve.service.cache_hits").inc()
            self._lru.move_to_end(key)
            return Decision(max_safe_instances=cached_count, cached=True)
        counter("serve.service.cache_misses").inc()
        count = self._predict_safe_count(latency_app, batch_profile,
                                         max_instances)
        self._lru[key] = count
        if len(self._lru) > self._lru_capacity:
            self._lru.popitem(last=False)
        return Decision(max_safe_instances=count, cached=False)

    # ------------------------------------------------------------------

    def decide_batch(self, batch: CandidateBatch) -> DecisionBatch:
        """One epoch's decisions, equivalent to sequential :meth:`decide`.

        Dispatches on the epoch's shape. The common steady-state epoch —
        every unique pair already in the LRU and the whole batch provably
        affordable (with a float-safety margin) — touches only per-pair
        dictionary state. Epochs with affordable misses and no possible
        eviction run a per-unique-pair fast path. Everything else replays
        the per-arrival cost model exactly, including the all-shed tail
        once the budget can no longer cover even a cache hit.
        """
        n = len(batch)
        if n == 0:
            return DecisionBatch(
                max_safe_instances=np.zeros(0, dtype=np.int64),
                shed=np.zeros(0, dtype=bool),
                cached=np.zeros(0, dtype=bool),
            )
        admission = self.admission
        uids, inv, firsts, keys = self._classify(batch)
        lru = self._lru
        if self._epoch_counts_batch is batch:
            uid_counts: list[int | None] = list(self._epoch_counts)
            self._epoch_counts_batch = None  # decisions mutate the LRU
        else:
            uid_counts = [lru.get(k) for k in keys]
        # Misses are exactly the first occurrences of uncached pairs.
        n_miss = sum(1 for c in uid_counts if c is None)
        total_ms = (n_miss * admission.miss_cost_ms
                    + (n - n_miss) * admission.hit_cost_ms)
        if total_ms <= self._epoch_remaining_ms - 1e-6:
            if n_miss == 0:
                return self._decide_batch_hits(
                    n, inv, keys, uid_counts, total_ms,
                )
            if len(lru) + n_miss <= self._lru_capacity:
                return self._decide_batch_fast(
                    batch, uids, inv, firsts, keys, uid_counts, total_ms,
                )
        return self._decide_batch_sequential(batch, inv, keys)

    def decide_stream(
        self, stream: CandidateStream
    ) -> tuple[np.ndarray, np.ndarray]:
        """Whole-replay decide with bulk runs of steady-state epochs.

        A steady-state epoch — every unique pair already in the LRU and
        the whole batch affordable — sheds nothing, changes no LRU
        membership or cached count, and only touches recency order. A
        maximal run of them therefore collapses into one vectorized
        count-table lookup, one batched counter update, and a single
        recency pass (each epoch's move-to-end sweep composes to
        "touched keys in ascending last occurrence across the run").
        Any epoch carrying a miss, or too many arrivals for the budget,
        drops to the exact per-epoch path.
        """
        n = len(stream)
        counts = np.zeros(n, dtype=np.int64)
        shed = np.zeros(n, dtype=bool)
        admission = self.admission
        budget = admission.budget_ms_per_epoch
        hit_cost = admission.hit_cost_ms
        # Same float-safety margin as decide_batch's affordability test.
        hit_limit = budget - 1e-6
        lru = self._lru
        lru_get = lru.get
        move_to_end = lru.move_to_end
        key_table = stream.key_table
        starts = stream.epoch_starts
        uid_pair, uid_offs = stream.uid_pair, stream.uid_offs
        pair_arr = stream.pair_id
        # pair code -> cached safe count; only read for pairs verified
        # present during run detection, so stale rows are harmless.
        count_of_pair = np.zeros(len(key_table), dtype=np.int64)
        requests = counter("serve.service.requests")
        decisions_total = counter("serve.service.decisions")
        cache_hits = counter("serve.service.cache_hits")
        n_epochs = stream.n_epochs
        e = 0
        while e < n_epochs:
            # Extend [e, r) while epochs stay all-hit and affordable.
            # Hits never change LRU membership or stored counts, so
            # looking ahead with the current LRU state is exact.
            r = e
            while r < n_epochs:
                if (starts[r + 1] - starts[r]) * hit_cost > hit_limit:
                    break
                ok = True
                for u in uid_pair[uid_offs[r]:uid_offs[r + 1]]:
                    c = lru_get(key_table[u])
                    if c is None:
                        ok = False
                        break
                    count_of_pair[u] = c
                if not ok:
                    break
                r += 1
            if r > e:
                s0, s1 = starts[e], starts[r]
                n_run = s1 - s0
                if n_run:
                    seg = pair_arr[s0:s1]
                    counts[s0:s1] = count_of_pair[seg]
                    requests.inc(n_run)
                    decisions_total.inc(n_run)
                    cache_hits.inc(n_run)
                    # idx_rev = last occurrences (first in the reversed
                    # view); descending idx_rev = ascending last position.
                    _u_rev, idx_rev = np.unique(
                        seg[::-1], return_index=True
                    )
                    for u in _u_rev[np.argsort(idx_rev)[::-1]].tolist():
                        move_to_end(key_table[u])
                # The run's last epoch reset the budget then charged all
                # its hits in one subtraction, exactly as the per-epoch
                # hits path does.
                self._epoch_remaining_ms = (
                    budget - (starts[r] - starts[r - 1]) * hit_cost
                )
                e = r
                continue
            batch = stream.batch(e)
            self.begin_epoch_batch(batch)
            decisions = self.decide_batch(batch)
            s0, s1 = starts[e], starts[e + 1]
            counts[s0:s1] = decisions.max_safe_instances
            shed[s0:s1] = decisions.shed
            e += 1
        return counts, shed

    def _decide_batch_hits(
        self,
        n: int,
        inv: list[int],
        keys: list[tuple[str, str, int]],
        uid_counts: list[int],
        total_ms: float,
    ) -> DecisionBatch:
        """All-hit affordable epoch: dictionary reads plus LRU recency."""
        counter("serve.service.requests").inc(n)
        counter("serve.service.decisions").inc(n)
        counter("serve.service.cache_hits").inc(n)
        # Reproduce the sequential recency order: a touched key's final
        # LRU position is set by its *last* occurrence, so re-appending
        # on every occurrence leaves ``order`` in ascending
        # last-occurrence order.
        order: dict[int, None] = {}
        pop = order.pop
        for j in inv:
            pop(j, None)
            order[j] = None
        lru = self._lru
        for j in order:
            lru.move_to_end(keys[j])
        self._epoch_remaining_ms -= total_ms
        return DecisionBatch(
            max_safe_instances=np.array(
                [uid_counts[j] for j in inv], dtype=np.int64,
            ),
            shed=np.zeros(n, dtype=bool),
            cached=np.ones(n, dtype=bool),
        )

    def _decide_batch_fast(
        self,
        batch: CandidateBatch,
        uids: list[int],
        inv: list[int],
        firsts: list[int],
        keys: list[tuple[str, str, int]],
        uid_counts: list[int | None],
        total_ms: float,
    ) -> DecisionBatch:
        """Affordable misses, no eviction possible: per-unique-pair work."""
        n = len(inv)
        miss_js = [j for j, c in enumerate(uid_counts) if c is None]
        n_miss = len(miss_js)
        counter("serve.service.requests").inc(n)
        counter("serve.service.decisions").inc(n)
        if n > n_miss:
            counter("serve.service.cache_hits").inc(n - n_miss)
        if n_miss:
            counter("serve.service.cache_misses").inc(n_miss)
        for j in miss_js:
            latency_app, batch_profile, max_instances = \
                batch.candidate_for_pair(uids[j])
            uid_counts[j] = self._predict_safe_count(
                latency_app, batch_profile, max_instances,
            )
        # Last-occurrence recency order, as in :meth:`_decide_batch_hits`;
        # a missing pair inserts (at its would-be last touch), a cached
        # pair moves.
        was_miss = [False] * len(uids)
        for j in miss_js:
            was_miss[j] = True
        order: dict[int, None] = {}
        pop = order.pop
        for j in inv:
            pop(j, None)
            order[j] = None
        lru = self._lru
        for j in order:
            if was_miss[j]:
                lru[keys[j]] = uid_counts[j]
            else:
                lru.move_to_end(keys[j])
        self._epoch_remaining_ms -= total_ms
        cached = np.ones(n, dtype=bool)
        cached[[firsts[j] for j in miss_js]] = False
        return DecisionBatch(
            max_safe_instances=np.array(
                [uid_counts[j] for j in inv], dtype=np.int64,
            ),
            shed=np.zeros(n, dtype=bool),
            cached=cached,
        )

    def _decide_batch_sequential(
        self,
        batch: CandidateBatch,
        inv: list[int],
        keys: list[tuple[str, str, int]],
    ) -> DecisionBatch:
        """Exact per-arrival replay of the admission cost model.

        Bit-identical to calling :meth:`_decide` in a loop — same float
        subtraction order, same shed/charge rules — but once the budget
        drops below even a hit's cost every later arrival must shed and
        the LRU stops changing, so the tail is filled in bulk.
        """
        n = len(inv)
        admission = self.admission
        hit_cost, miss_cost = admission.hit_cost_ms, admission.miss_cost_ms
        lru = self._lru
        counts = np.zeros(n, dtype=np.int64)
        shed = np.zeros(n, dtype=bool)
        cached = np.zeros(n, dtype=bool)
        hits = misses = sheds = 0
        remaining = self._epoch_remaining_ms
        i = 0
        while i < n:
            if remaining < hit_cost:
                break  # every remaining arrival sheds, LRU frozen
            key = keys[inv[i]]
            cached_count = lru.get(key)
            if cached_count is not None:
                remaining -= hit_cost
                hits += 1
                lru.move_to_end(key)
                counts[i] = cached_count
                cached[i] = True
            elif remaining < miss_cost:
                sheds += 1
                shed[i] = True
            else:
                remaining -= miss_cost
                misses += 1
                latency_app, batch_profile, max_instances = batch[i]
                count = self._predict_safe_count(
                    latency_app, batch_profile, max_instances,
                )
                lru[key] = count
                if len(lru) > self._lru_capacity:
                    lru.popitem(last=False)
                counts[i] = count
            i += 1
        if i < n:
            sheds += n - i
            shed[i:] = True
            in_lru = [k in lru for k in keys]
            cached[i:] = [in_lru[j] for j in inv[i:]]
        self._epoch_remaining_ms = remaining
        counter("serve.service.requests").inc(n)
        counter("serve.service.decisions").inc(n - sheds)
        if sheds:
            counter("serve.service.sheds").inc(sheds)
        if hits:
            counter("serve.service.cache_hits").inc(hits)
        if misses:
            counter("serve.service.cache_misses").inc(misses)
        return DecisionBatch(max_safe_instances=counts, shed=shed,
                             cached=cached)

    def _predict_safe_count(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        max_instances: int,
    ) -> int:
        """Largest instance count predicted inside the degradation budget."""
        budget = self.target.degradation_budget(self._tail_model(latency_app))
        for instances in range(max_instances, 0, -1):
            predicted = self._predict_degradation(latency_app, batch_profile,
                                                  instances)
            if predicted <= budget:
                return instances
        return 0

    def _predict_degradation(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        instances: int,
    ) -> float:
        key = (latency_app.name, batch_profile.name, instances)
        predicted = self._predicted.get(key)
        if predicted is None:
            model = (self._override if self._override is not None
                     else self.predictor)
            predicted = model.predict_server(
                latency_app.profile, batch_profile, instances=instances,
            )
            self._predicted[key] = predicted
        return predicted

    def predicted_degradation(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        instances: int,
    ) -> float | None:
        """SMiTe's predicted degradation for one concrete placement.

        Served from the prediction memo when the safe-count search
        already evaluated this count; otherwise one model evaluation
        (the underlying solves were prefetched with the epoch's misses).
        """
        if instances < 1:
            return None
        return self._predict_degradation(latency_app, batch_profile,
                                         instances)
