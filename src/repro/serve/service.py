"""The online prediction service: LRU-fronted SMiTe with admission control.

:class:`PredictionService` is the serving-side face of the
:class:`~repro.core.predictor.SMiTe` predictor. Three layers keep a
replayed day of traffic cheap:

1. an in-memory **LRU** keyed on ``(latency app, batch profile,
   max instances)`` sits in front of the predictor (and therefore in
   front of the persistent ``smt.diskcache``) — a warm day of traffic
   re-asks the same few hundred questions;
2. **request micro-batching** — at each event epoch the engine announces
   the epoch's decision candidates up front, and every simulator solve a
   cache miss will need (batch Ruler co-runs, per-count server
   characterizations) is pushed through :meth:`Simulator.prefetch` as one
   batched fixed point;
3. **admission control** — each epoch has a simulated decision-latency
   budget; once the epoch's accumulated decision cost would exceed it,
   further arrivals are *shed* to the no-co-location baseline
   (graceful degradation, the :class:`NoColocationPolicy` answer).

Decision latency is charged from a deterministic cost model over the
simulated clock (a cache hit costs ``hit_cost_ms``, a miss
``miss_cost_ms``) — never from a wall clock, so replays stay
byte-identical.

:class:`RandomDecider` and :class:`BaselineDecider` implement the same
:class:`Decider` interface, giving the engine interchangeable policies
for the online SMiTe / Random / NoColocation comparison.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.predictor import SMiTe
from repro.core.tail import TailLatencyModel
from repro.errors import ConfigurationError, SchedulingError
from repro.obs import counter
from repro.scheduler.qos import QosMetric, QosTarget
from repro.smt.simulator import ContextPlacement
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = [
    "AdmissionControl",
    "BaselineDecider",
    "Decider",
    "Decision",
    "PredictionService",
    "RandomDecider",
]

#: One placement question: which latency service pool the job was routed
#: to, what it wants to run, and how many sibling contexts exist.
Candidate = tuple[LatencySensitiveWorkload, WorkloadProfile, int]


@dataclass(frozen=True)
class Decision:
    """The service's answer for one arrival.

    ``max_safe_instances`` is the largest batch-instance count the policy
    calls safe for this (latency app, batch profile) pairing; ``shed``
    marks arrivals the admission controller refused to decide (they fall
    back to the no-co-location baseline); ``cached`` records whether the
    answer came from the in-memory LRU.
    """

    max_safe_instances: int
    shed: bool = False
    cached: bool = False


class Decider(ABC):
    """Online placement policy: one :class:`Decision` per arrival.

    The engine calls :meth:`begin_epoch` once per event epoch with the
    epoch's candidates (in arrival order), then :meth:`decide` exactly
    once per arrival, in the same order. Accounting is shared: every
    ``decide`` increments ``serve.service.requests`` and exactly one of
    ``serve.service.decisions`` / ``serve.service.sheds``, so
    ``sheds + decisions == arrivals`` holds for any decider.
    """

    name: str = "decider"

    def begin_epoch(self, candidates: Sequence[Candidate]) -> None:
        """Announce the epoch's decision candidates (micro-batch hook)."""

    def predicted_degradation(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        instances: int,
    ) -> float | None:
        """The degradation this policy predicted for a placement, if any.

        Interference-oblivious policies return None; the engine's
        prediction audit then has nothing to compare, so Random and
        NoColocation replays carry no audit section.
        """
        return None

    def decide(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        *,
        max_instances: int,
    ) -> Decision:
        """Decide one arrival, with shared request/shed/decision counts."""
        counter("serve.service.requests").inc()
        decision = self._decide(latency_app, batch_profile,
                                max_instances=max_instances)
        if decision.shed:
            counter("serve.service.sheds").inc()
        else:
            counter("serve.service.decisions").inc()
        return decision

    @abstractmethod
    def _decide(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        *,
        max_instances: int,
    ) -> Decision:
        """Policy-specific decision (no accounting)."""


class BaselineDecider(Decider):
    """The no-co-location baseline: every sibling context stays idle."""

    name = "baseline"

    def _decide(self, latency_app, batch_profile, *, max_instances):
        return Decision(max_safe_instances=0, cached=True)


class RandomDecider(Decider):
    """Interference-oblivious: a seeded uniform draw over 0..max."""

    name = "random"

    def __init__(self, seed: int) -> None:
        self._rng = np.random.default_rng(seed)

    def _decide(self, latency_app, batch_profile, *, max_instances):
        count = int(self._rng.integers(0, max_instances + 1))
        return Decision(max_safe_instances=count, cached=True)


@dataclass(frozen=True)
class AdmissionControl:
    """Deterministic per-epoch decision-latency budget.

    Costs are *simulated* milliseconds of decision latency, charged
    against ``budget_ms_per_epoch`` in arrival order; they model the
    serving-path cost asymmetry (an LRU hit is ~instant, a miss pays
    characterization solves) without ever reading a wall clock.
    """

    budget_ms_per_epoch: float = 50.0
    hit_cost_ms: float = 0.05
    miss_cost_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.budget_ms_per_epoch <= 0.0:
            raise ConfigurationError("admission budget must be positive")
        if not 0.0 <= self.hit_cost_ms <= self.miss_cost_ms:
            raise ConfigurationError(
                "admission costs need 0 <= hit_cost_ms <= miss_cost_ms"
            )


class PredictionService(Decider):
    """SMiTe behind an LRU, micro-batched prefetch, and admission control."""

    name = "smite"

    def __init__(
        self,
        predictor: SMiTe,
        target: QosTarget,
        *,
        tail_models: dict[str, TailLatencyModel] | None = None,
        admission: AdmissionControl | None = None,
        lru_capacity: int = 512,
    ) -> None:
        if not predictor.model.is_fitted:
            raise SchedulingError("PredictionService needs a fitted predictor")
        if lru_capacity < 1:
            raise ConfigurationError(
                f"LRU capacity must be >= 1, got {lru_capacity}"
            )
        if (target.metric is QosMetric.TAIL_LATENCY and not tail_models):
            raise SchedulingError(
                "tail-latency QoS targets need per-app tail models"
            )
        self.predictor = predictor
        self.target = target
        self.admission = admission if admission is not None else AdmissionControl()
        self._tail_models = dict(tail_models) if tail_models else {}
        self._lru: OrderedDict[tuple[str, str, int], int] = OrderedDict()
        self._lru_capacity = lru_capacity
        # Unbounded memo of predict_server results, keyed (app, batch,
        # instances). The key space is the LRU key space's closure over
        # instance counts — a few hundred entries on a warm day — and the
        # prediction audit reads it long after an LRU entry may have
        # been evicted.
        self._predicted: dict[tuple[str, str, int], float] = {}
        self._epoch_remaining_ms = self.admission.budget_ms_per_epoch
        # Profiles whose simulator solves have already been prefetched
        # (dicts used as ordered sets; lint-safe iteration).
        self._warmed_batch: dict[str, None] = {}
        self._warmed_server: dict[tuple[str, int], None] = {}
        self._warmed_rulers = False

    # ------------------------------------------------------------------

    @property
    def cache_len(self) -> int:
        """Number of decisions currently held in the LRU."""
        return len(self._lru)

    def _key(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        max_instances: int,
    ) -> tuple[str, str, int]:
        return (latency_app.name, batch_profile.name, max_instances)

    def _tail_model(
        self, latency_app: LatencySensitiveWorkload
    ) -> TailLatencyModel | None:
        if self.target.metric is not QosMetric.TAIL_LATENCY:
            return None
        model = self._tail_models.get(latency_app.name)
        if model is None:
            raise SchedulingError(f"no tail model for {latency_app.name}")
        return model

    # ------------------------------------------------------------------

    def begin_epoch(self, candidates: Sequence[Candidate]) -> None:
        """Reset the epoch budget and prefetch the affordable misses.

        Walks the candidates in arrival order, charging the same
        deterministic cost model :meth:`decide` will charge; every miss
        that fits the budget has its simulator solves (batch Ruler
        co-runs, per-count server characterizations) pushed through one
        batched :meth:`Simulator.prefetch` before any decision runs.
        """
        self._epoch_remaining_ms = self.admission.budget_ms_per_epoch
        planned = self._epoch_remaining_ms
        affordable_misses: list[Candidate] = []
        seen_this_epoch: dict[tuple[str, str, int], None] = {}
        for latency_app, batch_profile, max_instances in candidates:
            key = self._key(latency_app, batch_profile, max_instances)
            is_hit = key in self._lru or key in seen_this_epoch
            cost = (self.admission.hit_cost_ms if is_hit
                    else self.admission.miss_cost_ms)
            if planned < cost:
                break
            planned -= cost
            if not is_hit:
                seen_this_epoch[key] = None
                affordable_misses.append(
                    (latency_app, batch_profile, max_instances)
                )
        if affordable_misses:
            self._prefetch(affordable_misses)

    def _prefetch(self, misses: Iterable[Candidate]) -> None:
        """Batch every solve the epoch's affordable misses will need."""
        simulator = self.predictor.simulator
        suite = self.predictor.suite
        rulers = [suite[dimension].profile for dimension in suite]
        jobs: list[list[ContextPlacement]] = []
        if not self._warmed_rulers:
            # One-time: Ruler solos and Ruler x Ruler pairs behind the
            # predictor's server-calibration anchor.
            jobs.extend([ContextPlacement(r, core=0)] for r in rulers)
            jobs.extend(
                [ContextPlacement(a, core=0), ContextPlacement(b, core=0)]
                for a in rulers
                for b in rulers
            )
            self._warmed_rulers = True
        for latency_app, batch_profile, max_instances in misses:
            if batch_profile.name not in self._warmed_batch:
                self._warmed_batch[batch_profile.name] = None
                jobs.append([ContextPlacement(batch_profile, core=0)])
                jobs.extend(
                    [ContextPlacement(batch_profile, core=0),
                     ContextPlacement(ruler, core=0)]
                    for ruler in rulers
                )
            if (latency_app.name, 0) not in self._warmed_server:
                # The app's own pair characterization (count 0 stands for
                # the pairwise fallback used when no server models exist).
                self._warmed_server[(latency_app.name, 0)] = None
                jobs.append([ContextPlacement(latency_app.profile, core=0)])
                jobs.extend(
                    [ContextPlacement(latency_app.profile, core=0),
                     ContextPlacement(ruler, core=0)]
                    for ruler in rulers
                )
            for count in range(1, max_instances + 1):
                server_key = (latency_app.name, count)
                if server_key in self._warmed_server:
                    continue
                self._warmed_server[server_key] = None
                jobs.extend(
                    simulator.server_placements(
                        latency_app.profile, ruler, instances=count,
                    )
                    for ruler in rulers
                )
        if jobs:
            simulator.prefetch(jobs)

    # ------------------------------------------------------------------

    def _decide(self, latency_app, batch_profile, *, max_instances):
        key = self._key(latency_app, batch_profile, max_instances)
        cached_count = self._lru.get(key)
        cost = (self.admission.hit_cost_ms if cached_count is not None
                else self.admission.miss_cost_ms)
        if self._epoch_remaining_ms < cost:
            return Decision(max_safe_instances=0, shed=True,
                            cached=cached_count is not None)
        self._epoch_remaining_ms -= cost
        if cached_count is not None:
            counter("serve.service.cache_hits").inc()
            self._lru.move_to_end(key)
            return Decision(max_safe_instances=cached_count, cached=True)
        counter("serve.service.cache_misses").inc()
        count = self._predict_safe_count(latency_app, batch_profile,
                                         max_instances)
        self._lru[key] = count
        if len(self._lru) > self._lru_capacity:
            self._lru.popitem(last=False)
        return Decision(max_safe_instances=count, cached=False)

    def _predict_safe_count(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        max_instances: int,
    ) -> int:
        """Largest instance count predicted inside the degradation budget."""
        budget = self.target.degradation_budget(self._tail_model(latency_app))
        for instances in range(max_instances, 0, -1):
            predicted = self._predict_degradation(latency_app, batch_profile,
                                                  instances)
            if predicted <= budget:
                return instances
        return 0

    def _predict_degradation(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        instances: int,
    ) -> float:
        key = (latency_app.name, batch_profile.name, instances)
        predicted = self._predicted.get(key)
        if predicted is None:
            predicted = self.predictor.predict_server(
                latency_app.profile, batch_profile, instances=instances,
            )
            self._predicted[key] = predicted
        return predicted

    def predicted_degradation(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        instances: int,
    ) -> float | None:
        """SMiTe's predicted degradation for one concrete placement.

        Served from the prediction memo when the safe-count search
        already evaluated this count; otherwise one model evaluation
        (the underlying solves were prefetched with the epoch's misses).
        """
        if instances < 1:
            return None
        return self._predict_degradation(latency_app, batch_profile,
                                         instances)
