"""Prediction-error accounting (Equations 7-8).

``PairPrediction`` records one co-location's measured and predicted
degradation; ``EvaluationReport`` aggregates them per victim benchmark
and overall, matching how Figures 10-12 report results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import summarize
from repro.errors import ConfigurationError

__all__ = ["PairPrediction", "BenchmarkErrors", "EvaluationReport"]


@dataclass(frozen=True)
class PairPrediction:
    """One co-location: who ran with whom, what happened, what was predicted."""

    victim: str
    aggressor: str
    measured_degradation: float
    predicted_degradation: float

    @property
    def error(self) -> float:
        """Equation 8: absolute prediction error."""
        return abs(self.predicted_degradation - self.measured_degradation)


@dataclass(frozen=True)
class BenchmarkErrors:
    """Per-victim aggregation, one bar of Figures 10-12."""

    victim: str
    mean_measured_degradation: float
    min_measured_degradation: float
    max_measured_degradation: float
    mean_error: float
    pair_count: int


@dataclass(frozen=True)
class EvaluationReport:
    """All predictions of one model over one test set."""

    model_name: str
    predictions: tuple[PairPrediction, ...]

    def __post_init__(self) -> None:
        if not self.predictions:
            raise ConfigurationError(
                f"{self.model_name}: empty evaluation report"
            )

    @property
    def mean_error(self) -> float:
        """The headline number: mean absolute prediction error."""
        return sum(p.error for p in self.predictions) / len(self.predictions)

    @property
    def max_error(self) -> float:
        return max(p.error for p in self.predictions)

    @property
    def victims(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for p in self.predictions:
            seen.setdefault(p.victim, None)
        return tuple(seen)

    def for_victim(self, victim: str) -> BenchmarkErrors:
        """Aggregate this victim's pairings (one figure bar)."""
        mine = [p for p in self.predictions if p.victim == victim]
        if not mine:
            raise ConfigurationError(f"no predictions for victim {victim!r}")
        measured = summarize([p.measured_degradation for p in mine])
        return BenchmarkErrors(
            victim=victim,
            mean_measured_degradation=measured.mean,
            min_measured_degradation=measured.minimum,
            max_measured_degradation=measured.maximum,
            mean_error=sum(p.error for p in mine) / len(mine),
            pair_count=len(mine),
        )

    def per_victim(self) -> list[BenchmarkErrors]:
        return [self.for_victim(v) for v in self.victims]

    def summary_rows(self) -> list[Sequence[object]]:
        """Rows for the experiment tables: victim, measured, error."""
        rows: list[Sequence[object]] = []
        for bench in self.per_victim():
            rows.append((
                bench.victim,
                bench.mean_measured_degradation,
                bench.mean_error,
                bench.pair_count,
            ))
        rows.append(("AVERAGE", float("nan"), self.mean_error,
                     len(self.predictions)))
        return rows
