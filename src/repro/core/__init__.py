"""The SMiTe methodology: characterize, model, predict (Section III).

- :mod:`repro.core.characterize` — Ruler co-runs produce per-dimension
  sensitivity and contentiousness vectors (Equations 1-2);
- :mod:`repro.core.model` — the Sen x Con interaction regression
  (Equation 3);
- :mod:`repro.core.pmu_model` — the PMU-counter baseline (Equation 9);
- :mod:`repro.core.trainer` — pair-dataset construction, the even/odd
  SPEC split, and model evaluation (Equations 7-8);
- :mod:`repro.core.tail` — the M/M/1 percentile-latency model
  (Equations 4-6);
- :mod:`repro.core.correlation` — the Figure 7 cross-dimension analysis;
- :mod:`repro.core.predictor` — the high-level facade tying it together.
"""

from repro.core.characterize import (
    Characterization,
    characterize,
    characterize_many,
)
from repro.core.correlation import CorrelationReport, correlation_report
from repro.core.curves import SensitivityCurve, measure_sensitivity_curve
from repro.core.evaluation import EvaluationReport, PairPrediction
from repro.core.model import SMiTeModel
from repro.core.online import (
    AdmissionDecision,
    OnlineProfiler,
    ProfilingBudget,
    ProfilingReport,
    admission_check,
)
from repro.core.pmu_model import PmuModel
from repro.core.predictor import SMiTe
from repro.core.tail import TailLatencyModel
from repro.core.trainer import (
    PairDataset,
    build_pair_dataset,
    build_server_dataset,
    evaluate_model,
    parity_split,
)

__all__ = [
    "Characterization",
    "characterize",
    "characterize_many",
    "CorrelationReport",
    "correlation_report",
    "SensitivityCurve",
    "measure_sensitivity_curve",
    "AdmissionDecision",
    "OnlineProfiler",
    "ProfilingBudget",
    "ProfilingReport",
    "admission_check",
    "EvaluationReport",
    "PairPrediction",
    "SMiTeModel",
    "PmuModel",
    "SMiTe",
    "TailLatencyModel",
    "PairDataset",
    "build_pair_dataset",
    "build_server_dataset",
    "evaluate_model",
    "parity_split",
]
