"""Cross-dimension correlation analysis (Section II-D, Figure 7).

Across a workload population, collect the 14 characterization columns
(sensitivity and contentiousness in each of the 7 dimensions) and compute
all pairwise absolute Pearson coefficients. The paper's Finding 9: 97.96%
of dimension pairs correlate below 0.80 and most below 0.50 — the
empirical case for decoupled, multidimensional modelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.stats import pearson_matrix
from repro.core.characterize import Characterization
from repro.errors import ConfigurationError
from repro.rulers.base import Dimension

__all__ = ["CorrelationReport", "correlation_report"]


@dataclass(frozen=True)
class CorrelationReport:
    """Absolute Pearson coefficients among the 14 sen/con dimensions."""

    labels: tuple[str, ...]
    matrix: np.ndarray  # absolute values, unit diagonal

    def __post_init__(self) -> None:
        n = len(self.labels)
        if self.matrix.shape != (n, n):
            raise ConfigurationError(
                f"correlation matrix shape {self.matrix.shape} does not "
                f"match {n} labels"
            )

    def off_diagonal(self) -> np.ndarray:
        """The upper-triangle coefficients (each dimension pair once)."""
        n = len(self.labels)
        idx = np.triu_indices(n, k=1)
        return self.matrix[idx]

    def fraction_below(self, threshold: float) -> float:
        """Fraction of dimension pairs with |r| below ``threshold``."""
        off = self.off_diagonal()
        return float((off < threshold).mean())

    def strongest_pairs(self, count: int = 5) -> list[tuple[str, str, float]]:
        """The most-correlated dimension pairs, for diagnostics."""
        n = len(self.labels)
        entries = [
            (self.labels[i], self.labels[j], float(self.matrix[i, j]))
            for i in range(n) for j in range(i + 1, n)
        ]
        entries.sort(key=lambda e: -e[2])
        return entries[:count]


def correlation_report(
    characterizations: Mapping[str, Characterization] | Sequence[Characterization],
) -> CorrelationReport:
    """Build the Figure 7 matrix from a characterized population."""
    if isinstance(characterizations, Mapping):
        population = list(characterizations.values())
    else:
        population = list(characterizations)
    if len(population) < 3:
        raise ConfigurationError(
            "correlation analysis needs at least 3 characterized workloads"
        )
    dims = population[0].dimensions
    for ch in population:
        if ch.dimensions != dims:
            raise ConfigurationError(
                f"{ch.workload} characterized over different dimensions"
            )
    columns: list[list[float]] = []
    labels: list[str] = []
    for dim in dims:
        labels.append(f"Sen[{dim.name}]")
        columns.append([ch.sensitivity[dim] for ch in population])
    for dim in dims:
        labels.append(f"Con[{dim.name}]")
        columns.append([ch.contentiousness[dim] for ch in population])
    matrix = np.abs(pearson_matrix(columns))
    return CorrelationReport(labels=tuple(labels), matrix=matrix)
