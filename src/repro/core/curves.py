"""Sensitivity curves: degradation as a function of stressor intensity.

Section III-B1's profiling-cost argument: because a Ruler's intensity
relates (near-)linearly to the interference it causes, the *entire*
sensitivity curve can be approximated by interpolating between a handful
of measured points — for the memory dimensions, the three Rulers whose
working sets equal the L1, L2, and L3 sizes. This module makes that
interpolation a first-class object:

- :func:`measure_sensitivity_curve` samples the real curve (co-running
  the application with a Ruler intensity sweep);
- :class:`SensitivityCurve` interpolates degradation at any intensity or
  memory working-set size, and quantifies how well the sparse
  interpolation matches densely measured points — the reproduction of the
  paper's Pearson-based linearity argument.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import pearson
from repro.errors import CharacterizationError, ConfigurationError
from repro.rulers.base import Dimension, Ruler
from repro.smt.simulator import PairMode, Simulator
from repro.workloads.profile import WorkloadProfile

__all__ = ["SensitivityCurve", "measure_sensitivity_curve"]


@dataclass(frozen=True)
class SensitivityCurve:
    """Measured (intensity, degradation) samples plus interpolation.

    ``intensities`` are the Ruler intensities in (0, 1], strictly
    increasing; for memory dimensions, intensity maps linearly onto the
    Ruler working-set size (see :class:`~repro.rulers.base.Ruler`).
    """

    workload: str
    dimension: Dimension
    intensities: tuple[float, ...]
    degradations: tuple[float, ...]
    #: working-set bytes at intensity 1.0 (memory dimensions only)
    full_footprint_bytes: float = 0.0

    def __post_init__(self) -> None:
        if len(self.intensities) != len(self.degradations):
            raise ConfigurationError(
                "intensities and degradations must pair up"
            )
        if len(self.intensities) < 2:
            raise ConfigurationError(
                "a sensitivity curve needs at least two samples"
            )
        if list(self.intensities) != sorted(set(self.intensities)):
            raise ConfigurationError(
                "intensities must be strictly increasing"
            )
        if any(not 0.0 < i <= 1.0 for i in self.intensities):
            raise ConfigurationError("intensities must lie in (0, 1]")

    # ------------------------------------------------------------------

    def at(self, intensity: float) -> float:
        """Piecewise-linear degradation at an arbitrary intensity.

        Below the first sample the curve extrapolates linearly toward the
        zero-pressure point (0, 0); above the last sample it clamps (the
        Ruler cannot exceed full intensity).
        """
        if intensity <= 0.0:
            return 0.0
        xs, ys = self.intensities, self.degradations
        if intensity >= xs[-1]:
            return ys[-1]
        if intensity <= xs[0]:
            return ys[0] * intensity / xs[0]  # smite: noqa[SMT302]: intensities are validated in (0, 1] at construction
        hi = bisect.bisect_right(xs, intensity)
        lo = hi - 1
        span = xs[hi] - xs[lo]
        weight = (intensity - xs[lo]) / span  # smite: noqa[SMT302]: intensities are validated strictly increasing, so span > 0
        return ys[lo] + weight * (ys[hi] - ys[lo])

    def at_working_set(self, footprint_bytes: float) -> float:
        """Degradation for a stressor of the given working-set size.

        Only meaningful for memory dimensions, where Ruler intensity maps
        linearly onto working-set bytes.
        """
        if not self.dimension.is_memory:
            raise CharacterizationError(
                f"{self.dimension} is not a memory dimension; "
                f"use intensities directly"
            )
        if self.full_footprint_bytes <= 0:
            raise CharacterizationError(
                "curve was built without a working-set mapping"
            )
        floor = Ruler.MEMORY_FOOTPRINT_FLOOR
        scale = footprint_bytes / self.full_footprint_bytes
        # Invert the Ruler's footprint mapping: scale = floor + (1-floor)*i.
        intensity = (scale - floor) / (1.0 - floor)  # smite: noqa[SMT302]: MEMORY_FOOTPRINT_FLOOR is the constant 0.5
        return self.at(max(0.0, min(1.0, intensity)))

    @property
    def endpoints_only(self) -> "SensitivityCurve":
        """The two-sample curve the paper's fast profiling would keep."""
        return SensitivityCurve(
            workload=self.workload,
            dimension=self.dimension,
            intensities=(self.intensities[0], self.intensities[-1]),
            degradations=(self.degradations[0], self.degradations[-1]),
            full_footprint_bytes=self.full_footprint_bytes,
        )

    def linearity(self) -> float:
        """Pearson correlation between intensity and degradation."""
        if max(self.degradations) - min(self.degradations) < 1e-9:
            return 1.0  # flat response: trivially linear
        return pearson(self.intensities, self.degradations)

    def interpolation_error(self, reference: "SensitivityCurve") -> float:
        """Mean |this curve - reference| over the reference's samples.

        Evaluating a sparse (e.g. endpoints-only) curve against a dense
        one quantifies what the paper's two-sample profiling shortcut
        costs in accuracy.
        """
        errors = [
            abs(self.at(x) - y)
            for x, y in zip(reference.intensities, reference.degradations)
        ]
        if not errors:
            return 0.0
        return sum(errors) / len(errors)


def measure_sensitivity_curve(
    simulator: Simulator,
    profile: WorkloadProfile,
    ruler: Ruler,
    *,
    points: int = 5,
    mode: PairMode = "smt",
) -> SensitivityCurve:
    """Sample an application's sensitivity curve against one Ruler."""
    if points < 2:
        raise ConfigurationError("a curve needs at least two sample points")
    intensities = [(i + 1) / points for i in range(points)]
    degradations = [
        simulator.measure_pair(
            profile, ruler.at_intensity(intensity).profile, mode
        ).degradation_a
        for intensity in intensities
    ]
    full_footprint = (ruler.at_intensity(1.0).profile.total_footprint_bytes
                      if ruler.dimension.is_memory else 0.0)
    return SensitivityCurve(
        workload=profile.name,
        dimension=ruler.dimension,
        intensities=tuple(intensities),
        degradations=tuple(degradations),
        full_footprint_bytes=full_footprint,
    )
