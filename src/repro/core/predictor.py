"""The high-level SMiTe facade (Figure 8's three-step pipeline).

One object owns the simulator, the Ruler suite, the characterization
cache, and the fitted Equation 3 model:

>>> smite = SMiTe(Simulator(IVY_BRIDGE))
>>> smite.fit(training_profiles, mode="smt")
>>> smite.predict(victim_profile, aggressor_profile)  # degradation

Applications are characterized once and cached — the methodology's
selling point over exhaustive pairwise profiling (Section III-D).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.characterize import Characterization, characterize
from repro.core.model import SMiTeModel
from repro.core.trainer import build_pair_dataset
from repro.errors import ConfigurationError
from repro.rulers.base import Dimension, RulerSuite
from repro.rulers.suite import default_suite
from repro.smt.simulator import PairMode, Simulator
from repro.workloads.profile import WorkloadProfile

__all__ = ["SMiTe"]


class SMiTe:
    """Characterize once, fit the interaction regression, predict any pair."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        suite: RulerSuite | None = None,
        ridge: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.suite = suite if suite is not None else default_suite(simulator.machine)
        self.model = SMiTeModel(ridge=ridge)
        self._ridge = ridge
        #: per-instance-count regressions calibrated on the server
        #: topology (fitted by :meth:`fit_server`); used by
        #: :meth:`predict_server`
        self.server_models: dict[int, SMiTeModel] = {}
        self._mode: PairMode = "smt"
        self._characterizations: dict[tuple[str, str], Characterization] = {}

    # ------------------------------------------------------------------

    @property
    def mode(self) -> PairMode:
        """The co-location topology this instance was fitted for."""
        return self._mode

    def characterization(
        self, profile: WorkloadProfile, *, mode: PairMode | None = None
    ) -> Characterization:
        """The (cached) Ruler characterization of one workload."""
        mode = mode or self._mode
        key = (profile.name, mode)
        cached = self._characterizations.get(key)
        if cached is None:
            cached = characterize(self.simulator, profile, self.suite,
                                  mode=mode)
            self._characterizations[key] = cached
        return cached

    def seed_characterization(
        self,
        profile: WorkloadProfile,
        characterization: Characterization,
        *,
        mode: PairMode | None = None,
    ) -> None:
        """Pre-populate the characterization cache for one workload.

        Models a stale profile database: the serving stack looks
        workloads up by name, so seeding a profile with *another*
        workload's characterization makes every downstream prediction
        systematically wrong while the simulator (the ground truth)
        still measures the real behavior. The adaptive-serving
        experiment uses this to create recoverable mispredictions; it
        is also the import hook for characterizations measured offline.
        """
        mode = mode or self._mode
        self._characterizations[(profile.name, mode)] = characterization

    def characterize_server(
        self,
        latency_profile: WorkloadProfile,
        *,
        mode: PairMode | None = None,
        latency_threads: int | None = None,
        instances: int | None = None,
    ) -> Characterization:
        """Server-level characterization for multithreaded latency apps.

        The paper runs N instances of each Ruler against the half-loaded
        app (6 for SMT, 3 for CMP on the Sandy Bridge-EN box); the app's
        thread-average degradation is its sensitivity, the Rulers' average
        degradation its contentiousness. Passing a smaller ``instances``
        measures the partially co-located operating point — degradation
        grows superlinearly in the instance count (shared-cache pressure
        accumulates), so each count gets its own characterization.
        """
        mode = mode or self._mode
        machine = self.simulator.machine
        if mode == "smt":
            total = latency_threads if latency_threads else machine.cores
        else:
            total = (latency_threads if latency_threads
                     else machine.cores // 2)
        if instances is None:
            instances = total
        if not 0 < instances <= total:
            raise ConfigurationError(
                f"ruler instances must be in 1..{total}, got {instances}"
            )
        key = (f"{latency_profile.name}#server{instances}", mode)
        cached = self._characterizations.get(key)
        if cached is not None:
            return cached
        sensitivity: dict[Dimension, float] = {}
        contentiousness: dict[Dimension, float] = {}
        for dimension in self.suite:
            ruler = self.suite[dimension]
            measured = self.simulator.measure_server(
                latency_profile, ruler.profile, instances=instances,
                mode=mode, latency_threads=latency_threads,
            )
            sensitivity[dimension] = measured.degradation_a
            contentiousness[dimension] = measured.degradation_b
        result = Characterization(
            workload=latency_profile.name,
            sensitivity=sensitivity,
            contentiousness=contentiousness,
        )
        self._characterizations[key] = result
        return result

    # ------------------------------------------------------------------

    def fit(
        self,
        training: Sequence[WorkloadProfile],
        *,
        mode: PairMode = "smt",
    ) -> "SMiTe":
        """Profile all ordered training pairs and fit Equation 3."""
        if len(training) < 3:
            raise ConfigurationError(
                "SMiTe needs at least 3 training workloads"
            )
        self._mode = mode
        dataset = build_pair_dataset(self.simulator, list(training), mode=mode)
        triples = [
            (
                self.characterization(sample.victim),
                self.characterization(sample.aggressor),
                sample.degradation,
            )
            for sample in dataset
        ]
        self.model.fit(triples)
        return self

    def fit_server(
        self,
        training: Sequence[WorkloadProfile],
        *,
        instance_counts: Sequence[int] | None = None,
        latency_threads: int | None = None,
    ) -> "SMiTe":
        """Calibrate per-instance-count Equation 3 models for servers.

        The pair-trained coefficients do not transfer to a 12-context
        server — shared-L3 pressure accumulates superlinearly with the
        batch-instance count, and the growth shape is workload-dependent.
        So each admissible instance count gets its own regression, fitted
        on the training workloads *in the server layout*: each training
        app plays the latency role (its per-count Ruler characterization
        is the sensitivity), each plays the batch role (its pair
        contentiousness), and the response is the measured server
        degradation at that count. This mirrors the paper's Figure 12
        protocol, which measures every instance count separately.
        """
        if not self.model.is_fitted:
            raise ConfigurationError(
                "fit the pair model before the server model"
            )
        machine = self.simulator.machine
        if self._mode == "smt":
            total = latency_threads if latency_threads else machine.cores
        else:
            total = latency_threads if latency_threads else machine.cores // 2
        if instance_counts is None:
            counts = list(range(1, total + 1))
        else:
            counts = sorted({min(max(k, 1), total) for k in instance_counts})
        batch_chars = [self.characterization(b) for b in training]
        self.server_models = {}
        for k in counts:
            triples = []
            for app in training:
                # The latency role is a multithreaded service: its threads
                # work on one shared data set. Train with the multithreaded
                # variant of each training app so the feature domain
                # matches the CloudSuite apps this model predicts.
                latency_app = app.replace(name=f"{app.name}-mt",
                                          shares_memory=True)
                sen = self.characterize_server(
                    latency_app, latency_threads=latency_threads, instances=k,
                )
                for batch_app, batch_char in zip(training, batch_chars):
                    measured = self.simulator.measure_server_degradation(
                        latency_app, batch_app, instances=k, mode=self._mode,
                        latency_threads=latency_threads,
                    )
                    triples.append((sen, batch_char, measured))
            self.server_models[k] = SMiTeModel(ridge=self._ridge).fit(triples)
        return self

    def predict(self, victim: WorkloadProfile,
                aggressor: WorkloadProfile) -> float:
        """Predicted Eq. 7 degradation of ``victim`` next to ``aggressor``."""
        return self.model.predict(
            self.characterization(victim),
            self.characterization(aggressor),
        )

    def predict_server(
        self,
        latency_profile: WorkloadProfile,
        batch_profile: WorkloadProfile,
        *,
        instances: int,
        latency_threads: int | None = None,
    ) -> float:
        """Predicted latency-app degradation with N batch instances.

        The latency app's sensitivity is characterized at the *same*
        instance count (N Ruler copies) — degradation is superlinear in
        the count because shared-cache pressure accumulates, so a single
        full-complement characterization cannot simply be rescaled.
        """
        machine = self.simulator.machine
        if self._mode == "smt":
            total = latency_threads if latency_threads else machine.cores
        else:
            total = latency_threads if latency_threads else machine.cores // 2
        if not 0 <= instances <= total:
            raise ConfigurationError(
                f"instances must be in 0..{total}, got {instances}"
            )
        if instances == 0:
            return 0.0
        batch_char = self.characterization(batch_profile)
        if self.server_models:
            model = self._server_model_for(instances)
            server_char = self.characterize_server(
                latency_profile, latency_threads=latency_threads,
                instances=instances,
            )
            predicted = model.predict(server_char, batch_char)
            predicted *= self._server_calibration(
                latency_profile, instances, latency_threads
            )
            # A co-location can never speed the victim up; tiny negative
            # outputs are regression noise around zero.
            return max(0.0, predicted)
        # Fallback without server calibration: pair prediction scaled by
        # the fraction of latency threads that gain an SMT sibling.
        pair = self.model.predict(
            self.characterization(latency_profile), batch_char
        )
        return pair * instances / total

    # ------------------------------------------------------------------

    def _server_model_for(self, instances: int) -> SMiTeModel:
        model = self.server_models.get(instances)
        if model is None:
            # Nearest calibrated count stands in for a missing one.
            nearest = min(self.server_models,
                          key=lambda k: abs(k - instances))
            model = self.server_models[nearest]
        return model

    def _ruler_characterizations(self) -> dict[Dimension, Characterization]:
        """Each Ruler characterized as an aggressor (Con against the suite)."""
        if not hasattr(self, "_ruler_chars"):
            self._ruler_chars = {
                dimension: self.characterization(self.suite[dimension].profile)
                for dimension in self.suite
            }
        return self._ruler_chars

    def _server_calibration(
        self,
        latency_profile: WorkloadProfile,
        instances: int,
        latency_threads: int | None,
    ) -> float:
        """Ruler-anchored correction factor for server predictions.

        The app's characterization already *is* a set of observed server
        co-locations — with Rulers as the aggressors. The model, applied
        to those same aggressors, should reproduce the observed
        sensitivities; the ratio of observed to modelled response corrects
        the systematic part of the model's extrapolation error for this
        app, using nothing beyond its own Ruler profile.
        """
        key = (latency_profile.name, instances, latency_threads)
        if not hasattr(self, "_server_calibrations"):
            self._server_calibrations: dict[tuple, float] = {}
        cached = self._server_calibrations.get(key)
        if cached is not None:
            return cached
        sen = self.characterize_server(
            latency_profile, latency_threads=latency_threads,
            instances=instances,
        )
        model = self._server_model_for(instances)
        predicted_total = 0.0
        observed_total = 0.0
        for dimension, ruler_char in self._ruler_characterizations().items():
            predicted = model.predict(sen, ruler_char)
            if predicted > 0.01:
                predicted_total += predicted
                observed_total += sen.sensitivity[dimension]
        if predicted_total <= 0.0:
            factor = 1.0
        else:
            factor = min(max(observed_total / predicted_total, 0.3), 3.0)
        self._server_calibrations[key] = factor
        return factor
