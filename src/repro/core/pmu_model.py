"""The PMU-counter baseline model (Equation 9, Section IV-B1).

The strongest PMU model the paper found: a linear regression over 11
solo-run performance-counter rates of *both* co-runners::

    Deg(A | B) = sum_i (c_i^A * PMU_i(A) + c_i^B * PMU_i(B)) + c_0

Its structural handicap versus SMiTe is the absence of interaction terms —
it cannot express "degradation happens when a sensitive victim meets a
contentious aggressor *on the same resource*" — and it inherits the
counter-granularity and counter-bug defects of real PMUs (simulated in
:mod:`repro.smt.pmu`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.analysis.linreg import LinearModel, fit_least_squares
from repro.errors import CharacterizationError, ModelNotFittedError
from repro.smt.pmu import PMU_COUNTERS

__all__ = ["PmuModel"]

PmuReading = Mapping[str, float]


class PmuModel:
    """Equation 9: linear regression on both co-runners' solo PMU rates."""

    def __init__(self, *, counters: Sequence[str] = PMU_COUNTERS,
                 ridge: float = 1e-6) -> None:
        if not counters:
            raise CharacterizationError("PMU model needs at least one counter")
        self._counters = tuple(counters)
        self._ridge = ridge
        self._model: LinearModel | None = None

    @property
    def counters(self) -> tuple[str, ...]:
        return self._counters

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def r_squared(self) -> float:
        return self._require_fitted().r_squared

    def features(self, victim: PmuReading, aggressor: PmuReading) -> np.ndarray:
        """Concatenated victim/aggressor counter vector."""
        try:
            row = [victim[c] for c in self._counters]
            row += [aggressor[c] for c in self._counters]
        except KeyError as exc:
            raise CharacterizationError(
                f"PMU reading is missing counter {exc.args[0]!r}"
            ) from exc
        return np.array(row)

    def fit(
        self,
        pairs: Sequence[tuple[PmuReading, PmuReading, float]],
    ) -> "PmuModel":
        """Fit on (victim counters, aggressor counters, degradation)."""
        if not pairs:
            raise CharacterizationError("cannot fit the PMU model on zero pairs")
        rows = [self.features(victim, aggressor) for victim, aggressor, _ in pairs]
        degradations = [deg for _, _, deg in pairs]
        names = [f"A:{c}" for c in self._counters] + \
                [f"B:{c}" for c in self._counters]
        self._model = fit_least_squares(
            np.vstack(rows), degradations, ridge=self._ridge,
            feature_names=names,
        )
        return self

    def predict(self, victim: PmuReading, aggressor: PmuReading) -> float:
        return self._require_fitted().predict(self.features(victim, aggressor))

    def describe(self) -> str:
        return self._require_fitted().describe()

    def _require_fitted(self) -> LinearModel:
        if self._model is None:
            raise ModelNotFittedError(
                "PmuModel.fit must be called before prediction"
            )
        return self._model
