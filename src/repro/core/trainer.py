"""Dataset construction and model evaluation (Section IV-B).

The paper's protocol: split the 29 SPEC benchmarks by even/odd numbering,
profile every ordered co-location pair inside the training half, fit the
models there, and evaluate on pairs drawn from the testing half
(Equations 7-8). For CloudSuite, the server-level topology (1..6 batch
instances against a half-loaded latency app) replaces the simple pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.evaluation import EvaluationReport, PairPrediction
from repro.errors import ConfigurationError
from repro.obs import counter, span
from repro.smt.simulator import ContextPlacement, PairMode, Simulator
from repro.workloads.profile import WorkloadProfile

__all__ = [
    "PairSample",
    "PairDataset",
    "parity_split",
    "build_pair_dataset",
    "ServerSample",
    "build_server_dataset",
    "evaluate_model",
]


@dataclass(frozen=True)
class PairSample:
    """One measured co-location: victim, aggressor, Eq. 7 degradation."""

    victim: WorkloadProfile
    aggressor: WorkloadProfile
    degradation: float


@dataclass(frozen=True)
class PairDataset:
    """All ordered co-location measurements for a workload population."""

    mode: PairMode
    samples: tuple[PairSample, ...]

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)


def parity_split(
    profiles: Iterable[WorkloadProfile],
) -> tuple[list[WorkloadProfile], list[WorkloadProfile]]:
    """The paper's train/test split: (even-numbered, odd-numbered)."""
    even: list[WorkloadProfile] = []
    odd: list[WorkloadProfile] = []
    for profile in profiles:
        if profile.spec_number is None:
            raise ConfigurationError(
                f"{profile.name} has no SPEC number; parity split undefined"
            )
        (even if profile.spec_number % 2 == 0 else odd).append(profile)
    return even, odd


def build_pair_dataset(
    simulator: Simulator,
    victims: Sequence[WorkloadProfile],
    aggressors: Sequence[WorkloadProfile] | None = None,
    *,
    mode: PairMode = "smt",
    include_self_pairs: bool = True,
) -> PairDataset:
    """Measure every ordered (victim, aggressor) co-location.

    With ``aggressors=None`` the population is paired with itself (the
    within-training-set profiling of Section IV-B1). Self-pairs — two
    copies of one benchmark sharing a core — are legitimate co-locations
    and are included by default.
    """
    if not victims:
        raise ConfigurationError("pair dataset needs at least one victim")
    others = list(aggressors) if aggressors is not None else list(victims)
    if not others:
        raise ConfigurationError("pair dataset needs at least one aggressor")
    with span("trainer.pair_dataset"):
        co_core = 0 if mode == "smt" else 1
        jobs: list[list[ContextPlacement]] = [
            [ContextPlacement(profile, core=0)]
            for profile in {p.name: p for p in [*victims, *others]}.values()
        ]
        jobs.extend(
            [ContextPlacement(victim, core=0),
             ContextPlacement(aggressor, core=co_core)]
            for victim in victims
            for aggressor in others
            if include_self_pairs or victim.name != aggressor.name
        )
        simulator.prefetch(jobs)
        samples = []
        for victim in victims:
            for aggressor in others:
                if not include_self_pairs and victim.name == aggressor.name:
                    continue
                measured = simulator.measure_pair(victim, aggressor, mode)
                samples.append(PairSample(
                    victim=victim,
                    aggressor=aggressor,
                    degradation=measured.degradation_a,
                ))
        counter("core.trainer.pair_samples").inc(len(samples))
        return PairDataset(mode=mode, samples=tuple(samples))


@dataclass(frozen=True)
class ServerSample:
    """One CloudSuite server co-location at a given batch-instance count."""

    latency_app: WorkloadProfile
    batch_app: WorkloadProfile
    instances: int
    degradation: float


def build_server_dataset(
    simulator: Simulator,
    latency_apps: Sequence[WorkloadProfile],
    batch_apps: Sequence[WorkloadProfile],
    *,
    mode: PairMode = "smt",
    max_instances: int | None = None,
    latency_threads: int | None = None,
) -> tuple[ServerSample, ...]:
    """Measure the server topology over 1..max_instances batch copies."""
    if max_instances is None:
        max_instances = (simulator.machine.cores if mode == "smt"
                         else simulator.machine.cores // 2)
    with span("trainer.server_dataset"):
        jobs = [
            [ContextPlacement(batch_app, core=0)] for batch_app in batch_apps
        ]
        jobs.extend(
            simulator.server_placements(latency_app, batch_app, instances=k,
                                        mode=mode,
                                        latency_threads=latency_threads)
            for latency_app in latency_apps
            for batch_app in batch_apps
            for k in range(max_instances + 1)
        )
        simulator.prefetch(jobs)
        samples = []
        for latency_app in latency_apps:
            for batch_app in batch_apps:
                for k in range(1, max_instances + 1):
                    degradation = simulator.measure_server_degradation(
                        latency_app, batch_app, instances=k, mode=mode,
                        latency_threads=latency_threads,
                    )
                    samples.append(ServerSample(
                        latency_app=latency_app,
                        batch_app=batch_app,
                        instances=k,
                        degradation=degradation,
                    ))
        counter("core.trainer.server_samples").inc(len(samples))
        return tuple(samples)


def evaluate_model(
    model_name: str,
    predict: Callable[[WorkloadProfile, WorkloadProfile], float],
    dataset: PairDataset,
) -> EvaluationReport:
    """Run a predictor over a measured dataset and report Eq. 8 errors."""
    predictions = tuple(
        PairPrediction(
            victim=s.victim.name,
            aggressor=s.aggressor.name,
            measured_degradation=s.degradation,
            predicted_degradation=predict(s.victim, s.aggressor),
        )
        for s in dataset
    )
    return EvaluationReport(model_name=model_name, predictions=predictions)
