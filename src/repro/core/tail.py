"""Tail-latency prediction (Section III-C3, Figure 13).

Equation 6 says the p-th percentile under degradation ``Deg`` is

    t_p = -ln(1 - p) / ((1 - Deg) * mu - lambda)

so its reciprocal is *linear in Deg*:

    1 / t_p = (mu - lambda)/c - (mu / c) * Deg,      c = -ln(1 - p)

The paper trains the latency model from the degradation/percentile pairs
observed while the latency-sensitive app is co-located with Rulers; we fit
the same line by least squares, which recovers the effective ``mu`` and
``lambda`` of the service, then invert Equation 6 for prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.linreg import fit_least_squares
from repro.errors import ModelNotFittedError, QueueingError
from repro.queueing.mm1 import Mm1Queue

__all__ = ["TailLatencyModel"]


@dataclass
class TailLatencyModel:
    """Equation 6, with (mu, lambda) recovered from profiled co-runs."""

    percentile: float = 0.90

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile < 1.0:
            raise QueueingError(
                f"percentile must be in (0, 1), got {self.percentile}"
            )
        self._queue: Mm1Queue | None = None
        self._r_squared: float = float("nan")

    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._queue is not None

    @property
    def queue(self) -> Mm1Queue:
        """The recovered baseline (undegraded) queue."""
        return self._require_fitted()

    @property
    def fit_r_squared(self) -> float:
        self._require_fitted()
        return self._r_squared

    # ------------------------------------------------------------------

    def fit(
        self,
        degradations: Sequence[float],
        percentile_latencies: Sequence[float],
    ) -> "TailLatencyModel":
        """Fit from observed (Deg, t_p) pairs (Ruler co-run profiling)."""
        degs = np.asarray(degradations, dtype=float)
        lats = np.asarray(percentile_latencies, dtype=float)
        if degs.size != lats.size or degs.size < 3:
            raise QueueingError(
                "tail-latency fit needs >= 3 matched (Deg, latency) samples"
            )
        if (lats <= 0).any():
            raise QueueingError("observed percentile latencies must be positive")
        c = -math.log(1.0 - self.percentile)
        model = fit_least_squares(degs.reshape(-1, 1), 1.0 / lats)
        slope = float(model.coefficients[0])
        intercept = model.intercept
        mu = -slope * c
        lam = mu - intercept * c
        if mu <= 0 or lam <= 0 or lam >= mu:
            raise QueueingError(
                f"fit produced an invalid queue (mu={mu:.4g}, lambda={lam:.4g}); "
                f"the profiled latencies do not follow Equation 6"
            )
        self._queue = Mm1Queue(arrival_rate=lam, service_rate=mu)
        self._r_squared = model.r_squared
        return self

    def fit_from_queue(self, queue: Mm1Queue) -> "TailLatencyModel":
        """Adopt known (mu, lambda) directly instead of regression."""
        self._queue = queue
        self._r_squared = 1.0
        return self

    def predict_latency(self, degradation: float) -> float:
        """Equation 6: the p-th percentile under the given degradation."""
        return self._require_fitted().degraded_percentile(
            self.percentile, degradation
        )

    def baseline_latency(self) -> float:
        """The p-th percentile with no co-location."""
        return self._require_fitted().percentile(self.percentile)

    def max_safe_degradation(self, qos_target: float) -> float:
        """Largest degradation keeping t_p within ``baseline / qos_target``.

        A QoS target of 0.90 allows the 90th-percentile latency to grow by
        at most 1/0.90 - 1 ~= 11%; this inverts Equation 6 for the
        scheduler.
        """
        if not 0.0 < qos_target <= 1.0:
            raise QueueingError(
                f"QoS target must be in (0, 1], got {qos_target}"
            )
        queue = self._require_fitted()
        budget = queue.percentile(self.percentile) / qos_target
        return queue.max_safe_degradation(self.percentile, budget)

    # ------------------------------------------------------------------

    def _require_fitted(self) -> Mm1Queue:
        if self._queue is None:
            raise ModelNotFittedError(
                "TailLatencyModel.fit must be called before prediction"
            )
        return self._queue
