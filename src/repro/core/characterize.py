"""Sensitivity and contentiousness characterization (Section III-B2).

Co-locate an application with each Ruler on the sibling SMT context:
the application's degradation is its *sensitivity* in that dimension
(Equation 1), the Ruler's degradation is the application's
*contentiousness* (Equation 2). One characterization per application —
never per pair — is the methodology's whole point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.errors import CharacterizationError
from repro.obs import counter, span
from repro.rulers.base import Dimension, RulerSuite
from repro.smt.simulator import ContextPlacement, PairMode, Simulator
from repro.workloads.profile import WorkloadProfile

__all__ = ["Characterization", "characterize", "characterize_many"]


@dataclass(frozen=True)
class Characterization:
    """Per-dimension sensitivity/contentiousness vectors for one workload."""

    workload: str
    sensitivity: Mapping[Dimension, float]
    contentiousness: Mapping[Dimension, float]

    def __post_init__(self) -> None:
        if set(self.sensitivity) != set(self.contentiousness):
            raise CharacterizationError(
                f"{self.workload}: sensitivity and contentiousness cover "
                f"different dimensions"
            )
        if not self.sensitivity:
            raise CharacterizationError(
                f"{self.workload}: empty characterization"
            )

    @property
    def dimensions(self) -> tuple[Dimension, ...]:
        return tuple(d for d in Dimension if d in self.sensitivity)

    def sensitivity_vector(self) -> np.ndarray:
        """Sensitivities in canonical dimension order."""
        return np.array([self.sensitivity[d] for d in self.dimensions])

    def contentiousness_vector(self) -> np.ndarray:
        """Contentiousness in canonical dimension order."""
        return np.array([self.contentiousness[d] for d in self.dimensions])

    def describe(self) -> str:
        parts = [
            f"{d.name}: sen={self.sensitivity[d]:+.3f} "
            f"con={self.contentiousness[d]:+.3f}"
            for d in self.dimensions
        ]
        return f"{self.workload}: " + ", ".join(parts)


def characterize(
    simulator: Simulator,
    profile: WorkloadProfile,
    suite: RulerSuite,
    *,
    mode: PairMode = "smt",
) -> Characterization:
    """Measure one workload against every Ruler in the suite.

    ``mode`` selects the co-location topology: the paper characterizes on
    the SMT sibling context; CMP characterization puts the Ruler on a
    different core (used when predicting CMP co-locations).
    """
    counter("core.characterize.workloads").inc()
    sensitivity: dict[Dimension, float] = {}
    contentiousness: dict[Dimension, float] = {}
    for dimension in suite:
        ruler = suite[dimension]
        measurement = simulator.measure_pair(profile, ruler.profile, mode)
        sensitivity[dimension] = measurement.degradation_a
        contentiousness[dimension] = measurement.degradation_b
    return Characterization(
        workload=profile.name,
        sensitivity=sensitivity,
        contentiousness=contentiousness,
    )


def characterize_many(
    simulator: Simulator,
    profiles: Iterable[WorkloadProfile],
    suite: RulerSuite,
    *,
    mode: PairMode = "smt",
) -> dict[str, Characterization]:
    """Characterize a population; returns name -> characterization.

    The whole sweep — every (workload, Ruler) co-run plus the solo
    baselines — is prefetched through the vectorized batch solver in one
    stacked fixed-point iteration; the per-pair measurements then read
    straight out of the simulator's memo cache.
    """
    with span("characterize_many"):
        profiles = list(profiles)
        rulers = [suite[dimension].profile for dimension in suite]
        co_core = 0 if mode == "smt" else 1
        jobs: list[list[ContextPlacement]] = [
            [ContextPlacement(ruler, core=0)] for ruler in rulers
        ]
        for profile in profiles:
            jobs.append([ContextPlacement(profile, core=0)])
            jobs.extend(
                [ContextPlacement(profile, core=0),
                 ContextPlacement(ruler, core=co_core)]
                for ruler in rulers
            )
        simulator.prefetch(jobs)
        result: dict[str, Characterization] = {}
        for profile in profiles:
            result[profile.name] = characterize(simulator, profile, suite,
                                                mode=mode)
        return result
