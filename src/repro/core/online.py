"""Online profiling for newly arriving applications (Section III-D).

The paper's operational argument for SMiTe over exhaustive pairwise
profiling: characterization is *per application* (7 Ruler co-runs, not
N co-runs against every resident workload) and cheap enough to run online
when a job first arrives at the cluster scheduler. This module makes that
workflow concrete:

- :class:`ProfilingBudget` expresses how much measurement time the
  scheduler will spend on a newcomer;
- :class:`OnlineProfiler` runs the characterization within the budget
  (full suite, or a reduced endpoint set under pressure), returns the
  admission-ready characterization, and accounts for every co-run so the
  cost claims are checkable;
- :func:`admission_check` is the one-call gate a cluster scheduler needs:
  given a fitted predictor and a QoS target, may this newcomer share a
  server with the resident latency app, and at how many instances?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.characterize import Characterization
from repro.core.predictor import SMiTe
from repro.core.tail import TailLatencyModel
from repro.errors import CharacterizationError, ConfigurationError
from repro.rulers.base import Dimension, RulerSuite
from repro.scheduler.qos import QosTarget
from repro.smt.simulator import PairMode, Simulator
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = ["ProfilingBudget", "ProfilingReport", "OnlineProfiler",
           "AdmissionDecision", "admission_check"]


@dataclass(frozen=True)
class ProfilingBudget:
    """How much measurement the scheduler may spend on a newcomer.

    ``seconds_per_corun`` is the dwell time of one Ruler co-location
    measurement (the paper completes a characterization "in the order of
    seconds"); ``max_seconds`` caps the total. When the full 7-dimension
    suite does not fit, the profiler falls back to the highest-priority
    dimensions first.
    """

    max_seconds: float = 10.0
    seconds_per_corun: float = 1.0

    def __post_init__(self) -> None:
        if self.max_seconds <= 0 or self.seconds_per_corun <= 0:
            raise ConfigurationError("profiling budget must be positive")

    @property
    def max_coruns(self) -> int:
        return int(self.max_seconds / self.seconds_per_corun)


@dataclass
class ProfilingReport:
    """Accounting for one online characterization."""

    workload: str
    dimensions_measured: tuple[Dimension, ...]
    coruns: int
    seconds_spent: float
    complete: bool
    characterization: Characterization | None = None

    def __str__(self) -> str:  # the line an operator's log would show
        state = "complete" if self.complete else "partial"
        return (f"{self.workload}: {state} characterization, "
                f"{self.coruns} co-runs, {self.seconds_spent:.1f}s")


class OnlineProfiler:
    """Characterize arriving applications within a measurement budget."""

    #: Fallback priority when the budget cannot fit all seven dimensions:
    #: the memory hierarchy dominates co-location interference for WSC
    #: workloads, then the three-port INT dimension, then the FP ports.
    DIMENSION_PRIORITY = (
        Dimension.L3, Dimension.L2, Dimension.L1, Dimension.INT_ADD,
        Dimension.FP_MUL, Dimension.FP_ADD, Dimension.FP_SHF,
    )

    def __init__(
        self,
        simulator: Simulator,
        suite: RulerSuite,
        *,
        budget: ProfilingBudget | None = None,
        mode: PairMode = "smt",
    ) -> None:
        self.simulator = simulator
        self.suite = suite
        self.budget = budget if budget is not None else ProfilingBudget()
        self.mode = mode
        self._reports: list[ProfilingReport] = []

    # ------------------------------------------------------------------

    def profile(self, workload: WorkloadProfile) -> ProfilingReport:
        """Characterize one newcomer within the budget.

        A complete characterization needs one co-run per suite dimension;
        under a tight budget, dimensions are measured in priority order
        and the report is marked partial (partial characterizations
        cannot feed the predictor — the scheduler should fall back to
        disallowing co-location, the paper's baseline).
        """
        affordable = self.budget.max_coruns
        dimensions = [d for d in self.DIMENSION_PRIORITY if d in self.suite]
        measured = dimensions[:affordable]
        sensitivity: dict[Dimension, float] = {}
        contentiousness: dict[Dimension, float] = {}
        for dimension in measured:
            ruler = self.suite[dimension]
            result = self.simulator.measure_pair(workload, ruler.profile,
                                                 self.mode)
            sensitivity[dimension] = result.degradation_a
            contentiousness[dimension] = result.degradation_b
        complete = len(measured) == len(dimensions)
        characterization = None
        if complete:
            characterization = Characterization(
                workload=workload.name,
                sensitivity=sensitivity,
                contentiousness=contentiousness,
            )
        report = ProfilingReport(
            workload=workload.name,
            dimensions_measured=tuple(measured),
            coruns=len(measured),
            seconds_spent=len(measured) * self.budget.seconds_per_corun,
            complete=complete,
            characterization=characterization,
        )
        self._reports.append(report)
        return report

    @property
    def reports(self) -> tuple[ProfilingReport, ...]:
        return tuple(self._reports)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds_spent for r in self._reports)


@dataclass(frozen=True)
class AdmissionDecision:
    """The scheduler-facing outcome for one arriving batch job."""

    workload: str
    admitted_instances: int
    predicted_degradation: float
    degradation_budget: float
    profiling: ProfilingReport

    @property
    def admitted(self) -> bool:
        return self.admitted_instances > 0


def admission_check(
    predictor: SMiTe,
    latency_app: LatencySensitiveWorkload,
    newcomer: WorkloadProfile,
    target: QosTarget,
    *,
    budget: ProfilingBudget | None = None,
    tail_model: TailLatencyModel | None = None,
    max_instances: int | None = None,
) -> AdmissionDecision:
    """Profile a newcomer online and decide its safe co-location level.

    This is the paper's "SMiTe in Action" loop for one arrival: quick
    Ruler profiling, then the largest instance count whose predicted
    degradation of the resident latency app stays inside the QoS target's
    budget. A partial (budget-truncated) characterization admits nothing.
    """
    if not predictor.model.is_fitted:
        raise CharacterizationError("admission needs a fitted predictor")
    profiler = OnlineProfiler(predictor.simulator, predictor.suite,
                              budget=budget, mode=predictor.mode)
    report = profiler.profile(newcomer)
    allowed = target.degradation_budget(tail_model)
    if max_instances is None:
        max_instances = predictor.simulator.machine.cores
    if not report.complete:
        return AdmissionDecision(
            workload=newcomer.name,
            admitted_instances=0,
            predicted_degradation=float("nan"),
            degradation_budget=allowed,
            profiling=report,
        )
    best_instances = 0
    predicted_at_best = 0.0
    for instances in range(max_instances, 0, -1):
        predicted = predictor.predict_server(
            latency_app.profile, newcomer, instances=instances,
        )
        if predicted <= allowed:
            best_instances = instances
            predicted_at_best = predicted
            break
    return AdmissionDecision(
        workload=newcomer.name,
        admitted_instances=best_instances,
        predicted_degradation=predicted_at_best,
        degradation_budget=allowed,
        profiling=report,
    )
