"""The SMiTe prediction model (Equation 3).

Degradation of A co-located with B is modelled as a linear combination of
per-dimension interaction terms::

    Deg(A | B) = sum_i c_i * Sen_i(A) * Con_i(B) + c_0

The product captures that interference in dimension ``i`` requires *both*
a sensitive victim and a contentious aggressor; the weights ``c_i`` learn
how much each dimension's Ruler-scale pressure translates into co-run
degradation, and ``c_0`` absorbs resources outside the seven dimensions
(the static cost of SMT sharing itself).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.linreg import LinearModel, fit_least_squares
from repro.core.characterize import Characterization
from repro.errors import CharacterizationError, ModelNotFittedError
from repro.rulers.base import Dimension

__all__ = ["SMiTeModel"]


class SMiTeModel:
    """Equation 3, fit by least squares over co-run training pairs.

    ``nonnegative`` (default) constrains the per-dimension weights to be
    >= 0: contention on a resource can only add degradation, and the
    constraint keeps collinear dimensions from producing sign-flipping
    weight pairs that extrapolate badly beyond the training population.
    """

    def __init__(self, *, ridge: float = 0.0,
                 nonnegative: bool = True) -> None:
        self._ridge = ridge
        self._nonnegative = nonnegative
        self._model: LinearModel | None = None
        self._dimensions: tuple[Dimension, ...] = ()

    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._model is not None

    @property
    def dimensions(self) -> tuple[Dimension, ...]:
        return self._dimensions

    @property
    def coefficients(self) -> dict[Dimension, float]:
        """Fitted per-dimension weights ``c_i``."""
        model = self._require_fitted()
        return dict(zip(self._dimensions, model.coefficients.tolist()))

    @property
    def intercept(self) -> float:
        """The fitted constant ``c_0``."""
        return self._require_fitted().intercept

    @property
    def r_squared(self) -> float:
        return self._require_fitted().r_squared

    # ------------------------------------------------------------------

    def features(self, victim: Characterization,
                 aggressor: Characterization) -> np.ndarray:
        """The Sen_i(A) * Con_i(B) interaction vector for one pair."""
        dims = self._dimensions or victim.dimensions
        if victim.dimensions != aggressor.dimensions:
            raise CharacterizationError(
                f"dimension mismatch between {victim.workload} and "
                f"{aggressor.workload}"
            )
        return np.array([
            victim.sensitivity[d] * aggressor.contentiousness[d] for d in dims
        ])

    def fit(
        self,
        pairs: Sequence[tuple[Characterization, Characterization, float]],
    ) -> "SMiTeModel":
        """Fit on (victim, aggressor, measured degradation) triples."""
        if not pairs:
            raise CharacterizationError("cannot fit SMiTe on zero pairs")
        self._dimensions = pairs[0][0].dimensions
        rows = []
        degradations = []
        for victim, aggressor, degradation in pairs:
            if victim.dimensions != self._dimensions:
                raise CharacterizationError(
                    f"{victim.workload} characterized over different "
                    f"dimensions than the training set"
                )
            rows.append(self.features(victim, aggressor))
            degradations.append(degradation)
        self._model = fit_least_squares(
            np.vstack(rows),
            degradations,
            ridge=self._ridge,
            nonnegative=self._nonnegative,
            feature_names=[f"sen*con[{d.name}]" for d in self._dimensions],
        )
        return self

    def predict(self, victim: Characterization,
                aggressor: Characterization) -> float:
        """Predicted degradation of ``victim`` co-located with ``aggressor``."""
        model = self._require_fitted()
        return model.predict(self.features(victim, aggressor))

    def describe(self) -> str:
        return self._require_fitted().describe()

    # ------------------------------------------------------------------

    def _require_fitted(self) -> LinearModel:
        if self._model is None:
            raise ModelNotFittedError(
                "SMiTeModel.fit must be called before prediction"
            )
        return self._model
