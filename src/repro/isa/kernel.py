"""Kernels: loops of abstract instructions used to author Rulers.

A :class:`Kernel` is an infinite loop over a fixed body — the shape of every
stressor in the paper's Figure 9. The kernel representation carries enough
structure (registers, memory references, access patterns) for the analyzer
to derive a workload profile: uop mix, attainable instruction-level
parallelism, and memory footprint strata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal

from repro.errors import ConfigurationError
from repro.isa.opcodes import UopKind, is_memory_kind

__all__ = ["MemRef", "Instruction", "Kernel"]

AccessPattern = Literal["random", "stride"]


@dataclass(frozen=True)
class MemRef:
    """A memory reference made by an instruction.

    ``footprint_bytes`` is the size of the region the reference walks over
    (the Ruler's FOOTPRINT constant); ``pattern`` is how it walks it —
    ``random`` for the LFSR-driven L1/L2 rulers of Figure 9(e), ``stride``
    for the cache-line-stride L3 ruler of Figure 9(f).
    """

    footprint_bytes: int
    pattern: AccessPattern = "random"
    stride_bytes: int = 64

    def __post_init__(self) -> None:
        if self.footprint_bytes <= 0:
            raise ConfigurationError(
                f"memory footprint must be positive, got {self.footprint_bytes}"
            )
        if self.stride_bytes <= 0:
            raise ConfigurationError(
                f"stride must be positive, got {self.stride_bytes}"
            )


@dataclass(frozen=True)
class Instruction:
    """One abstract instruction: a uop kind plus its register/memory operands."""

    kind: UopKind
    dest: str = ""
    sources: tuple[str, ...] = ()
    mem: MemRef | None = None

    def __post_init__(self) -> None:
        if self.mem is not None and not is_memory_kind(self.kind):
            raise ConfigurationError(
                f"{self.kind.name} instructions cannot carry a memory reference"
            )
        if is_memory_kind(self.kind) and self.mem is None:
            raise ConfigurationError(
                f"{self.kind.name} instructions require a memory reference"
            )

    @property
    def registers(self) -> tuple[str, ...]:
        regs = tuple(r for r in (self.dest, *self.sources) if r)
        return regs


@dataclass(frozen=True)
class Kernel:
    """A named infinite loop over ``body``, optionally unrolled.

    ``unroll`` repeats the body that many times per loop back-edge —
    exactly the loop unrolling Figure 9 applies to minimize the branch
    fraction of the memory rulers.
    """

    name: str
    body: tuple[Instruction, ...] = field(default_factory=tuple)
    unroll: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("kernels must be named")
        if not self.body:
            raise ConfigurationError(f"kernel {self.name!r} has an empty body")
        if self.unroll < 1:
            raise ConfigurationError(
                f"unroll factor must be >= 1, got {self.unroll}"
            )

    def iterate(self) -> Iterator[Instruction]:
        """Yield one full unrolled iteration, including the loop branch."""
        for _ in range(self.unroll):
            yield from self.body
        yield Instruction(kind=UopKind.BRANCH)

    @property
    def instructions_per_iteration(self) -> int:
        """Dynamic instructions per loop iteration (body × unroll + branch)."""
        return len(self.body) * self.unroll + 1

    def count_kinds(self) -> dict[UopKind, int]:
        """Dynamic uop-kind counts over one unrolled iteration."""
        counts: dict[UopKind, int] = {}
        for instr in self.iterate():
            counts[instr.kind] = counts.get(instr.kind, 0) + 1
        return counts

    def distinct_destinations(self, kind: UopKind) -> int:
        """Number of distinct destination registers written by ``kind`` uops.

        This is the analyzer's proxy for the number of independent
        dependency chains: the Figure 9 stressors rotate through xmm0..xmm7
        precisely to create eight independent chains.
        """
        dests = {
            instr.dest
            for instr in self.body
            if instr.kind is kind and instr.dest
        }
        return len(dests)

    def memory_references(self) -> tuple[MemRef, ...]:
        """All distinct memory references in the body, in program order."""
        refs: list[MemRef] = []
        seen: set[tuple[int, str, int]] = set()
        for instr in self.body:
            if instr.mem is None:
                continue
            key = (instr.mem.footprint_bytes, instr.mem.pattern,
                   instr.mem.stride_bytes)
            if key not in seen:
                seen.add(key)
                refs.append(instr.mem)
        return tuple(refs)

    def with_unroll(self, unroll: int) -> "Kernel":
        """A copy of this kernel at a different unroll factor."""
        return Kernel(name=self.name, body=self.body, unroll=unroll)

