"""Uop kinds and their execution-port bindings.

This mirrors the Intel Sandy Bridge execution cluster of the paper's
Figure 1: six ports, where ports 0/1/5 host functional units and ports
2/3/4 host memory operations, and several operations are port-specific
(FP_MUL only on port 0, FP_ADD only on port 1, FP_SHF only on port 5,
INT_ADD on any of 0/1/5, loads on 2/3, stores on 4, branches on 5).
"""

from __future__ import annotations

import enum
from typing import Mapping

__all__ = [
    "UopKind",
    "PORT_BINDINGS",
    "UOP_LATENCY",
    "ALL_PORTS",
    "FUNCTIONAL_UNIT_PORTS",
    "MEMORY_PORTS",
    "is_memory_kind",
]

ALL_PORTS: tuple[int, ...] = (0, 1, 2, 3, 4, 5)
FUNCTIONAL_UNIT_PORTS: tuple[int, ...] = (0, 1, 5)
MEMORY_PORTS: tuple[int, ...] = (2, 3, 4)


class UopKind(enum.Enum):
    """The micro-operation kinds the simulator distinguishes."""

    FP_MUL = "fp_mul"
    FP_ADD = "fp_add"
    FP_SHF = "fp_shf"
    INT_ALU = "int_alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    def __repr__(self) -> str:  # terse reprs keep test output readable
        return f"UopKind.{self.name}"


#: Ports each uop kind may dispatch to (Figure 1's port-specific operations).
PORT_BINDINGS: Mapping[UopKind, tuple[int, ...]] = {
    UopKind.FP_MUL: (0,),
    UopKind.FP_ADD: (1,),
    UopKind.FP_SHF: (5,),
    UopKind.INT_ALU: (0, 1, 5),
    UopKind.LOAD: (2, 3),
    UopKind.STORE: (4,),
    UopKind.BRANCH: (5,),
    UopKind.NOP: (),
}

#: Result latency in cycles; drives the dependency-chain bound.
UOP_LATENCY: Mapping[UopKind, float] = {
    UopKind.FP_MUL: 5.0,
    UopKind.FP_ADD: 3.0,
    UopKind.FP_SHF: 1.0,
    UopKind.INT_ALU: 1.0,
    UopKind.LOAD: 4.0,  # L1-hit load-to-use latency
    UopKind.STORE: 1.0,
    UopKind.BRANCH: 1.0,
    UopKind.NOP: 0.0,
}


def is_memory_kind(kind: UopKind) -> bool:
    """True for uop kinds that access the data-memory hierarchy."""
    return kind in (UopKind.LOAD, UopKind.STORE)
