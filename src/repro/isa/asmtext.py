"""Parser for the assembly-text Ruler listings of Figure 9.

Supports the small AT&T-syntax subset the paper's functional-unit rulers
use::

    loop:
    mulps  %xmm0, %xmm0
    mulps  %xmm7, %xmm7
    jmp loop

Memory instructions may be written with a bracketed footprint annotation so
the memory rulers are expressible in the same notation::

    movl   [footprint=32768,pattern=random], %eax     # load
    movl   %eax, [footprint=8388608,pattern=stride]   # store

The parser produces a :class:`~repro.isa.kernel.Kernel`; the trailing
``jmp`` back-edge is implicit in the kernel model and therefore dropped.
"""

from __future__ import annotations

import re

from repro.errors import AsmSyntaxError
from repro.isa.kernel import Instruction, Kernel, MemRef
from repro.isa.opcodes import UopKind

__all__ = ["parse_asm", "MNEMONICS"]

#: Mnemonic table. SSE packed single-precision ops match Figure 9(a-d);
#: scalar variants are accepted as aliases.
MNEMONICS: dict[str, UopKind] = {
    "mulps": UopKind.FP_MUL,
    "mulss": UopKind.FP_MUL,
    "addps": UopKind.FP_ADD,
    "addss": UopKind.FP_ADD,
    "shufps": UopKind.FP_SHF,
    "addl": UopKind.INT_ALU,
    "addq": UopKind.INT_ALU,
    "incl": UopKind.INT_ALU,
    "nop": UopKind.NOP,
    "jmp": UopKind.BRANCH,
}

_LABEL_RE = re.compile(r"^\s*([A-Za-z_.][\w.]*)\s*:\s*$")
_MEMREF_RE = re.compile(
    r"^\[footprint=(\d+)"
    r"(?:,pattern=(random|stride))?"
    r"(?:,stride=(\d+))?"
    r"(?:,addr=(%[a-z0-9]+))?\]$"
)
_REGISTER_RE = re.compile(r"^%[a-z0-9]+$")


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.strip()


def _parse_memref(token: str, lineno: int) -> tuple[MemRef, str] | None:
    """Parse a bracketed memory operand; returns (ref, address_register)."""
    match = _MEMREF_RE.match(token)
    if match is None:
        return None
    footprint = int(match.group(1))
    pattern = match.group(2) or "random"
    stride = int(match.group(3)) if match.group(3) else 64
    addr_reg = match.group(4) or ""
    try:
        ref = MemRef(footprint_bytes=footprint, pattern=pattern,  # type: ignore[arg-type]
                     stride_bytes=stride)
    except Exception as exc:
        raise AsmSyntaxError(f"line {lineno}: bad memory reference: {exc}") from exc
    return ref, addr_reg


def _split_operands(rest: str) -> list[str]:
    if not rest:
        return []
    # Bracketed operands contain commas; protect them before splitting.
    protected = re.sub(r"\[([^\]]*)\]", lambda m: "[" + m.group(1).replace(",", "|") + "]", rest)
    tokens = [t.strip().replace("|", ",") for t in protected.split(",")]
    return [t for t in tokens if t]


def parse_asm(text: str, *, name: str = "kernel", unroll: int = 1) -> Kernel:
    """Parse an assembly listing into a :class:`Kernel`.

    Raises :class:`~repro.errors.AsmSyntaxError` on unknown mnemonics,
    malformed operands, or a listing with no executable instructions.
    """
    body: list[Instruction] = []
    labels: set[str] = set()
    saw_backedge = False

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        label = _LABEL_RE.match(line)
        if label:
            labels.add(label.group(1))
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        kind = MNEMONICS.get(mnemonic)
        if kind is None and mnemonic in ("movl", "movq", "mov"):
            kind = None  # resolved below from operand shapes
        elif kind is None:
            raise AsmSyntaxError(f"line {lineno}: unknown mnemonic {mnemonic!r}")

        operands = _split_operands(rest)

        if kind is UopKind.BRANCH:
            if operands and operands[0] not in labels:
                raise AsmSyntaxError(
                    f"line {lineno}: jmp target {operands[0]!r} is not a label"
                )
            saw_backedge = True
            continue  # the kernel model adds the loop branch implicitly

        if mnemonic in ("movl", "movq", "mov"):
            body.append(_parse_mov(operands, lineno))
            continue

        assert kind is not None
        if kind is UopKind.NOP:
            body.append(Instruction(kind=UopKind.NOP))
            continue

        if len(operands) != 2:
            raise AsmSyntaxError(
                f"line {lineno}: {mnemonic} expects 2 operands, got {len(operands)}"
            )
        src, dst = operands
        for op in (src, dst):
            if not _REGISTER_RE.match(op):
                raise AsmSyntaxError(
                    f"line {lineno}: {mnemonic} operand {op!r} is not a register"
                )
        body.append(Instruction(kind=kind, dest=dst, sources=(src, dst)))

    if not body:
        raise AsmSyntaxError("listing contains no executable instructions")
    if not saw_backedge:
        raise AsmSyntaxError("listing has no jmp back-edge; rulers must loop")
    return Kernel(name=name, body=tuple(body), unroll=unroll)


def _parse_mov(operands: list[str], lineno: int) -> Instruction:
    """Classify a mov as LOAD or STORE from its operand shapes.

    An ``addr=%reg`` annotation inside the bracketed operand records the
    address-generating register, so the analyzer sees the dependency of
    the access on the address computation (the LFSR chain in Figure 9e).
    """
    if len(operands) != 2:
        raise AsmSyntaxError(f"line {lineno}: mov expects 2 operands")
    src, dst = operands
    src_mem = _parse_memref(src, lineno)
    dst_mem = _parse_memref(dst, lineno)
    if src_mem is not None and dst_mem is None:
        ref, addr = src_mem
        if not _REGISTER_RE.match(dst):
            raise AsmSyntaxError(f"line {lineno}: load destination must be a register")
        sources = (addr,) if addr else ()
        return Instruction(kind=UopKind.LOAD, dest=dst, sources=sources, mem=ref)
    if dst_mem is not None and src_mem is None:
        ref, addr = dst_mem
        if not _REGISTER_RE.match(src):
            raise AsmSyntaxError(f"line {lineno}: store source must be a register")
        sources = (src, addr) if addr else (src,)
        return Instruction(kind=UopKind.STORE, sources=sources, mem=ref)
    raise AsmSyntaxError(
        f"line {lineno}: mov must reference memory on exactly one side"
    )
