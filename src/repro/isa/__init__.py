"""A miniature ISA for authoring and analyzing stressor kernels.

The paper's Rulers (Figure 9) are tiny assembly loops built from
port-specific instructions. This package models just enough of that world
to keep the Ruler-design contribution executable:

- :mod:`repro.isa.opcodes` — uop kinds, execution-port bindings, latencies
  (the Sandy Bridge execution-cluster model of Figure 1);
- :mod:`repro.isa.kernel` — kernels as loops of abstract instructions;
- :mod:`repro.isa.asmtext` — a parser for the paper's assembly listings;
- :mod:`repro.isa.analyzer` — static analysis turning a kernel into a
  :class:`~repro.workloads.profile.WorkloadProfile` the simulator can run.
"""

from repro.isa.analyzer import analyze_kernel
from repro.isa.asmtext import parse_asm
from repro.isa.kernel import Instruction, Kernel, MemRef
from repro.isa.opcodes import (
    ALL_PORTS,
    FUNCTIONAL_UNIT_PORTS,
    MEMORY_PORTS,
    PORT_BINDINGS,
    UOP_LATENCY,
    UopKind,
)

__all__ = [
    "analyze_kernel",
    "parse_asm",
    "Instruction",
    "Kernel",
    "MemRef",
    "ALL_PORTS",
    "FUNCTIONAL_UNIT_PORTS",
    "MEMORY_PORTS",
    "PORT_BINDINGS",
    "UOP_LATENCY",
    "UopKind",
]
