"""Static analysis turning a kernel into a workload profile.

The Ruler design principles of Section III-B1 — port-specific instructions,
dependency removal via register rotation, loop unrolling to suppress the
branch fraction — are all *observable* properties of a kernel. The analyzer
extracts them:

- uop mix: dynamic kind counts over one unrolled iteration;
- dependency factor: whether each compute kind exposes enough independent
  chains (distinct destination registers) to cover its result latency;
- footprint strata: from the kernel's memory references;
- MLP: address-independent kernels (the Figure 9 stressors) overlap misses
  up to the machine's miss-queue depth.
"""

from __future__ import annotations

from repro.isa.kernel import Kernel
from repro.isa.opcodes import UOP_LATENCY, UopKind
from repro.workloads.profile import FootprintStratum, Suite, WorkloadProfile

__all__ = ["analyze_kernel"]

#: MLP granted to stressor kernels whose accesses are address-independent.
_STRESSOR_MLP = 8.0

#: Iterations of the dataflow simulation; chains reach steady state fast.
_STEADY_STATE_ITERATIONS = 8


def _steady_state_dep_cpi(kernel: Kernel) -> float:
    """Loop-carried critical-path cycles per instruction.

    Simulates the body's dataflow with register renaming (an instruction
    starts when all its *source* registers are ready; writing a register
    starts a fresh value, so write-after-write never serializes) for a few
    iterations and reads off the steady-state growth of the longest chain.
    This is what makes a serial LFSR update throttle the Figure 9(e)
    ruler while eight rotated xmm registers leave Figure 9(a-d) rulers
    port-bound, exactly as the paper's dependency-removal principle
    intends.
    """
    ready: dict[str, float] = {}
    previous_end = 0.0
    delta = 0.0
    for _ in range(_STEADY_STATE_ITERATIONS):
        for instr in kernel.body:
            start = max((ready.get(reg, 0.0) for reg in instr.sources),
                        default=0.0)
            done = start + UOP_LATENCY[instr.kind]
            if instr.dest:
                ready[instr.dest] = done
        end = max(ready.values(), default=0.0)
        delta = end - previous_end
        previous_end = end
    return delta / len(kernel.body)  # smite: noqa[SMT302]: Kernel validates a non-empty body


def _dependency_factor(kernel: Kernel) -> float:
    """Serialized fraction: steady-state chain CPI over the full uop path."""
    dep_cpi = _steady_state_dep_cpi(kernel)
    if dep_cpi <= 0.0:
        return 0.0
    counts = kernel.count_kinds()
    n_instr = kernel.instructions_per_iteration
    path = sum(  # smite: noqa[SMT302]: instructions_per_iteration = body*unroll + 1 >= 1
        count * UOP_LATENCY[kind] for kind, count in counts.items()
    ) / n_instr
    if path <= 0.0:
        return 0.0
    return min(1.0, dep_cpi / path)


def _strata(kernel: Kernel, counts: dict[UopKind, int]) -> tuple[FootprintStratum, ...]:
    refs = kernel.memory_references()
    if not refs or (counts.get(UopKind.LOAD, 0) + counts.get(UopKind.STORE, 0)) == 0:
        return ()
    # Accesses split across references in proportion to their static counts;
    # Figure 9 rulers have a single reference, so this is usually one stratum.
    per_ref: dict[float, int] = {}
    for instr in kernel.body:
        if instr.mem is None:
            continue
        per_ref[instr.mem.footprint_bytes] = per_ref.get(instr.mem.footprint_bytes, 0) + 1
    total = sum(per_ref.values())
    strata = [
        FootprintStratum(footprint_bytes=fp, access_fraction=n / total)  # smite: noqa[SMT302]: non-empty refs imply at least one counted body reference
        for fp, n in sorted(per_ref.items())
    ]
    # Guard against floating-point drift in the fraction sum.
    drift = 1.0 - sum(s.access_fraction for s in strata)
    if abs(drift) > 1e-12:
        last = strata[-1]
        strata[-1] = FootprintStratum(
            footprint_bytes=last.footprint_bytes,
            access_fraction=last.access_fraction + drift,
        )
    return tuple(strata)


def analyze_kernel(kernel: Kernel, *, suite: Suite = Suite.RULER) -> WorkloadProfile:
    """Derive a :class:`WorkloadProfile` from a kernel's static structure."""
    counts = kernel.count_kinds()
    n_instr = kernel.instructions_per_iteration
    rate = {kind: counts.get(kind, 0) / n_instr for kind in UopKind}  # smite: noqa[SMT302]: instructions_per_iteration = body*unroll + 1 >= 1
    has_memory = (counts.get(UopKind.LOAD, 0) + counts.get(UopKind.STORE, 0)) > 0

    return WorkloadProfile(
        name=kernel.name,
        suite=suite,
        fp_mul=rate[UopKind.FP_MUL],
        fp_add=rate[UopKind.FP_ADD],
        fp_shf=rate[UopKind.FP_SHF],
        int_alu=rate[UopKind.INT_ALU],
        load=rate[UopKind.LOAD],
        store=rate[UopKind.STORE],
        branch=rate[UopKind.BRANCH],
        nop=rate[UopKind.NOP],
        dependency_factor=_dependency_factor(kernel),
        mlp=_STRESSOR_MLP if has_memory else 1.0,
        strata=_strata(kernel, counts),
        # The single loop back-edge is a perfectly predicted branch.
        branch_misprediction_rate=0.0,
        itlb_mpki=0.0,
        dtlb_mpki=0.05 if has_memory else 0.0,
        icache_mpki=0.0,
        description=f"analyzed from kernel {kernel.name!r} "
                    f"(unroll {kernel.unroll}, {n_instr} instructions/iteration)",
    )
