"""Drift-triggered online model recalibration (docs/ADAPTATION.md).

The control loop closing PR 5's audit signal: the refitter
(:mod:`repro.adapt.refit`) learns per-count regressions from streamed
(predicted, actual) pairs, the drift policy (:mod:`repro.adapt.decider`)
decides when a closed SLO window's calibration drift justifies acting,
and the registry (:mod:`repro.adapt.swap`) hot-swaps validated
coefficient sets into the serving stack atomically, version by version.
"""

from repro.adapt.decider import AdaptationController, DriftPolicy
from repro.adapt.refit import HoldoutSample, OnlineRefitter, RlsState
from repro.adapt.swap import AdaptedModel, CoefficientSet, ModelRegistry

__all__ = [
    "AdaptationController",
    "AdaptedModel",
    "CoefficientSet",
    "DriftPolicy",
    "HoldoutSample",
    "ModelRegistry",
    "OnlineRefitter",
    "RlsState",
]
