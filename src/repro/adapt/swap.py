"""Versioned coefficient sets and atomic hot-swap into the service.

A swap replaces the regression the :class:`PredictionService` serves
without rebuilding the service: the :class:`ModelRegistry` wraps the
candidate per-count :class:`LinearModel` set in an :class:`AdaptedModel`
(which reuses the base predictor's cached characterizations for feature
extraction) and installs it through
``PredictionService.set_model_override``, which bumps the model version
and invalidates exactly the prediction-derived caches — the decision LRU
and the prediction memo. Ground-truth stores (the simulator memo and the
persistent ``smt.diskcache``) hold measured degradations that do not
depend on regression coefficients, so a swap deliberately leaves them
alone.

Every install — including the shed-to-static :meth:`ModelRegistry.revert`
— is a new version with a content hash, so sharded workers and the
``serve.api`` stats op can attribute any prediction to the coefficient
set that produced it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.linreg import LinearModel
from repro.core.predictor import SMiTe
from repro.obs import counter, gauge, span
from repro.serve.service import PredictionService
from repro.workloads.profile import WorkloadProfile

__all__ = ["AdaptedModel", "CoefficientSet", "ModelRegistry"]

#: The content hash of the static (no-override) coefficient set.
STATIC_HASH = "static"


def _hash_models(models: Mapping[int, LinearModel]) -> str:
    """A short content hash over the coefficient bytes, count-ordered."""
    digest = hashlib.sha256()
    for count in sorted(models):
        model = models[count]
        digest.update(count.to_bytes(4, "little"))
        digest.update(model.coefficients.astype(float).tobytes())
        digest.update(repr(model.intercept).encode())
    return digest.hexdigest()[:12]


class AdaptedModel:
    """Per-count refit models behind the predictor's feature pipeline.

    Duck-types ``SMiTe.predict_server`` so the service's prediction path
    is swapped wholesale: features come from the same cached
    characterizations the base predictor uses, the linear map comes from
    the refit. The nearest calibrated count stands in for a missing one
    (ties to the smaller count), mirroring ``SMiTe._server_model_for``.
    """

    def __init__(
        self, predictor: SMiTe, models: Mapping[int, LinearModel]
    ) -> None:
        if not models:
            raise ValueError("an adapted model needs >= 1 count model")
        self._predictor = predictor
        self._models = dict(models)

    @property
    def counts(self) -> tuple[int, ...]:
        return tuple(sorted(self._models))

    def predict_server(
        self,
        latency_profile: WorkloadProfile,
        batch_profile: WorkloadProfile,
        *,
        instances: int,
    ) -> float:
        if instances == 0:
            return 0.0
        model = self._models.get(instances)
        if model is None:
            nearest = min(sorted(self._models),
                          key=lambda k: abs(k - instances))
            model = self._models[nearest]
        server_char = self._predictor.characterize_server(
            latency_profile, instances=instances,
        )
        batch_char = self._predictor.characterization(batch_profile)
        features = self._predictor.model.features(server_char, batch_char)
        # Refit targets are measured degradations, which are >= 0; tiny
        # negative outputs are regression noise around zero.
        return max(0.0, model.predict(features))


@dataclass(frozen=True)
class CoefficientSet:
    """One installed model version: what served, from when, from where."""

    version: int
    content_hash: str
    #: "rls" (incremental estimate), "batch" (mini-batch full refit), or
    #: "static" (shed back to the offline-trained coefficients).
    origin: str
    #: Simulated time of the install (None outside a replay).
    swapped_epoch_s: float | None
    counts: tuple[int, ...]


class ModelRegistry:
    """Version ledger plus the atomic swap path into one service."""

    def __init__(self, service: PredictionService, predictor: SMiTe) -> None:
        self.service = service
        self.predictor = predictor
        self.history: list[CoefficientSet] = []

    # ------------------------------------------------------------------

    @property
    def current(self) -> CoefficientSet | None:
        return self.history[-1] if self.history else None

    @property
    def version(self) -> int:
        return self.history[-1].version if self.history else 0

    def install(
        self,
        models: Mapping[int, LinearModel],
        *,
        origin: str,
        epoch_s: float | None = None,
    ) -> CoefficientSet:
        """Atomically swap a candidate coefficient set into the service."""
        adapted = AdaptedModel(self.predictor, models)
        entry = CoefficientSet(
            version=self.version + 1,
            content_hash=_hash_models(models),
            origin=origin,
            swapped_epoch_s=epoch_s,
            counts=adapted.counts,
        )
        self._swap(adapted, entry)
        return entry

    def revert(self, *, epoch_s: float | None = None) -> CoefficientSet:
        """Shed back to the static offline coefficients (a new version)."""
        entry = CoefficientSet(
            version=self.version + 1,
            content_hash=STATIC_HASH,
            origin="static",
            swapped_epoch_s=epoch_s,
            counts=(),
        )
        self._swap(None, entry)
        counter("serve.adapt.reverts").inc()
        return entry

    def _swap(self, adapted: AdaptedModel | None,
              entry: CoefficientSet) -> None:
        with span("serve.adapt.swap"):
            self.service.set_model_override(
                adapted,
                version=entry.version,
                model_hash=entry.content_hash,
                epoch_s=entry.swapped_epoch_s,
            )
            self.history.append(entry)
            counter("serve.adapt.swaps").inc()
            gauge("serve.adapt.model_version").set(float(entry.version))

    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able summary for stats ops and run reports."""
        current = self.current
        return {
            "model_version": self.version,
            "model_hash": (current.content_hash if current
                           else STATIC_HASH),
            "origin": current.origin if current else "static",
            "last_swap_epoch_s": (current.swapped_epoch_s if current
                                  else None),
            "swaps": len(self.history),
        }
