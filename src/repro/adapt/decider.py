"""The drift policy: when does a closed SLO window justify a hot-swap?

The audit layer publishes one ``calibration_drift`` (mean absolute
prediction residual) per closed SLO window. This module turns that
signal into swap decisions with three stabilizers so transient noise
cannot thrash the serving coefficients:

- **threshold** — only windows whose drift exceeds ``drift_bound``
  count;
- **hysteresis** — ``hysteresis`` *consecutive* over-bound windows are
  required before a swap is attempted (one noisy window resets nothing
  into motion);
- **cooldown** — after any install (or revert) the next ``cooldown``
  window closes are ignored entirely: their residuals still blend
  predictions from before the swap, so judging the new model on them
  would double-trigger.

A triggered swap is not unconditional: the RLS candidate must beat the
incumbent's recorded predictions on the refitter's deterministic holdout
set; failing that, the mini-batch full refit gets one try; failing
*that*, the controller sheds back to the static offline coefficients
(if an override is live) rather than serve a model it cannot validate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adapt.refit import OnlineRefitter
from repro.adapt.swap import ModelRegistry
from repro.errors import ConfigurationError
from repro.obs import counter
from repro.serve.slo import SloWindow, WindowedSlo
from repro.workloads.cloudsuite import LatencySensitiveWorkload
from repro.workloads.profile import WorkloadProfile

__all__ = ["AdaptationController", "DriftPolicy"]


@dataclass(frozen=True)
class DriftPolicy:
    """Threshold + hysteresis + cooldown knobs for the drift loop."""

    #: Mean-absolute-residual bound a window must exceed to count.
    drift_bound: float = 0.05
    #: Consecutive over-bound windows required to attempt a swap.
    hysteresis: int = 2
    #: Window closes ignored after any install or revert.
    cooldown: int = 1

    def __post_init__(self) -> None:
        if self.drift_bound <= 0.0:
            raise ConfigurationError(
                f"drift bound must be positive, got {self.drift_bound}"
            )
        if self.hysteresis < 1:
            raise ConfigurationError(
                f"hysteresis must be >= 1 window, got {self.hysteresis}"
            )
        if self.cooldown < 0:
            raise ConfigurationError(
                f"cooldown must be >= 0 windows, got {self.cooldown}"
            )


class AdaptationController:
    """Consumes window drift, decides swaps, drives the registry.

    The engine calls :meth:`observe` alongside every audited comparison
    and :meth:`end_epoch` at every epoch boundary (after scoring, before
    the next epoch's decisions) — so coefficient swaps land exactly on
    epoch boundaries on every replay strategy, which is what keeps the
    scalar and vectorized adaptive replays byte-identical.
    """

    def __init__(
        self,
        refitter: OnlineRefitter,
        registry: ModelRegistry,
        slo: WindowedSlo,
        *,
        policy: DriftPolicy | None = None,
    ) -> None:
        self.refitter = refitter
        self.registry = registry
        self.slo = slo
        self.policy = policy if policy is not None else DriftPolicy()
        self._windows_seen = 0
        self._streak = 0
        self._cooldown = 0

    # ------------------------------------------------------------------

    def observe(
        self,
        latency_app: LatencySensitiveWorkload,
        batch_profile: WorkloadProfile,
        instances: int,
        *,
        predicted: float,
        actual: float,
        count: int = 1,
    ) -> None:
        """Forward one audited comparison to the refitter."""
        self.refitter.observe(
            latency_app, batch_profile, instances,
            predicted=predicted, actual=actual, count=count,
        )

    def end_epoch(self, epoch_s: float) -> bool:
        """Process any windows closed this epoch; True if the model changed.

        The caller must invalidate its prediction memos when this
        returns True — the coefficients serving the next epoch differ.
        """
        windows = self.slo.closed_windows
        new = windows[self._windows_seen:]
        self._windows_seen = len(windows)
        changed = False
        for window in new:
            if self._on_window(window, epoch_s):
                changed = True
        return changed

    # ------------------------------------------------------------------

    def _on_window(self, window: SloWindow, epoch_s: float) -> bool:
        drift = window.calibration_drift
        if drift is None:
            return False
        if self._cooldown > 0:
            self._cooldown -= 1
            return False
        if drift <= self.policy.drift_bound:
            self._streak = 0
            return False
        self._streak += 1
        if self._streak < self.policy.hysteresis:
            return False
        self._streak = 0
        self._cooldown = self.policy.cooldown
        return self._attempt_swap(epoch_s)

    def _attempt_swap(self, epoch_s: float) -> bool:
        refitter = self.refitter
        incumbent_error = refitter.holdout_error(None)
        candidate = refitter.candidate()
        if self._passes_holdout(candidate, incumbent_error):
            self.registry.install(candidate, origin="rls", epoch_s=epoch_s)
            return True
        counter("serve.adapt.rejected").inc()
        fallback = refitter.refit_candidate()
        if self._passes_holdout(fallback, incumbent_error):
            self.registry.install(fallback, origin="batch", epoch_s=epoch_s)
            return True
        counter("serve.adapt.rejected").inc()
        if self.registry.service.model_override is not None:
            # Shed to static: better the offline coefficients than an
            # override we can no longer validate.
            self.registry.revert(epoch_s=epoch_s)
            return True
        return False

    def _passes_holdout(self, candidate, incumbent_error) -> bool:
        """The holdout sanity check: never lose to what already served."""
        if candidate is None:
            return False
        if incumbent_error is None:
            # No holdout samples yet — nothing to validate against.
            return False
        candidate_error = self.refitter.holdout_error(candidate)
        return (candidate_error is not None
                and candidate_error <= incumbent_error)
